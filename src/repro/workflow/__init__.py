"""The assembled four-step enrichment workflow (the paper's contribution)."""

from repro.workflow.config import EnrichmentConfig
from repro.workflow.pipeline import OntologyEnricher
from repro.workflow.report import EnrichmentReport, TermReport

__all__ = [
    "EnrichmentConfig",
    "EnrichmentReport",
    "OntologyEnricher",
    "TermReport",
]
