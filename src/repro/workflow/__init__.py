"""The assembled four-step enrichment workflow (the paper's contribution).

The workflow is a staged batch pipeline over a shared positional corpus
index — see :mod:`repro.workflow.pipeline` for the stage architecture.
"""

from repro.workflow.config import EnrichmentConfig
from repro.workflow.pipeline import (
    CandidateWork,
    DetectStage,
    ExtractStage,
    InduceStage,
    LinkStage,
    OntologyEnricher,
    PipelineContext,
)
from repro.workflow.report import EnrichmentReport, TermReport
from repro.workflow.streaming import ReportDiff, StreamingEnricher

__all__ = [
    "CandidateWork",
    "DetectStage",
    "EnrichmentConfig",
    "EnrichmentReport",
    "ExtractStage",
    "InduceStage",
    "LinkStage",
    "OntologyEnricher",
    "PipelineContext",
    "ReportDiff",
    "StreamingEnricher",
    "TermReport",
]
