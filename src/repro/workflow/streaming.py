"""Continuous enrichment: delta re-runs for a growing corpus.

The batch workflow (:mod:`repro.workflow.pipeline`) treats every corpus
as immutable: a new corpus fingerprint means a cold feature cache and a
full re-featurisation.  But the paper's enrichment loop is naturally
*incremental* — documents keep arriving (new abstracts, new clinical
notes) and each batch perturbs only the terms it actually mentions.

:class:`StreamingEnricher` exploits the per-document fingerprint chain
(:meth:`repro.corpus.index.CorpusIndex.fingerprint`) and the locality of
the Step II features (a term's vector depends only on its *own* corpus
contexts) to turn corpus growth into a delta:

1. index the arriving documents alone and mark every known term they
   mention as *changed* — all other terms keep byte-identical postings,
   hence byte-identical feature vectors;
2. grow the corpus (the cached index is patched in place, or rebuilt
   through its remembered :class:`~repro.corpus.index_store.IndexStore`);
3. carry the unchanged terms' cached vectors forward under the grown
   corpus fingerprint — for *both* cache-key families, the detection
   keys (:func:`repro.workflow.pipeline.detect_config_fingerprint`) and
   the training keys
   (:func:`repro.polysemy.dataset.dataset_config_fingerprint`) — so the
   follow-up run only featurises changed terms;
4. retrain the detector (it is corpus-dependent) and re-run the
   pipeline, which now hits warm vectors for everything untouched;
5. emit a :class:`ReportDiff` describing exactly what moved.

The result composes: ``diff.apply(previous_report)`` reconstructs the
full report a from-scratch run over the grown corpus would produce.
"""

from __future__ import annotations

import time
from contextlib import ExitStack
from dataclasses import dataclass, field

from repro.corpus.corpus import Corpus
from repro.corpus.document import Document
from repro.errors import CorpusError, ValidationError
from repro.polysemy.cache import FeatureCache
from repro.polysemy.cache_store import DiskCacheStore
from repro.polysemy.dataset import dataset_config_fingerprint
from repro.workflow.pipeline import (
    OntologyEnricher,
    detect_config_fingerprint,
)
from repro.workflow.report import EnrichmentReport, TermReport

__all__ = ["ReportDiff", "StreamingEnricher"]


@dataclass
class ReportDiff:
    """What one document delta changed in the enrichment report.

    Attributes
    ----------
    base_fingerprint / fingerprint:
        Corpus fingerprints before and after the delta (the provenance
        chain: a diff only applies to a report produced at
        ``base_fingerprint``).
    documents:
        Ids of the documents this delta added.
    changed_terms:
        Known terms (prior candidates plus ontology terms) whose corpus
        postings changed — exactly the terms whose feature vectors were
        recomputed; everything else came warm from the cache.
    added:
        Candidate rows that exist only in the new report.
    dropped:
        Candidate terms of the base report that disappeared.
    rescored:
        Rows present in both reports whose content changed.
    unchanged:
        Terms carried over verbatim from the base report.
    term_order:
        The new report's full candidate order (extraction-rank order) —
        :meth:`apply` reconstructs the report in exactly this order.
    detector_trained / timings / cache / warnings:
        The delta run's report metadata (see
        :class:`~repro.workflow.report.EnrichmentReport`); ``timings``
        additionally carries ``delta_total``, the wall-clock seconds of
        the whole delta including cache carry-forward.
    """

    base_fingerprint: str
    fingerprint: str
    documents: list[str] = field(default_factory=list)
    changed_terms: list[str] = field(default_factory=list)
    added: list[TermReport] = field(default_factory=list)
    dropped: list[str] = field(default_factory=list)
    rescored: list[TermReport] = field(default_factory=list)
    unchanged: list[str] = field(default_factory=list)
    term_order: list[str] = field(default_factory=list)
    detector_trained: bool = False
    timings: dict[str, float] = field(default_factory=dict)
    cache: dict[str, int] = field(default_factory=dict)
    warnings: list[str] = field(default_factory=list)

    @property
    def n_recomputed(self) -> int:
        """Terms whose feature vectors were recomputed by this delta."""
        return len(self.changed_terms)

    def apply(self, base: EnrichmentReport) -> EnrichmentReport:
        """Compose this diff onto ``base``: the full post-delta report.

        ``base`` must be the report the diff was computed against (the
        one produced at :attr:`base_fingerprint`); composing onto
        anything else raises :class:`~repro.errors.ValidationError`
        when a carried-over term is missing.  The composed report
        equals what a from-scratch run over the grown corpus reports
        (timings and cache counters are the delta run's measurements).
        """
        patched = {report.term: report for report in self.added}
        patched.update({report.term: report for report in self.rescored})
        base_rows = {report.term: report for report in base.terms}
        for term in self.dropped:
            if term not in base_rows:
                raise ValidationError(
                    f"diff drops {term!r} which the base report never had"
                )
        terms: list[TermReport] = []
        for term in self.term_order:
            row = patched.get(term, base_rows.get(term))
            if row is None:
                raise ValidationError(
                    f"diff carries {term!r} over from a base report that "
                    "does not contain it — wrong base?"
                )
            terms.append(row)
        return EnrichmentReport(
            terms=terms,
            timings=dict(self.timings),
            cache=dict(self.cache),
            detector_trained=self.detector_trained,
            warnings=list(self.warnings),
        )

    def to_dict(self) -> dict:
        """JSON-safe snapshot (the service's ``/deltas`` wire shape)."""
        return {
            "base_fingerprint": self.base_fingerprint,
            "fingerprint": self.fingerprint,
            "documents": list(self.documents),
            "changed_terms": list(self.changed_terms),
            "n_recomputed": self.n_recomputed,
            "added": [report.to_dict() for report in self.added],
            "dropped": list(self.dropped),
            "rescored": [report.to_dict() for report in self.rescored],
            "unchanged": list(self.unchanged),
            "term_order": list(self.term_order),
            "detector_trained": self.detector_trained,
            "timings": dict(self.timings),
            "cache": dict(self.cache),
            "warnings": list(self.warnings),
        }


class StreamingEnricher:
    """Owns a corpus and re-enriches it incrementally as documents arrive.

    Parameters
    ----------
    ontology:
        The ontology to enrich (also the detector's label source).
    corpus:
        The initial corpus; it is grown in place by
        :meth:`add_documents`.
    enricher:
        Optional pre-built :class:`OntologyEnricher`; pass one to
        control configuration (cache dir, index store, workers).  A
        default enricher is built otherwise.
    pos_lexicon:
        Forwarded to the default enricher (ignored when ``enricher`` is
        given).

    Example
    -------
    >>> from repro.scenarios import make_enrichment_scenario
    >>> scenario = make_enrichment_scenario(seed=0, n_concepts=20,
    ...                                     docs_per_concept=4)
    >>> streamer = StreamingEnricher(scenario.ontology, scenario.corpus,
    ...                              pos_lexicon=scenario.pos_lexicon)
    >>> baseline = streamer.baseline()
    >>> from repro.corpus.document import Document
    >>> diff = streamer.add_documents(
    ...     [Document("late-1", [["wound", "healing", "study"]])])
    >>> diff.fingerprint == streamer.fingerprint
    True
    """

    def __init__(
        self,
        ontology,
        corpus: Corpus,
        *,
        enricher: OntologyEnricher | None = None,
        pos_lexicon: dict[str, str] | None = None,
    ) -> None:
        self.ontology = ontology
        self.corpus = corpus
        self.enricher = (
            enricher
            if enricher is not None
            else OntologyEnricher(ontology, pos_lexicon=pos_lexicon)
        )
        self.report: EnrichmentReport | None = None
        self.deltas: list[ReportDiff] = []

    @property
    def fingerprint(self) -> str:
        """The current corpus fingerprint (builds the index if needed)."""
        return self.corpus.index().fingerprint()

    def baseline(self) -> EnrichmentReport:
        """Run (or return) the full enrichment of the current corpus.

        The first :meth:`add_documents` call runs this implicitly; call
        it eagerly to front-load the expensive cold run.
        """
        if self.report is None:
            self.report = self.enricher.enrich(self.corpus)
        return self.report

    # -- the delta path ----------------------------------------------------

    def add_documents(self, documents: list[Document]) -> ReportDiff:
        """Grow the corpus by ``documents`` and re-enrich incrementally.

        Only terms whose postings actually changed — the known terms
        the arriving documents mention, plus genuinely new candidates —
        are re-featurised; every other term's vector is carried forward
        to the grown corpus fingerprint and served from the warm cache.
        The emitted :class:`ReportDiff` composes onto the previous
        report (``diff.apply(previous)``) to yield exactly what a
        from-scratch run over the grown corpus would report.

        Validation is all-or-nothing: duplicate ids (within the batch
        or against the corpus) raise before anything mutates.
        """
        started = time.perf_counter()
        if not documents:
            raise ValidationError("add_documents needs at least one document")
        seen: set[str] = set()
        for doc in documents:
            if doc.doc_id in seen:
                raise CorpusError(
                    f"duplicate document id {doc.doc_id!r} in batch"
                )
            seen.add(doc.doc_id)
            if self._corpus_has(doc.doc_id):
                raise CorpusError(
                    f"duplicate document id {doc.doc_id!r} already in corpus"
                )

        base_report = self.baseline()
        base_fp = self.fingerprint

        # 1. Which known terms do the arriving documents mention?  A
        #    throwaway index over just the delta answers in O(delta).
        universe = sorted(
            {report.term for report in base_report.terms}
            | set(self.ontology.terms())
        )
        changed = self._changed_terms(documents, universe)

        for doc in documents:
            self.corpus.add(doc)
        new_fp = self.fingerprint

        # 2. Carry unchanged terms' vectors to the new fingerprint
        #    before re-running, so the run starts warm (and its cache
        #    counters — snapshotted inside ``enrich`` — prove it).
        carried = self._carry_cache_forward(
            base_fp, new_fp, [t for t in universe if t not in changed]
        )

        # 3. The detector trains on the corpus, so a grown corpus must
        #    retrain for delta == from-scratch equality; the training
        #    vectors themselves come warm from the carry-forward.
        self.enricher.invalidate_training()
        new_report = self.enricher.enrich(self.corpus)

        diff = self._diff(base_report, new_report, base_fp, new_fp)
        diff.documents = [doc.doc_id for doc in documents]
        diff.changed_terms = sorted(changed)
        diff.timings["delta_total"] = time.perf_counter() - started
        diff.timings["carry_forward"] = carried
        self.report = new_report
        self.deltas.append(diff)
        return diff

    # -- internals ---------------------------------------------------------

    def _corpus_has(self, doc_id: str) -> bool:
        try:
            self.corpus.document(doc_id)
        except CorpusError:
            return False
        return True

    def _changed_terms(
        self, documents: list[Document], universe: list[str]
    ) -> set[str]:
        """Known terms whose postings the delta documents perturb."""
        from repro.corpus.index import CorpusIndex

        delta_index = CorpusIndex(documents)
        records = delta_index.occurrence_records(
            universe, window=self.enricher.feature_extractor.window
        )
        return {term for term in universe if records.get(term)}

    def _carry_cache_forward(
        self, base_fp: str, new_fp: str, unchanged_terms: list[str]
    ) -> float:
        """Re-key unchanged terms' vectors under the grown fingerprint.

        Both key families move: the detection keys *and* the training
        keys (the detector re-fits on the grown corpus and must find
        its vectors warm too).  While reading, the source generations
        are pinned against eviction (a disk store near its size cap
        would otherwise evict the old generation as the new one grows
        mid-migration).  Returns the wall-clock seconds spent.
        """
        started = time.perf_counter()
        cache = self.enricher.feature_cache
        if cache is None or not unchanged_terms:
            return time.perf_counter() - started
        extractor = self.enricher.feature_extractor
        config_fps = [
            detect_config_fingerprint(extractor, self.enricher.config),
            dataset_config_fingerprint(extractor),
        ]
        with ExitStack() as stack:
            store = cache.backing_store
            if isinstance(store, DiskCacheStore):
                for config_fp in config_fps:
                    stack.enter_context(
                        store.pin_generation(base_fp, config_fp)
                    )
            old_keys = [
                FeatureCache.key(base_fp, term, config_fp)
                for config_fp in config_fps
                for term in unchanged_terms
            ]
            # record=False: migration reads are plumbing, not workflow
            # lookups — the report's hit/miss delta must reflect the
            # re-run only.
            found = cache.lookup_many(old_keys, record=False)
            cache.store_many(
                [
                    ((new_fp, term, config_fp), vector)
                    for (__, term, config_fp), vector in found.items()
                ]
            )
        return time.perf_counter() - started

    @staticmethod
    def _diff(
        base: EnrichmentReport,
        new: EnrichmentReport,
        base_fp: str,
        new_fp: str,
    ) -> ReportDiff:
        base_rows = {report.term: report for report in base.terms}
        new_rows = {report.term: report for report in new.terms}
        added, rescored, unchanged = [], [], []
        for report in new.terms:
            old = base_rows.get(report.term)
            if old is None:
                added.append(report)
            elif old.to_dict() != report.to_dict():
                rescored.append(report)
            else:
                unchanged.append(report.term)
        dropped = [
            report.term for report in base.terms if report.term not in new_rows
        ]
        return ReportDiff(
            base_fingerprint=base_fp,
            fingerprint=new_fp,
            added=added,
            dropped=dropped,
            rescored=rescored,
            unchanged=unchanged,
            term_order=[report.term for report in new.terms],
            detector_trained=new.detector_trained,
            timings=dict(new.timings),
            cache=dict(new.cache),
            warnings=list(new.warnings),
        )
