"""The OntologyEnricher: Steps I → II → III → IV wired together.

This is the paper's "entire workflow to enrich biomedical ontologies":
extract candidate terms from the corpus, decide whether each is
polysemic, induce its sense(s), and propose where to attach it in the
ontology.
"""

from __future__ import annotations

from repro.corpus.corpus import Corpus
from repro.errors import LinkageError
from repro.extraction.extractor import BioTexExtractor
from repro.linkage.linker import SemanticLinker
from repro.ontology.model import Ontology
from repro.polysemy.dataset import build_polysemy_dataset
from repro.polysemy.detector import PolysemyDetector
from repro.polysemy.features import PolysemyFeatureExtractor
from repro.senses.induction import SenseInducer
from repro.senses.predictor import SenseCountPredictor
from repro.text.postag import LexiconTagger
from repro.workflow.config import EnrichmentConfig
from repro.workflow.report import EnrichmentReport, TermReport


class OntologyEnricher:
    """Run the four-step enrichment workflow against an ontology.

    Parameters
    ----------
    ontology:
        The ontology to enrich (also the Step II training-label source).
    config:
        Workflow configuration.
    pos_lexicon:
        Optional gold ``word → tag`` mapping for the Step I tagger (pass
        the corpus generator's ``lexicon.pos_lexicon`` on synthetic data).

    Example
    -------
    >>> from repro.scenarios import make_enrichment_scenario
    >>> scenario = make_enrichment_scenario(seed=0, n_concepts=20,
    ...                                     docs_per_concept=4)
    >>> enricher = OntologyEnricher(scenario.ontology,
    ...                             pos_lexicon=scenario.pos_lexicon)
    >>> report = enricher.enrich(scenario.corpus)
    >>> report.n_candidates > 0
    True
    """

    def __init__(
        self,
        ontology: Ontology,
        *,
        config: EnrichmentConfig | None = None,
        pos_lexicon: dict[str, str] | None = None,
    ) -> None:
        from repro.lexicon import BioLexicon

        self.ontology = ontology
        self.config = config if config is not None else EnrichmentConfig()
        cfg = self.config
        tagger = LexiconTagger(pos_lexicon or {}, language=cfg.language)
        # General-academic stop list, as shipped with BioTex: keeps
        # "study results"-style collocations out of the candidate list.
        stop_words = frozenset(
            BioLexicon.filler_nouns()
            + BioLexicon.core_verbs()
            + BioLexicon.core_adverbs()
        )
        self._extractor = BioTexExtractor(
            language=cfg.language,
            measure=cfg.extraction_measure,
            tagger=tagger,
            min_length=cfg.min_term_length,
            stop_words=stop_words,
        )
        self._feature_extractor = PolysemyFeatureExtractor(
            window=cfg.context_window
        )
        self._detector = PolysemyDetector(
            cfg.polysemy_classifier,
            extractor=self._feature_extractor,
            seed=cfg.seed,
        )
        self._inducer = SenseInducer(
            SenseCountPredictor(
                algorithm=cfg.sense_algorithm,
                index=cfg.sense_index,
                representation=cfg.sense_representation,
                seed=cfg.seed,
            ),
            seed=cfg.seed,
        )
        self._detector_trained = False

    # -- step II training -------------------------------------------------

    def train_polysemy_detector(self, corpus: Corpus) -> None:
        """Fit Step II on labelled terms of the ontology found in ``corpus``."""
        dataset = build_polysemy_dataset(
            self.ontology,
            corpus,
            extractor=self._feature_extractor,
            min_contexts=self.config.min_contexts,
            seed=self.config.seed,
        )
        self._detector.fit(dataset)
        self._detector_trained = True

    # -- the workflow ---------------------------------------------------------

    def enrich(self, corpus: Corpus) -> EnrichmentReport:
        """Run Steps I–IV over ``corpus`` and report per-candidate results."""
        cfg = self.config
        report = EnrichmentReport()

        # Step II needs a trained classifier; label source is the ontology.
        if not self._detector_trained:
            try:
                self.train_polysemy_detector(corpus)
            except Exception:
                # Degenerate corpora (no polysemic terms with contexts)
                # fall back to treating every candidate as monosemous.
                self._detector_trained = False

        # Step I: candidate terms.
        ranked = self._extractor.extract(corpus, top_k=cfg.n_candidates * 3)
        # Declare every candidate up front so the linker builds its term
        # graph and context index once for the whole batch.
        linker = SemanticLinker(
            self.ontology,
            corpus,
            extra_terms=[candidate.term for candidate in ranked],
            window=cfg.context_window,
            top_k=cfg.top_k_positions,
            expand_hierarchy=cfg.expand_hierarchy,
        )

        examined = 0
        for candidate in ranked:
            if examined >= cfg.n_candidates:
                break
            if cfg.skip_known_terms and self.ontology.has_term(candidate.term):
                continue
            examined += 1
            term_report = TermReport(
                term=candidate.term,
                extraction_score=candidate.score,
                extraction_rank=candidate.rank,
            )
            report.terms.append(term_report)

            occurrences = corpus.contexts_for_term(
                candidate.term, window=cfg.context_window
            )
            term_report.n_contexts = len(occurrences)
            if len(occurrences) < cfg.min_contexts:
                term_report.skipped_reason = (
                    f"only {len(occurrences)} contexts "
                    f"(< {cfg.min_contexts})"
                )
                continue
            # Cap very frequent candidates: the per-candidate clustering
            # and graph features are superlinear in the context count.
            if len(occurrences) > 80:
                step = len(occurrences) / 80
                occurrences = [occurrences[int(i * step)] for i in range(80)]
            contexts = [ctx.tokens for ctx in occurrences]

            # Step II: polysemy detection.
            if self._detector_trained:
                vector = self._feature_extractor.features_from_contexts(
                    candidate.term,
                    contexts,
                    doc_frequency=len({c.doc_id for c in occurrences}),
                )
                term_report.polysemic = bool(
                    self._detector.predict_features(vector[None, :])[0] == 1
                )
            else:
                term_report.polysemic = False

            # Step III: sense induction (k = 1 for monosemous candidates).
            term_report.senses = self._inducer.induce(
                candidate.term, contexts, polysemic=term_report.polysemic
            )

            # Step IV: semantic linkage.
            try:
                term_report.propositions = linker.propose(candidate.term)
            except LinkageError as exc:
                term_report.skipped_reason = f"linkage failed: {exc}"
        return report
