"""The OntologyEnricher: Steps I → IV as explicit composable stages.

This is the paper's "entire workflow to enrich biomedical ontologies",
restructured as a staged batch pipeline:

* :class:`ExtractStage` — Step I: rank candidate terms and select the
  batch to examine;
* :class:`DetectStage` — Step II: materialise each candidate's contexts
  through the shared positional index, featurise, and classify
  polysemic/monosemous (training the detector on ontology labels first
  when needed);
* :class:`InduceStage` — Step III: cluster each candidate's contexts
  into its induced sense(s);
* :class:`LinkStage` — Step IV: build the shared linkage artefacts once
  and propose ranked ontology positions per candidate.

A :class:`PipelineContext` carries the shared state between stages: the
corpus's :class:`~repro.corpus.index.CorpusIndex` (built once, reused by
every stage instead of rescanning documents), the ranked candidates, the
per-candidate work items, and the growing
:class:`~repro.workflow.report.EnrichmentReport`.  Per-stage wall times
are recorded in ``report.timings``.

The per-candidate work of Steps II–III is independent across candidates,
so :class:`EnrichmentConfig`'s ``n_workers``/``batch_size`` knobs can
fan it out over a thread pool; the default (``n_workers=1``) runs
sequentially and both modes produce identical reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.corpus.corpus import Corpus
from repro.corpus.index import CorpusIndex
from repro.errors import LinkageError
from repro.extraction.extractor import BioTexExtractor, RankedTerm
from repro.linkage.linker import SemanticLinker
from repro.ontology.model import Ontology
from repro.polysemy.dataset import build_polysemy_dataset
from repro.polysemy.detector import PolysemyDetector
from repro.polysemy.features import PolysemyFeatureExtractor
from repro.senses.induction import SenseInducer
from repro.senses.predictor import SenseCountPredictor
from repro.text.postag import LexiconTagger
from repro.workflow.config import EnrichmentConfig
from repro.workflow.report import EnrichmentReport, TermReport


@dataclass
class CandidateWork:
    """Mutable per-candidate state threaded through the stages.

    Attributes
    ----------
    candidate:
        The Step I ranked term.
    report:
        The candidate's row in the :class:`EnrichmentReport` (stages
        fill it in as they run).
    contexts:
        The (capped) context windows materialised by
        :class:`DetectStage`; ``None`` until then or when the candidate
        was skipped.
    doc_frequency:
        Distinct documents the candidate occurs in.
    """

    candidate: RankedTerm
    report: TermReport
    contexts: list[tuple[str, ...]] | None = None
    doc_frequency: int = 0

    @property
    def active(self) -> bool:
        """True while the candidate is still flowing through the stages."""
        return self.report.skipped_reason is None


@dataclass
class PipelineContext:
    """Shared state handed from stage to stage.

    Attributes
    ----------
    corpus / ontology / config:
        The enrichment inputs.
    index:
        The corpus's positional index, built once before the first stage
        and reused by every occurrence lookup in the pipeline.
    report:
        The growing output report.
    ranked:
        Every Step I candidate (also seeds the linker's shared build).
    work:
        One :class:`CandidateWork` per *examined* candidate.
    """

    corpus: Corpus
    ontology: Ontology
    config: EnrichmentConfig
    index: CorpusIndex
    report: EnrichmentReport = field(default_factory=EnrichmentReport)
    ranked: list[RankedTerm] = field(default_factory=list)
    work: list[CandidateWork] = field(default_factory=list)


def _for_each_candidate(fn, items, *, n_workers: int, batch_size: int) -> None:
    """Apply ``fn`` to every work item, optionally over a thread pool.

    Items are independent, so execution order cannot change results;
    each worker processes ``batch_size`` items per task.
    """
    if n_workers <= 1 or len(items) <= 1:
        for item in items:
            fn(item)
        return
    from concurrent.futures import ThreadPoolExecutor

    batches = [
        items[start : start + batch_size]
        for start in range(0, len(items), batch_size)
    ]

    def run_batch(batch: list[CandidateWork]) -> None:
        for item in batch:
            fn(item)

    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        # Drain the iterator so worker exceptions propagate here.
        list(pool.map(run_batch, batches))


class ExtractStage:
    """Step I: rank candidates and select the batch to examine."""

    name = "extract"

    def __init__(self, extractor: BioTexExtractor) -> None:
        self._extractor = extractor

    def run(self, ctx: PipelineContext) -> None:
        cfg = ctx.config
        # Over-fetch so skip_known_terms still fills the batch.
        ctx.ranked = self._extractor.extract(
            ctx.corpus, top_k=cfg.n_candidates * 3, index=ctx.index
        )
        for candidate in ctx.ranked:
            if len(ctx.work) >= cfg.n_candidates:
                break
            if cfg.skip_known_terms and ctx.ontology.has_term(candidate.term):
                continue
            term_report = TermReport(
                term=candidate.term,
                extraction_score=candidate.score,
                extraction_rank=candidate.rank,
            )
            ctx.report.terms.append(term_report)
            ctx.work.append(
                CandidateWork(candidate=candidate, report=term_report)
            )


class DetectStage:
    """Step II: materialise contexts and classify polysemy per candidate."""

    name = "detect"

    def __init__(
        self,
        detector: PolysemyDetector,
        feature_extractor: PolysemyFeatureExtractor,
        *,
        trained: bool,
    ) -> None:
        self._detector = detector
        self._features = feature_extractor
        self._trained = trained

    def _materialise(self, ctx: PipelineContext, item: CandidateWork) -> None:
        cfg = ctx.config
        occurrences = ctx.index.contexts_for_term(
            item.candidate.term, window=cfg.context_window
        )
        item.report.n_contexts = len(occurrences)
        if len(occurrences) < cfg.min_contexts:
            item.report.skipped_reason = (
                f"only {len(occurrences)} contexts "
                f"(< {cfg.min_contexts})"
            )
            return
        # Cap very frequent candidates: the per-candidate clustering
        # and graph features are superlinear in the context count.
        cap = cfg.max_contexts_per_term
        if len(occurrences) > cap:
            step = len(occurrences) / cap
            occurrences = [occurrences[int(i * step)] for i in range(cap)]
        # Document frequency over the kept occurrences (they are what the
        # feature vector sees).
        item.doc_frequency = len({c.doc_id for c in occurrences})
        item.contexts = [ctx_.tokens for ctx_ in occurrences]

    def _detect(self, item: CandidateWork) -> None:
        if item.contexts is None:
            return
        if not self._trained:
            item.report.polysemic = False
            return
        vector = self._features.features_from_contexts(
            item.candidate.term,
            item.contexts,
            doc_frequency=item.doc_frequency,
        )
        item.report.polysemic = bool(
            self._detector.predict_features(vector[None, :])[0] == 1
        )

    def run(self, ctx: PipelineContext) -> None:
        cfg = ctx.config

        def process(item: CandidateWork) -> None:
            self._materialise(ctx, item)
            self._detect(item)

        _for_each_candidate(
            process,
            ctx.work,
            n_workers=cfg.n_workers,
            batch_size=cfg.batch_size,
        )


class InduceStage:
    """Step III: induce each candidate's sense(s) from its contexts."""

    name = "induce"

    def __init__(self, inducer: SenseInducer) -> None:
        self._inducer = inducer

    def run(self, ctx: PipelineContext) -> None:
        cfg = ctx.config

        def process(item: CandidateWork) -> None:
            if item.contexts is None:
                return
            item.report.senses = self._inducer.induce(
                item.candidate.term,
                item.contexts,
                polysemic=bool(item.report.polysemic),
            )

        _for_each_candidate(
            process,
            ctx.work,
            n_workers=cfg.n_workers,
            batch_size=cfg.batch_size,
        )


class LinkStage:
    """Step IV: shared-artefact build plus per-candidate propositions."""

    name = "link"

    def run(self, ctx: PipelineContext) -> None:
        cfg = ctx.config
        # Declare every candidate up front so the linker builds its term
        # graph and context index once for the whole batch.
        linker = SemanticLinker(
            ctx.ontology,
            ctx.corpus,
            extra_terms=[candidate.term for candidate in ctx.ranked],
            window=cfg.context_window,
            top_k=cfg.top_k_positions,
            expand_hierarchy=cfg.expand_hierarchy,
            index=ctx.index,
        )
        for item in ctx.work:
            if item.contexts is None:
                continue
            try:
                item.report.propositions = linker.propose(item.candidate.term)
            except LinkageError as exc:
                item.report.skipped_reason = f"linkage failed: {exc}"


class OntologyEnricher:
    """Run the four-step enrichment workflow against an ontology.

    Parameters
    ----------
    ontology:
        The ontology to enrich (also the Step II training-label source).
    config:
        Workflow configuration.
    pos_lexicon:
        Optional gold ``word → tag`` mapping for the Step I tagger (pass
        the corpus generator's ``lexicon.pos_lexicon`` on synthetic data).

    Example
    -------
    >>> from repro.scenarios import make_enrichment_scenario
    >>> scenario = make_enrichment_scenario(seed=0, n_concepts=20,
    ...                                     docs_per_concept=4)
    >>> enricher = OntologyEnricher(scenario.ontology,
    ...                             pos_lexicon=scenario.pos_lexicon)
    >>> report = enricher.enrich(scenario.corpus)
    >>> report.n_candidates > 0
    True
    """

    def __init__(
        self,
        ontology: Ontology,
        *,
        config: EnrichmentConfig | None = None,
        pos_lexicon: dict[str, str] | None = None,
    ) -> None:
        from repro.lexicon import BioLexicon

        self.ontology = ontology
        self.config = config if config is not None else EnrichmentConfig()
        cfg = self.config
        tagger = LexiconTagger(pos_lexicon or {}, language=cfg.language)
        # General-academic stop list, as shipped with BioTex: keeps
        # "study results"-style collocations out of the candidate list.
        stop_words = frozenset(
            BioLexicon.filler_nouns()
            + BioLexicon.core_verbs()
            + BioLexicon.core_adverbs()
        )
        self._extractor = BioTexExtractor(
            language=cfg.language,
            measure=cfg.extraction_measure,
            tagger=tagger,
            min_length=cfg.min_term_length,
            stop_words=stop_words,
        )
        self._feature_extractor = PolysemyFeatureExtractor(
            window=cfg.context_window
        )
        self._detector = PolysemyDetector(
            cfg.polysemy_classifier,
            extractor=self._feature_extractor,
            seed=cfg.seed,
        )
        self._inducer = SenseInducer(
            SenseCountPredictor(
                algorithm=cfg.sense_algorithm,
                index=cfg.sense_index,
                representation=cfg.sense_representation,
                seed=cfg.seed,
            ),
            seed=cfg.seed,
        )
        self._detector_trained = False

    # -- step II training -------------------------------------------------

    def train_polysemy_detector(
        self, corpus: Corpus, *, index: CorpusIndex | None = None
    ) -> None:
        """Fit Step II on labelled terms of the ontology found in ``corpus``."""
        dataset = build_polysemy_dataset(
            self.ontology,
            corpus,
            extractor=self._feature_extractor,
            min_contexts=self.config.min_contexts,
            seed=self.config.seed,
            index=index,
        )
        self._detector.fit(dataset)
        self._detector_trained = True

    # -- the staged workflow --------------------------------------------------

    def stages(self) -> list:
        """The pipeline's stages, in execution order.

        Exposed so callers can run or instrument stages individually;
        :meth:`enrich` composes exactly this list.
        """
        return [
            ExtractStage(self._extractor),
            DetectStage(
                self._detector,
                self._feature_extractor,
                trained=self._detector_trained,
            ),
            InduceStage(self._inducer),
            LinkStage(),
        ]

    def enrich(
        self, corpus: Corpus, *, index: CorpusIndex | None = None
    ) -> EnrichmentReport:
        """Run Steps I–IV over ``corpus`` and report per-candidate results.

        Pass a prebuilt ``index`` to amortise the corpus index across
        repeated ``enrich`` calls on the same corpus (it is also cached
        on the corpus itself, so the second call is cheap either way).
        """
        timings: dict[str, float] = {}
        started = time.perf_counter()
        if index is None:
            index = corpus.index()
        timings["index"] = time.perf_counter() - started

        # Step II needs a trained classifier; label source is the ontology.
        train_started = time.perf_counter()
        if not self._detector_trained:
            try:
                self.train_polysemy_detector(corpus, index=index)
            except Exception:
                # Degenerate corpora (no polysemic terms with contexts)
                # fall back to treating every candidate as monosemous.
                self._detector_trained = False
        timings["train"] = time.perf_counter() - train_started

        ctx = PipelineContext(
            corpus=corpus,
            ontology=self.ontology,
            config=self.config,
            index=index,
        )
        for stage in self.stages():
            stage_started = time.perf_counter()
            stage.run(ctx)
            timings[stage.name] = time.perf_counter() - stage_started
        ctx.report.timings = timings
        return ctx.report
