"""The OntologyEnricher: Steps I → IV as explicit composable stages.

This is the paper's "entire workflow to enrich biomedical ontologies",
restructured as a staged batch pipeline:

* :class:`ExtractStage` — Step I: rank candidate terms and select the
  batch to examine;
* :class:`DetectStage` — Step II: materialise each candidate's contexts
  through the shared positional index, featurise, and classify
  polysemic/monosemous (training the detector on ontology labels first
  when needed);
* :class:`InduceStage` — Step III: cluster each candidate's contexts
  into its induced sense(s);
* :class:`LinkStage` — Step IV: build the shared linkage artefacts once
  and propose ranked ontology positions per candidate.

A :class:`PipelineContext` carries the shared state between stages: the
corpus's :class:`~repro.corpus.index.CorpusIndex` (built once, reused by
every stage instead of rescanning documents; ``index_shards > 1``
partitions it across a
:class:`~repro.corpus.index.ShardedCorpusIndex` with byte-identical
query results), the ranked candidates, the
per-candidate work items, and the growing
:class:`~repro.workflow.report.EnrichmentReport`.  Per-stage wall times
are recorded in ``report.timings``.

The per-candidate work of Steps II–III is independent across candidates,
so :class:`EnrichmentConfig`'s ``n_workers``/``batch_size`` knobs can
fan it out over a worker pool; the default (``n_workers=1``) runs
sequentially and every mode produces identical reports.  The
``worker_backend`` knob picks the pool: ``"thread"`` (shared memory,
mutates work items in place) or ``"process"`` (a
``concurrent.futures.ProcessPoolExecutor`` escaping the GIL — the
per-candidate callables are picklable :class:`_DetectProcessor` /
:class:`_InduceProcessor` objects shipped once per worker, and the
mutated work items are shipped back and merged into the originals).

Step II featurisation is memoised in a
:class:`~repro.polysemy.cache.FeatureCache` keyed by (corpus
fingerprint, term, config fingerprint), so repeated training runs and
``enrich`` calls skip recomputation; hit/miss counters surface in
:attr:`EnrichmentReport.cache`.  With ``EnrichmentConfig(cache_dir=...)``
the cache is backed by a persistent
:class:`~repro.polysemy.cache_store.DiskCacheStore` shared across runs
and processes: the parent prefills from the store, process-pool workers
additionally read the store directly through their own handle (catching
entries a concurrent run persisted mid-flight), and every *new* vector
ships back to the parent, which is the store's single writer for the
stage.  ``EnrichmentConfig(cache_url=...)`` swaps the disk store for a
:class:`~repro.service.client.RemoteCacheStore` talking to a
``repro serve`` process, so the very same warm-vector sharing works
across machines — with every network failure degrading to a cache miss
(``remote_errors`` in :attr:`EnrichmentReport.cache`), never an error.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, fields

import numpy as np

from repro.corpus.corpus import Corpus
from repro.corpus.index import CorpusIndex, ShardedCorpusIndex
from repro.errors import CorpusError, LinkageError
from repro.extraction.extractor import BioTexExtractor, RankedTerm
from repro.linkage.linker import SemanticLinker
from repro.ontology.model import Ontology
from repro.polysemy.cache import FeatureCache
from repro.polysemy.cache_store import DiskCacheStore
from repro.service.client import RemoteCacheStore
from repro.polysemy.dataset import build_polysemy_dataset
from repro.polysemy.detector import PolysemyDetector
from repro.polysemy.features import PolysemyFeatureExtractor
from repro.senses.induction import SenseInducer
from repro.senses.predictor import SenseCountPredictor
from repro.text.postag import LexiconTagger
from repro.workflow.config import EnrichmentConfig
from repro.workflow.report import EnrichmentReport, TermReport


@dataclass
class CandidateWork:
    """Mutable per-candidate state threaded through the stages.

    Attributes
    ----------
    candidate:
        The Step I ranked term.
    report:
        The candidate's row in the :class:`EnrichmentReport` (stages
        fill it in as they run).
    contexts:
        The (capped) context windows materialised by
        :class:`DetectStage`; ``None`` until then or when the candidate
        was skipped.
    doc_frequency:
        Distinct documents the candidate occurs in.
    features:
        The Step II feature vector (pre-filled from the
        :class:`~repro.polysemy.cache.FeatureCache` on a hit, computed
        by :class:`DetectStage` otherwise; ``None`` when Step II never
        featurised the candidate).
    features_from_store:
        True when a pool worker loaded ``features`` straight from the
        shared :class:`~repro.polysemy.cache_store.DiskCacheStore`
        (rather than computing them); the parent counts these as cache
        hits and skips re-persisting them.
    """

    candidate: RankedTerm
    report: TermReport
    contexts: list[tuple[str, ...]] | None = None
    doc_frequency: int = 0
    features: np.ndarray | None = None
    features_from_store: bool = False

    @property
    def active(self) -> bool:
        """True while the candidate is still flowing through the stages."""
        return self.report.skipped_reason is None


@dataclass
class PipelineContext:
    """Shared state handed from stage to stage.

    Attributes
    ----------
    corpus / ontology / config:
        The enrichment inputs.
    index:
        The corpus's positional index, built once before the first stage
        and reused by every occurrence lookup in the pipeline.
    report:
        The growing output report.
    ranked:
        Every Step I candidate (also seeds the linker's shared build).
    work:
        One :class:`CandidateWork` per *examined* candidate.
    """

    corpus: Corpus
    ontology: Ontology
    config: EnrichmentConfig
    index: CorpusIndex | ShardedCorpusIndex
    report: EnrichmentReport = field(default_factory=EnrichmentReport)
    ranked: list[RankedTerm] = field(default_factory=list)
    work: list[CandidateWork] = field(default_factory=list)


def _merge_work(target: CandidateWork, source: CandidateWork) -> None:
    """Copy a worker-mutated clone's results back into the original.

    Process workers operate on pickled copies, so the parent's report
    rows (already registered in ``ctx.report.terms``) must absorb the
    clone's field values rather than be replaced.
    """
    for report_field in fields(TermReport):
        setattr(
            target.report,
            report_field.name,
            getattr(source.report, report_field.name),
        )
    target.contexts = source.contexts
    target.doc_frequency = source.doc_frequency
    target.features = source.features
    target.features_from_store = source.features_from_store


# The per-worker processor shipped once per process via the pool
# initializer (cheaper than pickling it with every batch — it carries
# the corpus index).
_WORKER_PROCESSOR = None


def _init_worker_processor(processor) -> None:
    global _WORKER_PROCESSOR
    _WORKER_PROCESSOR = processor


def _run_worker_batch(
    batch: list[CandidateWork],
) -> tuple[list[CandidateWork], int]:
    """Process one pickled batch in a pool worker; ship it back with the
    worker store-error delta (a remote store failing inside a worker
    must still surface in the parent's ``remote_errors``)."""
    errors_before = _worker_store_errors()
    for item in batch:
        _WORKER_PROCESSOR(item)
    return batch, _worker_store_errors() - errors_before


def _worker_store_errors() -> int:
    """The worker processor's store failure count (0 when storeless)."""
    counter = getattr(_WORKER_PROCESSOR, "store_error_count", None)
    return counter() if counter is not None else 0


def _for_each_candidate(
    fn,
    items: list[CandidateWork],
    *,
    n_workers: int,
    batch_size: int,
    backend: str = "thread",
) -> int:
    """Apply ``fn`` to every work item, optionally over a worker pool.

    Items are independent, so execution order cannot change results;
    each worker processes ``batch_size`` items per task.  ``backend``
    picks the pool for ``n_workers > 1``: ``"thread"`` mutates the items
    in place, ``"process"`` requires ``fn`` and the items to be
    picklable and merges the returned copies back into the originals.

    Returns the summed worker *store-error* count (process backend
    only; 0 otherwise) — sequential and thread modes hit the parent's
    own store handle, which counts its failures itself.
    """
    if n_workers <= 1 or len(items) <= 1:
        for item in items:
            fn(item)
        return 0
    batches = [
        items[start : start + batch_size]
        for start in range(0, len(items), batch_size)
    ]
    if backend == "process":
        with ProcessPoolExecutor(
            max_workers=n_workers,
            initializer=_init_worker_processor,
            initargs=(fn,),
        ) as pool:
            done = list(pool.map(_run_worker_batch, batches))
        worker_errors = 0
        for batch, (done_batch, batch_errors) in zip(batches, done, strict=True):
            worker_errors += batch_errors
            for item, result in zip(batch, done_batch, strict=True):
                _merge_work(item, result)
        return worker_errors

    def run_batch(batch: list[CandidateWork]) -> None:
        for item in batch:
            fn(item)

    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        # Drain the iterator so worker exceptions propagate here.
        list(pool.map(run_batch, batches))
    return 0


class ExtractStage:
    """Step I: rank candidates and select the batch to examine."""

    name = "extract"

    def __init__(self, extractor: BioTexExtractor) -> None:
        self._extractor = extractor

    def run(self, ctx: PipelineContext) -> None:
        cfg = ctx.config
        # Rank everything once (scoring already covers every candidate;
        # top_k only trims the output), then scan down the ranking until
        # the batch is full or candidates are exhausted — a fixed
        # over-fetch window under-fills the batch whenever
        # skip_known_terms filters most of it.
        ranked = self._extractor.extract(
            ctx.corpus, top_k=None, index=ctx.index
        )
        consumed = 0
        for candidate in ranked:
            if len(ctx.work) >= cfg.n_candidates:
                break
            consumed += 1
            if cfg.skip_known_terms and ctx.ontology.has_term(candidate.term):
                continue
            term_report = TermReport(
                term=candidate.term,
                extraction_score=candidate.score,
                extraction_rank=candidate.rank,
            )
            ctx.report.terms.append(term_report)
            ctx.work.append(
                CandidateWork(candidate=candidate, report=term_report)
            )
        # The linker's shared build declares ctx.ranked as extra terms;
        # keep the historical 3x window unless filling the batch had to
        # reach deeper.
        ctx.ranked = ranked[: max(cfg.n_candidates * 3, consumed)]


class _DetectProcessor:
    """Picklable Step II per-candidate work: materialise + classify.

    Instances carry everything a pool worker needs (the corpus index,
    the retrieval caps, the feature extractor, and the trained
    detector), so one pickled copy per worker can process any batch.
    """

    def __init__(
        self,
        *,
        index: CorpusIndex,
        min_contexts: int,
        max_contexts: int,
        window: int,
        features: PolysemyFeatureExtractor,
        detector: PolysemyDetector,
        trained: bool,
        cache_store: DiskCacheStore | RemoteCacheStore | None = None,
        corpus_fingerprint: str = "",
        config_fingerprint: str = "",
    ) -> None:
        self._index = index
        self._min_contexts = min_contexts
        self._max_contexts = max_contexts
        self._window = window
        self._features = features
        self._detector = detector
        self._trained = trained
        # Only set under the process backend with a disk-backed cache:
        # each worker reopens the store (it pickles to its directory
        # path) and reads it directly for candidates the parent's
        # prefill missed — e.g. entries a concurrent run persisted
        # after the prefill.  Workers never write; new vectors ship
        # back with the work item for the parent's single-writer merge.
        self._cache_store = cache_store
        self._corpus_fingerprint = corpus_fingerprint
        self._config_fingerprint = config_fingerprint

    def __call__(self, item: CandidateWork) -> None:
        self._materialise(item)
        self._classify(item)

    def store_error_count(self) -> int:
        """Failed store operations on this worker's own handle.

        Only a remote store fails per-operation; the pool batch runner
        samples this around each batch so worker-side failures merge
        into the parent report's ``remote_errors``.
        """
        return getattr(self._cache_store, "error_count", 0)

    def _materialise(self, item: CandidateWork) -> None:
        occurrences = self._index.contexts_for_term(
            item.candidate.term, window=self._window
        )
        item.report.n_contexts = len(occurrences)
        if len(occurrences) < self._min_contexts:
            item.report.skipped_reason = (
                f"only {len(occurrences)} contexts "
                f"(< {self._min_contexts})"
            )
            # A cache-prefilled vector must not survive on a skipped
            # candidate: contexts is None ⇒ features is None.
            item.features = None
            return
        # Cap very frequent candidates: the per-candidate clustering
        # and graph features are superlinear in the context count.
        cap = self._max_contexts
        if len(occurrences) > cap:
            step = len(occurrences) / cap
            occurrences = [occurrences[int(i * step)] for i in range(cap)]
        # Document frequency over the kept occurrences (they are what the
        # feature vector sees).
        item.doc_frequency = len({c.doc_id for c in occurrences})
        item.contexts = [ctx_.tokens for ctx_ in occurrences]

    def _classify(self, item: CandidateWork) -> None:
        if item.contexts is None:
            return
        if not self._trained:
            item.report.polysemic = False
            return
        if item.features is None and self._cache_store is not None:
            stored = self._cache_store.get(
                FeatureCache.key(
                    self._corpus_fingerprint,
                    item.candidate.term,
                    self._config_fingerprint,
                )
            )
            if stored is not None:
                item.features = stored
                item.features_from_store = True
        if item.features is None:
            item.features = self._features.features_from_contexts(
                item.candidate.term,
                item.contexts,
                doc_frequency=item.doc_frequency,
            )
        item.report.polysemic = bool(
            self._detector.predict_features(item.features[None, :])[0] == 1
        )


def detect_config_fingerprint(
    feature_extractor: PolysemyFeatureExtractor, config: EnrichmentConfig
) -> str:
    """The cache-key config fingerprint of :class:`DetectStage`.

    One definition for the Step II key format, shared with the streaming
    delta path (:mod:`repro.workflow.streaming`) that migrates warm
    vectors across corpus fingerprints — the two must never drift apart
    or deltas silently re-featurise every candidate.  Pins everything
    that shapes the vector: the extractor settings plus the stage's own
    retrieval caps.
    """
    return (
        f"{feature_extractor.fingerprint()};"
        f"detect_window={config.context_window};"
        f"detect_cap={config.max_contexts_per_term}"
    )


class DetectStage:
    """Step II: materialise contexts and classify polysemy per candidate."""

    name = "detect"

    def __init__(
        self,
        detector: PolysemyDetector,
        feature_extractor: PolysemyFeatureExtractor,
        *,
        trained: bool,
        cache: FeatureCache | None = None,
    ) -> None:
        self._detector = detector
        self._features = feature_extractor
        self._trained = trained
        self._cache = cache

    def run(self, ctx: PipelineContext) -> None:
        cfg = ctx.config
        # Featurisation only happens with a trained detector, so only
        # then do cache lookups make sense (misses would never be
        # back-filled otherwise).
        cache = self._cache if self._trained else None
        corpus_fp = config_fp = ""
        worker_store: DiskCacheStore | RemoteCacheStore | None = None
        if cache is not None:
            corpus_fp = ctx.index.fingerprint()
            config_fp = detect_config_fingerprint(self._features, cfg)
            if (
                cfg.worker_backend == "process"
                and cfg.n_workers > 1
                and isinstance(
                    cache.backing_store, (DiskCacheStore, RemoteCacheStore)
                )
            ):
                worker_store = cache.backing_store
        processor = _DetectProcessor(
            index=ctx.index,
            min_contexts=cfg.min_contexts,
            max_contexts=cfg.max_contexts_per_term,
            window=cfg.context_window,
            features=self._features,
            detector=self._detector,
            trained=self._trained,
            cache_store=worker_store,
            corpus_fingerprint=corpus_fp,
            config_fingerprint=config_fp,
        )
        keys: dict[int, tuple[str, str, str]] = {}
        prefilled: set[int] = set()
        if cache is not None:
            for item in ctx.work:
                keys[id(item)] = FeatureCache.key(
                    corpus_fp, item.candidate.term, config_fp
                )
            # Peek without counting — whether a probe was a real hit or
            # miss is only known after materialisation (skipped
            # candidates are never featurised).  One lookup_many, so a
            # remote store answers the whole prefill in O(batches) HTTP
            # round trips rather than one per candidate.
            found = cache.lookup_many(
                [keys[id(item)] for item in ctx.work], record=False
            )
            for item in ctx.work:
                item.features = found.get(keys[id(item)])
                if item.features is not None:
                    prefilled.add(id(item))
        worker_errors = _for_each_candidate(
            processor,
            ctx.work,
            n_workers=cfg.n_workers,
            batch_size=cfg.batch_size,
            backend=cfg.worker_backend,
        )
        if cache is not None:
            if worker_errors:
                cache.absorb_worker_errors(worker_errors)
            worker_hits = 0
            to_store: list = []
            for item in ctx.work:
                if item.contexts is None:
                    continue  # skipped before featurisation: no lookup
                hit = id(item) in prefilled or item.features_from_store
                cache.record_lookup(hit)
                if item.features_from_store:
                    worker_hits += 1
                elif not hit and item.features is not None:
                    # Single-writer merge: only the parent persists the
                    # vectors workers computed.
                    to_store.append((keys[id(item)], item.features))
            if to_store:
                # One store_many → batched uploads on a remote store.
                cache.store_many(to_store)
            if worker_hits:
                # Workers read the store through their own handles, so
                # their disk-hit counts must be merged back here (the
                # report would under-count the process pool otherwise).
                cache.absorb_worker_hits(worker_hits)


class _InduceProcessor:
    """Picklable Step III per-candidate work: sense induction."""

    def __init__(self, inducer: SenseInducer) -> None:
        self._inducer = inducer

    def __call__(self, item: CandidateWork) -> None:
        if item.contexts is None:
            return
        item.report.senses = self._inducer.induce(
            item.candidate.term,
            item.contexts,
            polysemic=bool(item.report.polysemic),
        )


class InduceStage:
    """Step III: induce each candidate's sense(s) from its contexts."""

    name = "induce"

    def __init__(self, inducer: SenseInducer) -> None:
        self._inducer = inducer

    def run(self, ctx: PipelineContext) -> None:
        cfg = ctx.config
        _for_each_candidate(
            _InduceProcessor(self._inducer),
            ctx.work,
            n_workers=cfg.n_workers,
            batch_size=cfg.batch_size,
            backend=cfg.worker_backend,
        )


class LinkStage:
    """Step IV: shared-artefact build plus per-candidate propositions."""

    name = "link"

    def run(self, ctx: PipelineContext) -> None:
        cfg = ctx.config
        # Declare every candidate up front so the linker builds its term
        # graph and context index once for the whole batch.
        linker = SemanticLinker(
            ctx.ontology,
            ctx.corpus,
            extra_terms=[candidate.term for candidate in ctx.ranked],
            window=cfg.context_window,
            top_k=cfg.top_k_positions,
            expand_hierarchy=cfg.expand_hierarchy,
            index=ctx.index,
        )
        for item in ctx.work:
            if item.contexts is None:
                continue
            try:
                item.report.propositions = linker.propose(item.candidate.term)
            except LinkageError as exc:
                item.report.skipped_reason = f"linkage failed: {exc}"


class OntologyEnricher:
    """Run the four-step enrichment workflow against an ontology.

    Parameters
    ----------
    ontology:
        The ontology to enrich (also the Step II training-label source).
    config:
        Workflow configuration.
    pos_lexicon:
        Optional gold ``word → tag`` mapping for the Step I tagger (pass
        the corpus generator's ``lexicon.pos_lexicon`` on synthetic data).

    Example
    -------
    >>> from repro.scenarios import make_enrichment_scenario
    >>> scenario = make_enrichment_scenario(seed=0, n_concepts=20,
    ...                                     docs_per_concept=4)
    >>> enricher = OntologyEnricher(scenario.ontology,
    ...                             pos_lexicon=scenario.pos_lexicon)
    >>> report = enricher.enrich(scenario.corpus)
    >>> report.n_candidates > 0
    True
    """

    def __init__(
        self,
        ontology: Ontology,
        *,
        config: EnrichmentConfig | None = None,
        pos_lexicon: dict[str, str] | None = None,
    ) -> None:
        from repro.lexicon import BioLexicon

        self.ontology = ontology
        self.config = config if config is not None else EnrichmentConfig()
        cfg = self.config
        tagger = LexiconTagger(pos_lexicon or {}, language=cfg.language)
        # General-academic stop list, as shipped with BioTex: keeps
        # "study results"-style collocations out of the candidate list.
        stop_words = frozenset(
            BioLexicon.filler_nouns()
            + BioLexicon.core_verbs()
            + BioLexicon.core_adverbs()
        )
        self._extractor = BioTexExtractor(
            language=cfg.language,
            measure=cfg.extraction_measure,
            tagger=tagger,
            min_length=cfg.min_term_length,
            stop_words=stop_words,
        )
        self._feature_extractor = PolysemyFeatureExtractor(
            window=cfg.context_window,
            community_backend=cfg.community_backend,
            community_seed=cfg.seed,
        )
        if cfg.feature_cache:
            if cfg.cache_url is not None:
                store = RemoteCacheStore(
                    cfg.cache_url,
                    timeout=cfg.cache_timeout,
                    batch_size=cfg.cache_batch_size,
                )
            elif cfg.cache_dir is not None:
                store = DiskCacheStore(
                    cfg.cache_dir, max_bytes=cfg.cache_max_bytes
                )
            else:
                store = None
            self._feature_cache = FeatureCache(store=store)
        else:
            self._feature_cache = None
        self._detector = PolysemyDetector(
            cfg.polysemy_classifier,
            extractor=self._feature_extractor,
            seed=cfg.seed,
        )
        self._inducer = SenseInducer(
            SenseCountPredictor(
                algorithm=cfg.sense_algorithm,
                index=cfg.sense_index,
                representation=cfg.sense_representation,
                seed=cfg.seed,
            ),
            seed=cfg.seed,
        )
        self._detector_trained = False

    # -- introspection (the streaming delta path builds on these) ----------

    @property
    def feature_cache(self) -> FeatureCache | None:
        """The Step II feature cache (None when disabled)."""
        return self._feature_cache

    @property
    def feature_extractor(self) -> PolysemyFeatureExtractor:
        """The Step II feature extractor (fingerprints cache keys)."""
        return self._feature_extractor

    @property
    def detector_trained(self) -> bool:
        """Whether Step II currently holds a fitted classifier."""
        return self._detector_trained

    def invalidate_training(self) -> None:
        """Force detector re-training on the next :meth:`enrich` call.

        The detector trains on the corpus, so a *grown* corpus must
        retrain for a delta run to report exactly what a from-scratch
        run over the same documents would — the training-term vectors
        still come warm from the feature cache, so invalidation costs a
        model fit, not a re-featurisation.
        """
        self._detector_trained = False

    # -- step II training -------------------------------------------------

    def train_polysemy_detector(
        self, corpus: Corpus, *, index: CorpusIndex | None = None
    ) -> None:
        """Fit Step II on labelled terms of the ontology found in ``corpus``."""
        dataset = build_polysemy_dataset(
            self.ontology,
            corpus,
            extractor=self._feature_extractor,
            min_contexts=self.config.min_contexts,
            seed=self.config.seed,
            index=index,
            cache=self._feature_cache,
        )
        self._detector.fit(dataset)
        self._detector_trained = True

    # -- the staged workflow --------------------------------------------------

    def stages(self) -> list:
        """The pipeline's stages, in execution order.

        Exposed so callers can run or instrument stages individually;
        :meth:`enrich` composes exactly this list.
        """
        return [
            ExtractStage(self._extractor),
            DetectStage(
                self._detector,
                self._feature_extractor,
                trained=self._detector_trained,
                cache=self._feature_cache,
            ),
            InduceStage(self._inducer),
            LinkStage(),
        ]

    def enrich(
        self, corpus: Corpus, *, index: CorpusIndex | None = None
    ) -> EnrichmentReport:
        """Run Steps I–IV over ``corpus`` and report per-candidate results.

        Pass a prebuilt ``index`` to amortise the corpus index across
        repeated ``enrich`` calls on the same corpus (it is also cached
        on the corpus itself, so the second call is cheap either way).
        The feature cache (when enabled) also persists on the enricher,
        so repeated calls skip Step II featurisation for unchanged
        corpora; with ``cache_dir`` set it persists on disk, so even a
        fresh enricher in a fresh process starts warm.

        With ``EnrichmentConfig(index_dir=...)`` the corpus index
        itself persists in an
        :class:`~repro.corpus.index_store.IndexStore`: the first run
        builds and saves it, every later run (even in a fresh process)
        mmap-reopens it in O(1), and ``worker_backend="process"``
        workers receive a path handle instead of a pickled index.
        """
        timings: dict[str, float] = {}
        cache_before = (
            self._feature_cache.stats
            if self._feature_cache is not None
            else None
        )
        started = time.perf_counter()
        if index is None:
            cfg = self.config
            if cfg.index_dir is not None:
                from repro.corpus.index_store import IndexStore

                store = IndexStore(cfg.index_dir)
                index = store.load_or_build(
                    corpus,
                    n_shards=cfg.index_shards,
                    n_workers=cfg.n_workers,
                    build_backend=cfg.worker_backend,
                )
                # Cache the mmap handle on the corpus so repeated
                # enrich calls (and anything else asking the corpus for
                # its index) reuse the store generation; remembering the
                # store keeps post-growth rebuilds persisted too.
                corpus.adopt_index(index, store=store)
            else:
                index = corpus.index(
                    n_shards=(
                        cfg.index_shards if cfg.index_shards > 1 else None
                    ),
                    n_workers=cfg.n_workers,
                )
        timings["index"] = time.perf_counter() - started

        # Step II needs a trained classifier; label source is the ontology.
        train_started = time.perf_counter()
        train_warning: str | None = None
        if not self._detector_trained:
            try:
                self.train_polysemy_detector(corpus, index=index)
            except CorpusError as exc:
                # Degenerate corpora (no labelled terms of both classes
                # with enough contexts) fall back to treating every
                # candidate as monosemous; programming errors propagate.
                self._detector_trained = False
                train_warning = (
                    "polysemy detector not trained, treating every "
                    f"candidate as monosemous: {exc}"
                )
        timings["train"] = time.perf_counter() - train_started

        ctx = PipelineContext(
            corpus=corpus,
            ontology=self.ontology,
            config=self.config,
            index=index,
        )
        ctx.report.detector_trained = self._detector_trained
        if train_warning is not None:
            ctx.report.warnings.append(train_warning)
        for stage in self.stages():
            stage_started = time.perf_counter()
            stage.run(ctx)
            timings[stage.name] = time.perf_counter() - stage_started
        ctx.report.timings = timings
        if self._feature_cache is not None:
            # Hits/misses/disk_hits/evictions are this call's delta (the
            # cache itself is cumulative across the enricher's
            # lifetime); entries and store_bytes are the absolute state
            # of the backing store after the call.
            after = self._feature_cache.stats
            ctx.report.cache = {
                "hits": after["hits"] - cache_before["hits"],
                "misses": after["misses"] - cache_before["misses"],
                "disk_hits": after["disk_hits"] - cache_before["disk_hits"],
                "evictions": after["evictions"] - cache_before["evictions"],
                "remote_hits": (
                    after["remote_hits"] - cache_before["remote_hits"]
                ),
                "remote_errors": (
                    after["remote_errors"] - cache_before["remote_errors"]
                ),
                "entries": after["entries"],
                "store_bytes": after["store_bytes"],
            }
        return ctx.report
