"""Configuration of the end-to-end enrichment workflow."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError


@dataclass(frozen=True)
class EnrichmentConfig:
    """Knobs of the four workflow steps.

    Parameters
    ----------
    language:
        Corpus/ontology language (``"en"``, ``"fr"``, ``"es"``).
    extraction_measure:
        Step I ranking measure (see
        :data:`repro.extraction.measures.MEASURE_NAMES`).
    n_candidates:
        How many top-ranked candidate terms to push through Steps II–IV.
    min_term_length:
        Minimum candidate length in tokens (2 = multi-word terms only).
    min_contexts:
        Candidates with fewer corpus contexts are skipped (not enough
        signal for polysemy detection or linkage).
    polysemy_classifier:
        Step II classifier registry name.
    sense_algorithm / sense_index / sense_representation:
        Step III clustering algorithm, internal index, and context
        representation (paper defaults: rb + f_k + bag-of-words).
    context_window:
        Tokens kept each side of a term occurrence.
    max_contexts_per_term:
        Cap on contexts kept per candidate (deterministic stride
        subsample); the per-candidate clustering and graph features are
        superlinear in the context count.  Must be >= ``min_contexts``.
    top_k_positions:
        Step IV proposition-list length (paper: 10).
    expand_hierarchy:
        Step IV.2 father/son expansion of the neighbourhood.
    seed:
        Workflow-level RNG seed.
    batch_size:
        Candidates handed to a worker per task in Steps II–III.
    n_workers:
        Workers for the per-candidate work of Steps II–III
        (1 = sequential; results are identical either way).
    worker_backend:
        ``"thread"`` (default) or ``"process"``.  The per-candidate work
        is pure-Python-heavy, so a process pool escapes the GIL for real
        parallelism; results are identical across backends.
    community_backend:
        Community detection used by the Step II graph features:
        ``"louvain"`` (native CSR optimiser, default) or ``"greedy"``
        (networkx fallback — see :mod:`repro.clustering.community`).
    index_shards:
        Partitions of the positional corpus index.  1 (default) keeps
        the monolithic :class:`~repro.corpus.index.CorpusIndex`; N > 1
        builds a :class:`~repro.corpus.index.ShardedCorpusIndex` whose
        shard builds fan out over ``n_workers`` threads.  Query results
        are byte-identical across shard counts.
    index_dir:
        Optional directory backing the corpus index with a persistent
        :class:`~repro.corpus.index_store.IndexStore`: the corpus is
        fingerprinted, a stored generation is reopened via ``mmap`` in
        O(1), and a miss (or any corruption) degrades to a clean build
        that is then persisted for the next run.  Process-pool workers
        receive the mmap handle's directory path instead of a pickled
        index, so worker startup no longer scales with corpus size.
        With ``index_shards > 1`` and ``worker_backend="process"``,
        rebuild shard construction fans out over a process pool.
        Query results are byte-identical with and without the store.
    feature_cache:
        Memoise per-term feature vectors across training runs and
        repeated ``enrich`` calls (keyed by corpus fingerprint, term,
        and feature configuration; see :mod:`repro.polysemy.cache`).
    cache_dir:
        Optional directory backing the feature cache with a persistent
        :class:`~repro.polysemy.cache_store.DiskCacheStore`, so entries
        survive the process and are shared between runs, CLI
        invocations, and ``worker_backend="process"`` workers (see
        :mod:`repro.polysemy.cache_store`).  None (default) keeps the
        in-memory store.  Requires ``feature_cache=True``.
    cache_max_bytes:
        Optional size cap on the on-disk store; exceeding it evicts
        least-recently-used entries (stale fingerprint generations
        first, then the oldest shard files).  Requires ``cache_dir``.
    cache_url:
        Optional base URL of a ``repro serve`` cache service (e.g.
        ``http://cache-host:8750``) backing the feature cache with a
        :class:`~repro.service.client.RemoteCacheStore`, so warm Step
        II vectors are shared across *machines*.  Every network failure
        degrades to a clean cache miss (counted in the report's
        ``remote_errors``), never an error — a dead service costs
        recomputation, not the run.  Mutually exclusive with
        ``cache_dir``; requires ``feature_cache=True``.
    cache_timeout:
        Per-request network timeout (seconds) of the cache service
        client.  Requires ``cache_url``.
    cache_batch_size:
        Vectors coalesced per ``/vectors/batch`` round trip by the
        cache service client, so a warm remote run costs O(batches)
        HTTP requests instead of O(terms).  ``1`` disables batching
        (the per-vector protocol every server speaks).  Only meaningful
        with ``cache_url``.
    """

    language: str = "en"
    extraction_measure: str = "lidf_value"
    n_candidates: int = 20
    min_term_length: int = 2
    min_contexts: int = 4
    polysemy_classifier: str = "forest"
    sense_algorithm: str = "rb"
    sense_index: str = "fk"
    sense_representation: str = "bow"
    context_window: int = 10
    max_contexts_per_term: int = 80
    top_k_positions: int = 10
    expand_hierarchy: bool = True
    seed: int = 0
    skip_known_terms: bool = True
    batch_size: int = 8
    n_workers: int = 1
    worker_backend: str = "thread"
    community_backend: str = "louvain"
    index_shards: int = 1
    index_dir: str | None = None
    feature_cache: bool = True
    cache_dir: str | None = None
    cache_max_bytes: int | None = None
    cache_url: str | None = None
    cache_timeout: float = 5.0
    cache_batch_size: int = 256

    def __post_init__(self) -> None:
        if self.n_candidates < 1:
            raise ValidationError(
                f"n_candidates must be >= 1, got {self.n_candidates}"
            )
        if self.min_contexts < 1:
            raise ValidationError(
                f"min_contexts must be >= 1, got {self.min_contexts}"
            )
        if self.max_contexts_per_term < self.min_contexts:
            raise ValidationError(
                f"max_contexts_per_term ({self.max_contexts_per_term}) must "
                f"be >= min_contexts ({self.min_contexts})"
            )
        if self.top_k_positions < 1:
            raise ValidationError(
                f"top_k_positions must be >= 1, got {self.top_k_positions}"
            )
        if self.batch_size < 1:
            raise ValidationError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.n_workers < 1:
            raise ValidationError(
                f"n_workers must be >= 1, got {self.n_workers}"
            )
        if self.index_shards < 1:
            raise ValidationError(
                f"index_shards must be >= 1, got {self.index_shards}"
            )
        if self.index_dir is not None and not self.index_dir:
            raise ValidationError("index_dir must be a non-empty path")
        if self.cache_dir is not None and not self.feature_cache:
            raise ValidationError(
                "cache_dir requires feature_cache=True"
            )
        if self.cache_max_bytes is not None:
            if self.cache_dir is None:
                raise ValidationError(
                    "cache_max_bytes requires cache_dir to be set"
                )
            if self.cache_max_bytes < 1:
                raise ValidationError(
                    f"cache_max_bytes must be >= 1, got {self.cache_max_bytes}"
                )
        if self.cache_url is not None:
            if not self.feature_cache:
                raise ValidationError("cache_url requires feature_cache=True")
            if self.cache_dir is not None:
                raise ValidationError(
                    "cache_url and cache_dir are mutually exclusive "
                    "(the service owns the disk store)"
                )
        if self.cache_timeout <= 0:
            raise ValidationError(
                f"cache_timeout must be > 0, got {self.cache_timeout}"
            )
        if self.cache_batch_size < 1:
            raise ValidationError(
                f"cache_batch_size must be >= 1, got {self.cache_batch_size}"
            )
        if self.worker_backend not in ("thread", "process"):
            raise ValidationError(
                f"worker_backend must be thread|process, "
                f"got {self.worker_backend!r}"
            )
        from repro.clustering.community import COMMUNITY_BACKENDS

        if self.community_backend not in COMMUNITY_BACKENDS:
            raise ValidationError(
                f"community_backend must be one of "
                f"{sorted(COMMUNITY_BACKENDS)}, got {self.community_backend!r}"
            )
