"""Result objects of the enrichment workflow."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.linkage.linker import Proposition
from repro.senses.induction import SenseInductionResult
from repro.utils.tables import format_table


@dataclass
class TermReport:
    """Everything the workflow decided about one candidate term.

    Attributes
    ----------
    term:
        The candidate term (Step I output).
    extraction_score / extraction_rank:
        Step I evidence.
    n_contexts:
        Corpus occurrences found.
    polysemic:
        Step II verdict (None when the step was skipped).
    senses:
        Step III result (None when skipped).
    propositions:
        Step IV ranked ontology positions.
    skipped_reason:
        Why the term never reached the end (too few contexts, already in
        the ontology, linkage failure), or None for complete rows.
    """

    term: str
    extraction_score: float
    extraction_rank: int
    n_contexts: int = 0
    polysemic: bool | None = None
    senses: SenseInductionResult | None = None
    propositions: list[Proposition] = field(default_factory=list)
    skipped_reason: str | None = None

    @property
    def completed(self) -> bool:
        """True when the term went through all four steps."""
        return self.skipped_reason is None

    @property
    def n_senses(self) -> int:
        """Number of induced senses (0 when Step III did not run)."""
        return self.senses.k if self.senses is not None else 0

    def to_dict(self) -> dict:
        """JSON-safe snapshot of the row (the service's wire shape).

        Propositions and senses are flattened to plain lists/dicts;
        per-sense detail keeps the defining words and support counts
        (the sweep internals — index values, label arrays — stay
        server-side).
        """
        senses = None
        if self.senses is not None:
            senses = {
                "k": self.senses.k,
                "senses": [
                    {
                        "sense_id": sense.sense_id,
                        "top_features": list(sense.top_features),
                        "support": sense.support,
                    }
                    for sense in self.senses.senses
                ],
            }
        return {
            "term": self.term,
            "extraction_score": self.extraction_score,
            "extraction_rank": self.extraction_rank,
            "n_contexts": self.n_contexts,
            "polysemic": self.polysemic,
            "n_senses": self.n_senses,
            "senses": senses,
            "propositions": [
                {
                    "rank": p.rank,
                    "term": p.term,
                    "concept_ids": list(p.concept_ids),
                    "cosine": p.cosine,
                }
                for p in self.propositions
            ],
            "skipped_reason": self.skipped_reason,
        }


@dataclass
class EnrichmentReport:
    """The workflow's full output: one :class:`TermReport` per candidate.

    Attributes
    ----------
    terms:
        One report per examined candidate, in extraction-rank order.
    timings:
        Wall-clock seconds per pipeline stage (``index``, ``train``,
        ``extract``, ``detect``, ``induce``, ``link``), filled in by
        :meth:`repro.workflow.pipeline.OntologyEnricher.enrich`.
    cache:
        Feature-cache effectiveness counters (see
        :class:`repro.polysemy.cache.FeatureCache`): ``hits``,
        ``misses``, ``disk_hits`` (lookups served by reading the
        persistent store, including process-pool workers' direct
        reads), and ``evictions`` are this ``enrich`` call's delta;
        ``entries`` and ``store_bytes`` are the absolute state of the
        backing store after the call.  Empty when the cache is
        disabled.
    detector_trained:
        Whether Step II classified with a trained polysemy detector.
        ``False`` means training fell back on degenerate data and every
        candidate was treated as monosemous (the reason lands in
        ``warnings``).
    warnings:
        Non-fatal degradations the workflow survived (e.g. the Step II
        training fallback); empty for a fully clean run.
    """

    terms: list[TermReport] = field(default_factory=list)
    timings: dict[str, float] = field(default_factory=dict)
    cache: dict[str, int] = field(default_factory=dict)
    detector_trained: bool = False
    warnings: list[str] = field(default_factory=list)

    @property
    def n_candidates(self) -> int:
        """Number of candidates examined."""
        return len(self.terms)

    def completed_terms(self) -> list[TermReport]:
        """Candidates that produced propositions."""
        return [t for t in self.terms if t.completed]

    def polysemic_terms(self) -> list[TermReport]:
        """Candidates Step II flagged as polysemic."""
        return [t for t in self.terms if t.polysemic]

    def to_dict(self) -> dict:
        """JSON-safe snapshot of the whole report.

        This is what the enrichment service returns from
        ``GET /jobs/<id>`` — stable, structural, diffable: two runs
        over the same inputs serialise byte-identically (timings and
        cache counters are runtime measurements, so they live in
        separate keys callers can drop when comparing).
        """
        return {
            "n_candidates": self.n_candidates,
            "terms": [term.to_dict() for term in self.terms],
            "timings": dict(self.timings),
            "cache": dict(self.cache),
            "detector_trained": self.detector_trained,
            "warnings": list(self.warnings),
        }

    def to_table(self, *, max_rows: int | None = None) -> str:
        """Human-readable summary table."""
        rows = []
        for report in self.terms[:max_rows]:
            best = report.propositions[0].term if report.propositions else "-"
            rows.append(
                [
                    report.term,
                    f"{report.extraction_score:.3f}",
                    report.n_contexts,
                    {True: "yes", False: "no", None: "-"}[report.polysemic],
                    report.n_senses or "-",
                    best,
                    report.skipped_reason or "ok",
                ]
            )
        return format_table(
            ["candidate", "score", "ctx", "polysemic", "k", "best position", "status"],
            rows,
            title="Enrichment report",
        )
