"""Argument-validation helpers used across the library.

These raise :class:`repro.errors.ValidationError` (a ``ValueError``
subclass) with uniform, greppable messages.
"""

from __future__ import annotations

from collections.abc import Collection
from numbers import Integral, Real

from repro.errors import ValidationError


def check_positive(value: float, name: str) -> float:
    """Require ``value`` to be a real number strictly greater than zero."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise ValidationError(f"{name} must be a number, got {type(value).__name__}")
    if not value > 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    return float(value)


def check_positive_int(value: int, name: str) -> int:
    """Require ``value`` to be an integer strictly greater than zero."""
    if not isinstance(value, Integral) or isinstance(value, bool):
        raise ValidationError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    return int(value)


def check_fraction(value: float, name: str, *, inclusive: bool = True) -> float:
    """Require ``value`` to lie in ``[0, 1]`` (or ``(0, 1)`` if not inclusive)."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise ValidationError(f"{name} must be a number, got {type(value).__name__}")
    value = float(value)
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ValidationError(f"{name} must be in [0, 1], got {value!r}")
    else:
        if not 0.0 < value < 1.0:
            raise ValidationError(f"{name} must be in (0, 1), got {value!r}")
    return value


def check_in_options(value: str, name: str, options: Collection[str]) -> str:
    """Require ``value`` to be one of ``options``."""
    if value not in options:
        allowed = ", ".join(sorted(options))
        raise ValidationError(f"{name} must be one of {{{allowed}}}, got {value!r}")
    return value
