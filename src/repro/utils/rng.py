"""Random-number-generator plumbing.

Every stochastic component in the library accepts a ``seed`` argument that
may be ``None``, an ``int``, or an already-constructed
:class:`numpy.random.Generator`.  :func:`ensure_rng` normalises all three to
a ``Generator`` so downstream code never has to branch, and
:func:`spawn_rng` derives independent child generators for sub-components so
that adding a consumer of randomness in one place does not perturb the
stream seen elsewhere (which would silently change benchmark tables).
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for fresh OS entropy, an ``int`` for a reproducible stream,
        or an existing ``Generator`` which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"seed must be None, an int, or a numpy Generator, got {type(seed).__name__}"
    )


def spawn_rng(rng: np.random.Generator, n: int = 1) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``rng``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
