"""Zipf / power-law sampling helpers used by the synthetic-data generators.

Natural-language token frequencies are famously Zipfian; the corpus and
terminology generators use these helpers so the synthetic PubMed corpus has
a realistic rank-frequency profile (a handful of very common words, a long
tail of rare ones) — several extraction measures (IDF, Okapi) only behave
meaningfully on such a profile.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive, check_positive_int


def zipf_weights(n: int, exponent: float = 1.0) -> np.ndarray:
    """Return normalised Zipf weights ``w_r ∝ 1 / r**exponent`` for ranks 1..n."""
    n = check_positive_int(n, "n")
    exponent = check_positive(exponent, "exponent")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-exponent
    weights /= weights.sum()
    return weights


def zipf_sample(
    n_items: int,
    size: int,
    *,
    exponent: float = 1.0,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Sample ``size`` item indices in ``[0, n_items)`` with Zipf weights."""
    rng = ensure_rng(seed)
    weights = zipf_weights(n_items, exponent)
    return rng.choice(n_items, size=size, p=weights)
