"""Fixed-width text-table rendering.

Benchmarks print the reproduced paper tables with this helper so the output
lines up with the layout of the original paper tables and diffs cleanly
between runs.
"""

from __future__ import annotations

from collections.abc import Sequence


def _cell(value: object, width: int, align: str) -> str:
    text = f"{value}"
    if align == "right":
        return text.rjust(width)
    if align == "center":
        return text.center(width)
    return text.ljust(width)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
    aligns: Sequence[str] | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width text table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Row values; each row must have ``len(headers)`` entries.
    title:
        Optional single-line title rendered above the table.
    aligns:
        Per-column alignment, each one of ``"left" | "right" | "center"``.
        Defaults to left for the first column and right for the rest, which
        suits "label, number, number, ..." tables.
    """
    n_cols = len(headers)
    for row in rows:
        if len(row) != n_cols:
            raise ValueError(
                f"row has {len(row)} cells but table has {n_cols} columns: {row!r}"
            )
    if aligns is None:
        aligns = ["left"] + ["right"] * (n_cols - 1)
    if len(aligns) != n_cols:
        raise ValueError(f"aligns has {len(aligns)} entries for {n_cols} columns")

    widths = [len(str(h)) for h in headers]
    for row in rows:
        for j, value in enumerate(row):
            widths[j] = max(widths[j], len(f"{value}"))

    sep = "-+-".join("-" * w for w in widths)
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(_cell(h, widths[j], "center") for j, h in enumerate(headers)))
    lines.append(sep)
    for row in rows:
        lines.append(
            " | ".join(_cell(v, widths[j], aligns[j]) for j, v in enumerate(row))
        )
    return "\n".join(lines)
