"""Shared low-level helpers: RNG plumbing, validation, table rendering."""

from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.tables import format_table
from repro.utils.validation import (
    check_fraction,
    check_in_options,
    check_positive,
    check_positive_int,
)
from repro.utils.zipf import zipf_weights, zipf_sample

__all__ = [
    "ensure_rng",
    "spawn_rng",
    "format_table",
    "check_fraction",
    "check_in_options",
    "check_positive",
    "check_positive_int",
    "zipf_weights",
    "zipf_sample",
]
