"""Term co-occurrence graphs.

Three stages of the paper lean on a graph induced from the corpus:

* Step II extracts 12 of its 23 polysemy features "from a graph itself
  induced from the text corpus";
* Step III's graph representation clusters a term's contexts through
  graph-derived vectors;
* Step IV builds "a term co-occurrence graph ... selecting only the MeSH
  neighborhood of a candidate term".

:class:`CooccurrenceGraphBuilder` turns tokenised documents into a weighted
undirected :class:`networkx.Graph` whose nodes are tokens (or multi-word
terms after merging) and whose edge weights count within-window
co-occurrences.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import networkx as nx

from repro.text.stopwords import stopwords_for
from repro.utils.validation import check_positive_int


def merge_term_tokens(
    tokens: Sequence[str],
    terms: Iterable[tuple[str, ...]],
) -> list[str]:
    """Greedily merge known multi-word ``terms`` into single tokens.

    ``["corneal", "injuries", "heal"]`` with term ``("corneal",
    "injuries")`` becomes ``["corneal injuries", "heal"]``.  Longest match
    wins at each position, mirroring maximal-munch term spotting.
    """
    by_first: dict[str, list[tuple[str, ...]]] = {}
    for term in terms:
        if not term:
            continue
        by_first.setdefault(term[0], []).append(term)
    for candidates in by_first.values():
        candidates.sort(key=len, reverse=True)

    lower = [t.lower() for t in tokens]
    merged: list[str] = []
    i = 0
    n = len(lower)
    while i < n:
        token = lower[i]
        match: tuple[str, ...] | None = None
        for candidate in by_first.get(token, ()):
            span = len(candidate)
            if i + span <= n and tuple(lower[i : i + span]) == candidate:
                match = candidate
                break
        if match is None:
            merged.append(token)
            i += 1
        else:
            merged.append(" ".join(match))
            i += len(match)
    return merged


class CooccurrenceGraphBuilder:
    """Build a weighted token co-occurrence graph from tokenised documents.

    Parameters
    ----------
    window:
        Sliding-window size; tokens at distance < ``window`` co-occur.
    stop_language:
        Drop this language's stopwords before windowing (``None`` keeps all).
    min_weight:
        Prune edges with total weight below this after building.
    terms:
        Optional multi-word terms merged into single nodes first.
    """

    def __init__(
        self,
        *,
        window: int = 5,
        stop_language: str | None = "en",
        min_weight: float = 1.0,
        terms: Iterable[tuple[str, ...]] | None = None,
    ) -> None:
        self.window = check_positive_int(window, "window")
        self.stop_language = stop_language
        self.min_weight = min_weight
        self.terms = list(terms) if terms is not None else []

    def _prepare(self, tokens: Sequence[str]) -> list[str]:
        merged = (
            merge_term_tokens(tokens, self.terms)
            if self.terms
            else [t.lower() for t in tokens]
        )
        if self.stop_language is None:
            return merged
        stop = stopwords_for(self.stop_language)
        return [t for t in merged if t not in stop]

    def build(self, documents: Iterable[Sequence[str]]) -> nx.Graph:
        """Accumulate co-occurrence counts over ``documents`` into a graph."""
        graph = nx.Graph()
        for tokens in documents:
            prepared = self._prepare(tokens)
            n = len(prepared)
            for i, left in enumerate(prepared):
                # add_edge may have created the node without attributes, so
                # the count attribute cannot be assumed to exist yet.
                if not graph.has_node(left):
                    graph.add_node(left)
                graph.nodes[left]["count"] = graph.nodes[left].get("count", 0) + 1
                for j in range(i + 1, min(i + self.window, n)):
                    right = prepared[j]
                    if left == right:
                        continue
                    if graph.has_edge(left, right):
                        graph[left][right]["weight"] += 1.0
                    else:
                        graph.add_edge(left, right, weight=1.0)
        if self.min_weight > 1.0:
            to_drop = [
                (u, v)
                for u, v, w in graph.edges(data="weight")
                if w < self.min_weight
            ]
            graph.remove_edges_from(to_drop)
        return graph


def ego_graph(graph: nx.Graph, node: str, radius: int = 1) -> nx.Graph:
    """The subgraph within ``radius`` hops of ``node`` (copy).

    Convenience wrapper that returns an empty graph when ``node`` is
    absent instead of raising, because candidate terms may have no
    observed context at small corpus scales.
    """
    if node not in graph:
        return nx.Graph()
    return nx.ego_graph(graph, node, radius=radius).copy()
