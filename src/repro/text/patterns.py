"""Part-of-speech patterns for biomedical term candidates.

BioTex (the paper's Step I tool) filters multi-word candidates through a
ranked list of POS patterns learned from UMLS term annotations — patterns
like ``NOUN NOUN`` or ``ADJ NOUN`` account for the vast majority of
biomedical terms.  We ship the high-coverage head of that list per
language with weights that decay with rank; the LIDF-value measure
(:mod:`repro.extraction.lidf`) consumes the weight as its probability
component.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.utils.validation import check_in_options


@dataclass(frozen=True)
class TermPattern:
    """A POS-sequence pattern with its rank-derived weight."""

    tags: tuple[str, ...]
    weight: float

    def __len__(self) -> int:
        return len(self.tags)


# Pattern inventories, most frequent first.  English biomedical terminology
# is noun-phrase final ("corneal injuries": ADJ NOUN); French and Spanish
# are head-initial with prepositional attachments ("maladie de la cornée":
# NOUN ADP DET NOUN).
_PATTERNS_EN: tuple[tuple[str, ...], ...] = (
    ("NOUN",),
    ("NOUN", "NOUN"),
    ("ADJ", "NOUN"),
    ("NOUN", "NOUN", "NOUN"),
    ("ADJ", "NOUN", "NOUN"),
    ("ADJ", "ADJ", "NOUN"),
    ("NOUN", "ADP", "NOUN"),
    ("NOUN", "ADJ"),
    ("ADJ", "NOUN", "NOUN", "NOUN"),
    ("NOUN", "NOUN", "NOUN", "NOUN"),
    ("NOUN", "ADP", "ADJ", "NOUN"),
    ("ADJ", "ADJ", "NOUN", "NOUN"),
)

_PATTERNS_FR: tuple[tuple[str, ...], ...] = (
    ("NOUN",),
    ("NOUN", "ADJ"),
    ("NOUN", "ADP", "NOUN"),
    ("NOUN", "ADJ", "ADJ"),
    ("NOUN", "ADP", "DET", "NOUN"),
    ("ADJ", "NOUN"),
    ("NOUN", "NOUN"),
    ("NOUN", "ADP", "NOUN", "ADJ"),
    ("NOUN", "ADJ", "ADP", "NOUN"),
)

_PATTERNS_ES: tuple[tuple[str, ...], ...] = (
    ("NOUN",),
    ("NOUN", "ADJ"),
    ("NOUN", "ADP", "NOUN"),
    ("NOUN", "ADJ", "ADJ"),
    ("NOUN", "ADP", "DET", "NOUN"),
    ("ADJ", "NOUN"),
    ("NOUN", "NOUN"),
    ("NOUN", "ADP", "NOUN", "ADJ"),
)

_BY_LANGUAGE = {"en": _PATTERNS_EN, "fr": _PATTERNS_FR, "es": _PATTERNS_ES}


def default_patterns(language: str = "en") -> list[TermPattern]:
    """Return the ranked pattern list for ``language`` with decaying weights.

    The weight of the pattern at rank r (1-based) is ``1 / r`` normalised so
    the best pattern has weight 1.0 — mirroring how BioTex turns the ranked
    UMLS pattern list into the probability used inside LIDF-value.
    """
    check_in_options(language, "language", _BY_LANGUAGE)
    raw = _BY_LANGUAGE[language]
    return [
        TermPattern(tags=tags, weight=1.0 / (rank + 1))
        for rank, tags in enumerate(raw)
    ]


class TermPatternMatcher:
    """Match tagged-token windows against a pattern inventory.

    Parameters
    ----------
    patterns:
        Patterns to match; defaults to :func:`default_patterns` for the
        language.
    language:
        ``"en"``, ``"fr"`` or ``"es"``.
    min_length / max_length:
        Bounds (in tokens) on accepted candidates.
    """

    def __init__(
        self,
        patterns: Sequence[TermPattern] | None = None,
        *,
        language: str = "en",
        min_length: int = 1,
        max_length: int = 4,
    ) -> None:
        if patterns is None:
            patterns = default_patterns(language)
        if min_length < 1:
            raise ValueError(f"min_length must be >= 1, got {min_length}")
        if max_length < min_length:
            raise ValueError(
                f"max_length ({max_length}) must be >= min_length ({min_length})"
            )
        self._by_tags: dict[tuple[str, ...], float] = {}
        for pattern in patterns:
            if not (min_length <= len(pattern) <= max_length):
                continue
            existing = self._by_tags.get(pattern.tags)
            if existing is None or pattern.weight > existing:
                self._by_tags[pattern.tags] = pattern.weight
        self.min_length = min_length
        self.max_length = max_length

    def weight(self, tags: Sequence[str]) -> float | None:
        """Weight of the pattern exactly matching ``tags``, or None."""
        return self._by_tags.get(tuple(tags))

    def matches(self, tags: Sequence[str]) -> bool:
        """True if ``tags`` exactly matches a known pattern."""
        return tuple(tags) in self._by_tags

    @property
    def patterns(self) -> list[TermPattern]:
        """The pattern inventory currently in use."""
        return [TermPattern(tags, w) for tags, w in sorted(self._by_tags.items())]
