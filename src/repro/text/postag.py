"""Part-of-speech tagging.

The paper's term extraction (BioTex) filters candidate phrases through
part-of-speech patterns computed by TreeTagger.  TreeTagger is a closed
binary, so we provide :class:`LexiconTagger`: a lexicon lookup backed by
suffix rules, the classical architecture for resource-light taggers.

The synthetic corpus generator (:mod:`repro.corpus.lexicon`) knows the true
POS of every word it mints and exports that lexicon, so on generated
corpora the tagger is essentially gold; on out-of-lexicon tokens the
suffix rules provide a reasonable guess.

Tagset (coarse, universal-style): ``NOUN, ADJ, VERB, ADV, ADP, DET, PRON,
CONJ, NUM, PUNCT, X``.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Mapping

from repro.text.stopwords import stopwords_for

COARSE_TAGS = (
    "NOUN",
    "ADJ",
    "VERB",
    "ADV",
    "ADP",
    "DET",
    "PRON",
    "CONJ",
    "NUM",
    "PUNCT",
    "X",
)


@dataclass(frozen=True)
class TaggedToken:
    """A token together with its part-of-speech tag."""

    text: str
    tag: str

    def is_content(self) -> bool:
        """True for open-class tokens that can be part of a term."""
        return self.tag in ("NOUN", "ADJ", "VERB", "ADV")


# Suffix → tag rules, tried longest-first.  These cover the derivational
# morphology the synthetic lexicon uses plus common English endings.
_SUFFIX_RULES: tuple[tuple[str, str], ...] = (
    ("ization", "NOUN"),
    ("isation", "NOUN"),
    ("ectomy", "NOUN"),
    ("ostomy", "NOUN"),
    ("otomy", "NOUN"),
    ("plasty", "NOUN"),
    ("graphy", "NOUN"),
    ("scopy", "NOUN"),
    ("pathy", "NOUN"),
    ("itis", "NOUN"),
    ("osis", "NOUN"),
    ("emia", "NOUN"),
    ("oma", "NOUN"),
    ("ment", "NOUN"),
    ("ness", "NOUN"),
    ("tion", "NOUN"),
    ("sion", "NOUN"),
    ("ity", "NOUN"),
    ("ism", "NOUN"),
    ("ase", "NOUN"),
    ("ide", "NOUN"),
    ("ine", "NOUN"),
    ("ogen", "NOUN"),
    ("cyte", "NOUN"),
    ("blast", "NOUN"),
    ("ical", "ADJ"),
    ("ous", "ADJ"),
    ("ary", "ADJ"),
    ("ive", "ADJ"),
    ("able", "ADJ"),
    ("ible", "ADJ"),
    ("al", "ADJ"),
    ("ic", "ADJ"),
    ("ar", "ADJ"),
    ("oid", "ADJ"),
    ("ly", "ADV"),
    ("ize", "VERB"),
    ("ise", "VERB"),
    ("ate", "VERB"),
    ("ify", "VERB"),
    ("ing", "VERB"),
    ("ed", "VERB"),
)

# A few closed-class English words so raw (non-generated) text tags sanely.
_CLOSED_CLASS = {
    "the": "DET", "a": "DET", "an": "DET", "this": "DET", "that": "DET",
    "these": "DET", "those": "DET", "each": "DET", "every": "DET",
    "of": "ADP", "in": "ADP", "on": "ADP", "at": "ADP", "by": "ADP",
    "for": "ADP", "with": "ADP", "from": "ADP", "to": "ADP", "into": "ADP",
    "under": "ADP", "over": "ADP", "between": "ADP", "during": "ADP",
    "after": "ADP", "before": "ADP", "without": "ADP", "within": "ADP",
    "and": "CONJ", "or": "CONJ", "but": "CONJ", "nor": "CONJ",
    "because": "CONJ", "although": "CONJ", "while": "CONJ", "if": "CONJ",
    "it": "PRON", "they": "PRON", "we": "PRON", "he": "PRON", "she": "PRON",
    "is": "VERB", "are": "VERB", "was": "VERB", "were": "VERB",
    "be": "VERB", "been": "VERB", "has": "VERB", "have": "VERB",
    "had": "VERB", "do": "VERB", "does": "VERB", "did": "VERB",
    "can": "VERB", "may": "VERB", "must": "VERB", "should": "VERB",
    "not": "ADV", "also": "ADV", "very": "ADV", "often": "ADV",
}


class LexiconTagger:
    """Lexicon + suffix-rule part-of-speech tagger.

    Parameters
    ----------
    lexicon:
        Mapping of lower-cased word → coarse tag.  Typically exported by the
        corpus generator (gold tags); may be empty.
    language:
        Used to tag that language's stopwords as function words when the
        lexicon does not know them.
    default_tag:
        Tag for tokens no rule covers; ``"NOUN"`` is the best open-class
        prior in technical text.
    """

    def __init__(
        self,
        lexicon: Mapping[str, str] | None = None,
        *,
        language: str = "en",
        default_tag: str = "NOUN",
    ) -> None:
        if default_tag not in COARSE_TAGS:
            raise ValueError(f"default_tag must be a coarse tag, got {default_tag!r}")
        self._lexicon: dict[str, str] = {}
        if lexicon:
            for word, tag in lexicon.items():
                if tag not in COARSE_TAGS:
                    raise ValueError(f"unknown tag {tag!r} for word {word!r}")
                self._lexicon[word.lower()] = tag
        self._language = language
        self._stopwords = stopwords_for(language)
        self._default_tag = default_tag

    @property
    def lexicon_size(self) -> int:
        """Number of words with a known (gold) tag."""
        return len(self._lexicon)

    def update_lexicon(self, entries: Mapping[str, str]) -> None:
        """Merge additional gold ``word → tag`` entries into the lexicon."""
        for word, tag in entries.items():
            if tag not in COARSE_TAGS:
                raise ValueError(f"unknown tag {tag!r} for word {word!r}")
            self._lexicon[word.lower()] = tag

    def tag_word(self, token: str) -> str:
        """Return the coarse tag of a single ``token``."""
        lower = token.lower()
        if lower in self._lexicon:
            return self._lexicon[lower]
        if lower in _CLOSED_CLASS:
            return _CLOSED_CLASS[lower]
        if lower in self._stopwords:
            # Unknown stopword: treat as determiner-like function word so it
            # breaks term patterns, which is what matters downstream.
            return "DET"
        if lower.isdigit():
            return "NUM"
        if not any(ch.isalpha() for ch in lower):
            return "PUNCT"
        for suffix, tag in _SUFFIX_RULES:
            if lower.endswith(suffix) and len(lower) > len(suffix) + 1:
                return tag
        return self._default_tag

    def tag(self, tokens: Iterable[str]) -> list[TaggedToken]:
        """Tag a token sequence."""
        return [TaggedToken(token, self.tag_word(token)) for token in tokens]
