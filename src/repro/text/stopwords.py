"""Stopword lists for English, French, and Spanish.

The paper's workflow runs in all three languages; term extraction and the
context vectors of Steps II–IV strip stopwords first.  The lists below are
compact, hand-curated function-word inventories (determiners, prepositions,
pronouns, auxiliaries, common adverbs) — enough for specialised biomedical
text where content words dominate.
"""

from __future__ import annotations

from repro.utils.validation import check_in_options

_ENGLISH = frozenset(
    """
    a an the this that these those some any each every no all both few many
    such same other another and or but nor so yet if then else when while
    because although though since unless until whether as of in on at by
    for with about against between into through during before after above
    below to from up down out off over under again further once here there
    where why how what which who whom whose i you he she it we they me him
    her us them my your his its our their mine yours hers ours theirs
    myself yourself himself herself itself ourselves themselves be am is
    are was were been being have has had having do does did doing will
    would shall should may might must can could not only own very too also
    just than more most less least much now ever never always often
    sometimes rather quite almost nearly well even still however therefore
    thus hence moreover furthermore meanwhile instead otherwise per via
    among amongst within without upon onto toward towards across along
    around behind beside besides despite except near
    """.split()
)

_FRENCH = frozenset(
    """
    le la les un une des du de d l au aux ce cet cette ces mon ton son ma
    ta sa mes tes ses notre votre leur nos vos leurs que qui quoi dont où
    et ou mais donc or ni car si quand comme lorsque puisque quoique je tu
    il elle on nous vous ils elles me te se moi toi soi lui y en ne pas
    plus moins très peu beaucoup trop assez aussi encore déjà jamais
    toujours souvent parfois être suis es est sommes êtes sont était
    étaient été étant avoir ai as a avons avez ont avait avaient eu ayant
    faire fait faisait pour par dans sur sous vers chez entre contre avant
    après depuis pendant sans avec selon malgré parmi durant dès cela ceci
    ça celui celle ceux celles autre autres même mêmes tout toute tous
    toutes quel quelle quels quelles chaque plusieurs certains certaines
    aucun aucune tel telle tels telles
    """.split()
)

_SPANISH = frozenset(
    """
    el la los las un una unos unas lo al del de este esta estos estas ese
    esa esos esas aquel aquella aquellos aquellas mi tu su mis tus sus
    nuestro nuestra nuestros nuestras vuestro vuestra que quien quienes
    cuyo cuya donde y e o u pero sino aunque porque pues si cuando como
    mientras yo tú él ella ello nosotros vosotros ellos ellas me te se nos
    os le les no ni sí más menos muy mucho mucha muchos muchas
    poco poca pocos pocas demasiado también tampoco ya jamás nunca siempre
    a ante bajo cabe con contra desde durante en entre hacia hasta para
    por según sin sobre tras ser soy eres es somos sois son era eran fue
    fueron sido siendo estar estoy estás está estamos estáis están estaba
    estaban estado haber he has ha hemos habéis han había habían habido
    hacer hace hacía hecho otro otra otros otras mismo misma mismos mismas
    todo toda todos todas cada cual cuales algún alguna algunos algunas
    ningún ninguna tal tales
    """.split()
)

_BY_LANGUAGE = {"en": _ENGLISH, "fr": _FRENCH, "es": _SPANISH}

SUPPORTED_LANGUAGES = tuple(sorted(_BY_LANGUAGE))


def stopwords_for(language: str = "en") -> frozenset[str]:
    """Return the stopword set for ``language`` (``"en"``, ``"fr"``, ``"es"``)."""
    check_in_options(language, "language", _BY_LANGUAGE)
    return _BY_LANGUAGE[language]


def is_stopword(token: str, language: str = "en") -> bool:
    """True if ``token`` (case-insensitive) is a stopword of ``language``."""
    return token.lower() in stopwords_for(language)
