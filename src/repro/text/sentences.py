"""Sentence splitting.

Rule-based splitter good enough for generated and real biomedical
abstracts: it splits on sentence-final punctuation followed by whitespace
and an upper-case/digit start, while protecting common abbreviations
("e.g.", "Dr.", "Fig.") and decimal numbers ("p < 0.05").
"""

from __future__ import annotations

import re

# Abbreviations that should not terminate a sentence even when followed by
# whitespace and a capital letter.
_ABBREVIATIONS = frozenset(
    {
        "e.g",
        "i.e",
        "etc",
        "vs",
        "cf",
        "al",  # "et al."
        "dr",
        "mr",
        "mrs",
        "ms",
        "prof",
        "fig",
        "figs",
        "eq",
        "no",
        "resp",
        "approx",
        "ca",
        "inc",
        "st",
    }
)

_BOUNDARY_RE = re.compile(r"([.!?])\s+(?=[A-Z0-9À-Ö])")


def split_sentences(text: str) -> list[str]:
    """Split ``text`` into sentences.

    >>> split_sentences("Wound healed. Cornea was clear.")
    ['Wound healed.', 'Cornea was clear.']
    """
    if not isinstance(text, str):
        raise TypeError(f"text must be str, got {type(text).__name__}")
    text = text.strip()
    if not text:
        return []

    sentences: list[str] = []
    start = 0
    for match in _BOUNDARY_RE.finditer(text):
        end = match.end(1)
        candidate = text[start:end]
        last_word = candidate.rsplit(None, 1)[-1] if candidate.split() else ""
        core = last_word.strip(".!?()[]{}\"',;:").lower()
        # Do not break after protected abbreviations or single initials.
        if core in _ABBREVIATIONS or (len(core) == 1 and core.isalpha()):
            continue
        sentences.append(candidate.strip())
        start = match.end()
    tail = text[start:].strip()
    if tail:
        sentences.append(tail)
    return sentences
