"""Token ↔ integer-id mapping shared by the vectorisers and graph builders."""

from __future__ import annotations

from collections.abc import Iterable, Iterator


class Vocabulary:
    """A bidirectional, insertion-ordered token ↔ id mapping.

    >>> vocab = Vocabulary()
    >>> vocab.add("cornea")
    0
    >>> vocab.add("injury")
    1
    >>> vocab["cornea"]
    0
    >>> vocab.token(1)
    'injury'
    """

    def __init__(self, tokens: Iterable[str] = ()) -> None:
        self._index: dict[str, int] = {}
        self._tokens: list[str] = []
        for token in tokens:
            self.add(token)

    def add(self, token: str) -> int:
        """Insert ``token`` if new; return its id either way."""
        existing = self._index.get(token)
        if existing is not None:
            return existing
        idx = len(self._tokens)
        self._index[token] = idx
        self._tokens.append(token)
        return idx

    def get(self, token: str, default: int | None = None) -> int | None:
        """Id of ``token`` or ``default`` when unknown."""
        return self._index.get(token, default)

    def token(self, idx: int) -> str:
        """Token with id ``idx``."""
        return self._tokens[idx]

    def __getitem__(self, token: str) -> int:
        return self._index[token]

    def __contains__(self, token: str) -> bool:
        return token in self._index

    def __len__(self) -> int:
        return len(self._tokens)

    def __iter__(self) -> Iterator[str]:
        return iter(self._tokens)

    def tokens(self) -> list[str]:
        """All tokens in id order (a copy)."""
        return list(self._tokens)

    def freeze(self) -> "FrozenVocabulary":
        """Return an immutable view that rejects further additions."""
        return FrozenVocabulary(self)


class FrozenVocabulary(Vocabulary):
    """A :class:`Vocabulary` that raises on :meth:`add` of unseen tokens."""

    def __init__(self, base: Vocabulary) -> None:
        super().__init__()
        self._index = dict(base._index)
        self._tokens = list(base._tokens)

    def add(self, token: str) -> int:
        """Look up ``token``; raise ``KeyError`` instead of inserting."""
        existing = self._index.get(token)
        if existing is None:
            raise KeyError(f"vocabulary is frozen; unknown token {token!r}")
        return existing
