"""N-gram and pattern-filtered phrase extraction.

Step I harvests multi-word candidate terms from text.  Two strategies are
provided: plain n-grams (used by frequency-only baselines) and
POS-pattern-filtered phrases (used by BioTex-style measures, which only
keep sequences whose tag string matches a known biomedical term pattern).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.text.postag import TaggedToken
from repro.text.patterns import TermPatternMatcher
from repro.text.stopwords import stopwords_for


def extract_ngrams(
    tokens: Sequence[str],
    *,
    min_n: int = 1,
    max_n: int = 4,
    language: str | None = "en",
) -> list[tuple[str, ...]]:
    """Return all n-grams of ``tokens`` with ``min_n <= n <= max_n``.

    When ``language`` is given, n-grams that start or end with a stopword
    are dropped (interior stopwords are allowed: "degeneration of retina").
    Tokens are lower-cased.
    """
    if min_n < 1:
        raise ValueError(f"min_n must be >= 1, got {min_n}")
    if max_n < min_n:
        raise ValueError(f"max_n ({max_n}) must be >= min_n ({min_n})")
    stop = stopwords_for(language) if language else frozenset()
    lower = [t.lower() for t in tokens]
    out: list[tuple[str, ...]] = []
    n_tokens = len(lower)
    for n in range(min_n, max_n + 1):
        for i in range(n_tokens - n + 1):
            gram = tuple(lower[i : i + n])
            if stop and (gram[0] in stop or gram[-1] in stop):
                continue
            out.append(gram)
    return out


def extract_pattern_phrases(
    tagged: Sequence[TaggedToken],
    matcher: TermPatternMatcher,
) -> list[tuple[tuple[str, ...], float]]:
    """Return (phrase, pattern weight) for tag windows matching ``matcher``.

    Phrases are lower-cased token tuples.  A window is every contiguous
    span of length ``matcher.min_length .. matcher.max_length``.
    """
    out: list[tuple[tuple[str, ...], float]] = []
    n = len(tagged)
    for length in range(matcher.min_length, matcher.max_length + 1):
        for i in range(n - length + 1):
            window = tagged[i : i + length]
            weight = matcher.weight([t.tag for t in window])
            if weight is None:
                continue
            phrase = tuple(t.text.lower() for t in window)
            out.append((phrase, weight))
    return out


def phrase_frequencies(
    phrases: Iterable[tuple[str, ...]],
) -> dict[tuple[str, ...], int]:
    """Count occurrences of each phrase."""
    counts: dict[tuple[str, ...], int] = {}
    for phrase in phrases:
        counts[phrase] = counts.get(phrase, 0) + 1
    return counts
