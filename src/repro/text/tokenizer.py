"""Word tokenisation.

A small rule-based tokenizer tuned for biomedical abstracts: it keeps
intra-word hyphens and apostrophes ("re-epithelialization", "crohn's"),
splits off surrounding punctuation, and preserves alphanumeric mixtures
("il-2", "p53") that are common in biomedical text and must survive intact
for term extraction to work.
"""

from __future__ import annotations

import re

_TOKEN_RE = re.compile(
    r"""
    [A-Za-zÀ-ÖØ-öø-ÿ0-9]+            # alnum core (latin-1 accents included)
    (?:['’\-][A-Za-zÀ-ÖØ-öø-ÿ0-9]+)* # optional apostrophe/hyphen joins
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> list[str]:
    """Split ``text`` into word tokens, preserving case.

    >>> tokenize("Corneal re-epithelialization (in rats).")
    ['Corneal', 're-epithelialization', 'in', 'rats']
    """
    if not isinstance(text, str):
        raise TypeError(f"text must be str, got {type(text).__name__}")
    return _TOKEN_RE.findall(text)


def tokenize_lower(text: str) -> list[str]:
    """Split ``text`` into lower-cased word tokens."""
    return [token.lower() for token in tokenize(text)]
