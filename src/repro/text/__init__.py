"""Text-processing substrate: tokenisation, tagging, vectorisation, graphs.

This subpackage stands in for the NLP toolchain (TreeTagger, sklearn
vectorisers, BioTex's preprocessing) the paper builds on.  Everything is
pure Python + numpy/scipy/networkx, deterministic, and language-aware for
English, French, and Spanish — the three languages the paper targets.
"""

from repro.text.cooccurrence import CooccurrenceGraphBuilder
from repro.text.ngrams import extract_ngrams, extract_pattern_phrases
from repro.text.patterns import TermPatternMatcher, default_patterns
from repro.text.postag import LexiconTagger, TaggedToken
from repro.text.sentences import split_sentences
from repro.text.stemming import stem, PorterStemmer
from repro.text.stopwords import stopwords_for
from repro.text.tokenizer import tokenize, tokenize_lower
from repro.text.vectorize import BowVectorizer, TfidfVectorizer
from repro.text.vocabulary import Vocabulary

__all__ = [
    "CooccurrenceGraphBuilder",
    "extract_ngrams",
    "extract_pattern_phrases",
    "TermPatternMatcher",
    "default_patterns",
    "LexiconTagger",
    "TaggedToken",
    "split_sentences",
    "stem",
    "PorterStemmer",
    "stopwords_for",
    "tokenize",
    "tokenize_lower",
    "BowVectorizer",
    "TfidfVectorizer",
    "Vocabulary",
]
