"""Bag-of-words and TF-IDF vectorisation over scipy sparse matrices.

Steps II–IV of the workflow represent a term's contexts as vectors and
compare them with cosine similarity; these vectorisers are the single
place that mapping happens, so every stage agrees on weighting and
normalisation conventions.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

import numpy as np
import scipy.sparse as sp

from repro.errors import NotFittedError
from repro.text.stopwords import stopwords_for
from repro.text.vocabulary import Vocabulary


def _normalize_rows(matrix: sp.csr_matrix) -> sp.csr_matrix:
    """L2-normalise each row in place; zero rows are left untouched."""
    norms = np.sqrt(matrix.multiply(matrix).sum(axis=1)).A.ravel()
    norms[norms == 0.0] = 1.0
    inverse = sp.diags(1.0 / norms)
    return (inverse @ matrix).tocsr()


class BowVectorizer:
    """Count-based bag-of-words vectoriser.

    Parameters
    ----------
    lowercase:
        Lower-case tokens before counting.
    stop_language:
        Drop that language's stopwords when given.
    min_df:
        Discard tokens present in fewer than ``min_df`` documents.
    binary:
        Record presence (0/1) instead of counts.
    normalize:
        L2-normalise rows of the output matrix.
    """

    def __init__(
        self,
        *,
        lowercase: bool = True,
        stop_language: str | None = "en",
        min_df: int = 1,
        binary: bool = False,
        normalize: bool = False,
    ) -> None:
        if min_df < 1:
            raise ValueError(f"min_df must be >= 1, got {min_df}")
        self.lowercase = lowercase
        self.stop_language = stop_language
        self.min_df = min_df
        self.binary = binary
        self.normalize = normalize
        self.vocabulary_: Vocabulary | None = None
        self.document_frequency_: np.ndarray | None = None
        self.n_documents_: int | None = None

    # -- shared preprocessing ------------------------------------------------

    def _stop_set(self) -> frozenset[str]:
        """The stop set, resolved once per fit/transform pass."""
        if self.stop_language:
            return stopwords_for(self.stop_language)
        return frozenset()

    def _prepare(
        self, tokens: Sequence[str], stop: frozenset[str]
    ) -> list[str]:
        out = []
        for token in tokens:
            if self.lowercase:
                token = token.lower()
            if token in stop:
                continue
            out.append(token)
        return out

    # -- fitting ---------------------------------------------------------------

    def fit(self, documents: Iterable[Sequence[str]]) -> "BowVectorizer":
        """Learn the vocabulary from tokenised ``documents``."""
        stop = self._stop_set()
        df_counts: dict[str, int] = {}
        n_docs = 0
        for tokens in documents:
            n_docs += 1
            for token in set(self._prepare(tokens, stop)):
                df_counts[token] = df_counts.get(token, 0) + 1
        vocab = Vocabulary()
        dfs: list[int] = []
        for token, df in sorted(df_counts.items()):
            if df >= self.min_df:
                vocab.add(token)
                dfs.append(df)
        self.vocabulary_ = vocab
        self.document_frequency_ = np.asarray(dfs, dtype=np.float64)
        self.n_documents_ = n_docs
        return self

    def _require_fitted(self) -> Vocabulary:
        if self.vocabulary_ is None:
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before transform"
            )
        return self.vocabulary_

    # -- transform ---------------------------------------------------------------

    def transform(self, documents: Iterable[Sequence[str]]) -> sp.csr_matrix:
        """Vectorise tokenised ``documents`` into a (n_docs, n_vocab) matrix."""
        vocab = self._require_fitted()
        stop = self._stop_set()
        indptr = [0]
        indices: list[int] = []
        data: list[float] = []
        for tokens in documents:
            counts: dict[int, float] = {}
            for token in self._prepare(tokens, stop):
                idx = vocab.get(token)
                if idx is None:
                    continue
                counts[idx] = counts.get(idx, 0.0) + 1.0
            for idx in sorted(counts):
                indices.append(idx)
                data.append(1.0 if self.binary else counts[idx])
            indptr.append(len(indices))
        matrix = sp.csr_matrix(
            (np.asarray(data), np.asarray(indices, dtype=np.int32), indptr),
            shape=(len(indptr) - 1, len(vocab)),
        )
        matrix = self._weight(matrix)
        if self.normalize:
            matrix = _normalize_rows(matrix)
        return matrix

    def fit_transform(self, documents: Sequence[Sequence[str]]) -> sp.csr_matrix:
        """Fit on ``documents`` then transform them."""
        return self.fit(documents).transform(documents)

    def _weight(self, matrix: sp.csr_matrix) -> sp.csr_matrix:
        return matrix

    def feature_names(self) -> list[str]:
        """Vocabulary tokens in column order."""
        return self._require_fitted().tokens()


class TfidfVectorizer(BowVectorizer):
    """TF-IDF vectoriser with smoothed IDF: ``log((1+N)/(1+df)) + 1``.

    Rows are L2-normalised by default, the convention cosine-based
    similarity (Steps III and IV) expects.
    """

    def __init__(
        self,
        *,
        lowercase: bool = True,
        stop_language: str | None = "en",
        min_df: int = 1,
        sublinear_tf: bool = False,
        normalize: bool = True,
    ) -> None:
        super().__init__(
            lowercase=lowercase,
            stop_language=stop_language,
            min_df=min_df,
            binary=False,
            normalize=normalize,
        )
        self.sublinear_tf = sublinear_tf

    def idf(self) -> np.ndarray:
        """The fitted IDF vector (one weight per vocabulary token)."""
        self._require_fitted()
        assert self.document_frequency_ is not None
        assert self.n_documents_ is not None
        n = self.n_documents_
        return np.log((1.0 + n) / (1.0 + self.document_frequency_)) + 1.0

    def _weight(self, matrix: sp.csr_matrix) -> sp.csr_matrix:
        matrix = matrix.astype(np.float64)
        if self.sublinear_tf:
            matrix.data = 1.0 + np.log(matrix.data)
        return (matrix @ sp.diags(self.idf())).tocsr()


def idf_weight(n_documents: int, document_frequency: int) -> float:
    """Scalar smoothed IDF used by the extraction measures."""
    if n_documents < 1:
        raise ValueError(f"n_documents must be >= 1, got {n_documents}")
    if document_frequency < 0:
        raise ValueError(
            f"document_frequency must be >= 0, got {document_frequency}"
        )
    return math.log((1.0 + n_documents) / (1.0 + document_frequency)) + 1.0
