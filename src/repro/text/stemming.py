"""Stemmers for English, French, and Spanish.

English uses a full Porter (1980) stemmer implemented from the original
paper's five-step description.  French and Spanish use light suffix
strippers in the spirit of Savoy's light stemmers — plural and a few
derivational endings — which is what term-matching across morphological
variants actually needs here ("injuries" → "injuri" ← "injury").
"""

from __future__ import annotations

from repro.utils.validation import check_in_options

_VOWELS = frozenset("aeiou")


def _is_consonant(word: str, i: int) -> bool:
    ch = word[i]
    if ch in _VOWELS:
        return False
    if ch == "y":
        return i == 0 or not _is_consonant(word, i - 1)
    return True


class PorterStemmer:
    """The classic Porter stemming algorithm for English.

    >>> PorterStemmer().stem("epithelializations")
    'epitheli'
    """

    def stem(self, word: str) -> str:
        """Return the Porter stem of ``word`` (lower-cased)."""
        word = word.lower()
        if len(word) <= 2:
            return word
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._step2(word)
        word = self._step3(word)
        word = self._step4(word)
        word = self._step5a(word)
        word = self._step5b(word)
        return word

    # -- measure and predicates -------------------------------------------

    def _measure(self, stem: str) -> int:
        """Porter's m: the number of VC sequences in the stem."""
        m = 0
        prev_vowel = False
        for i in range(len(stem)):
            vowel = not _is_consonant(stem, i)
            if prev_vowel and not vowel:
                m += 1
            prev_vowel = vowel
        return m

    def _contains_vowel(self, stem: str) -> bool:
        return any(not _is_consonant(stem, i) for i in range(len(stem)))

    def _ends_double_consonant(self, word: str) -> bool:
        return (
            len(word) >= 2
            and word[-1] == word[-2]
            and _is_consonant(word, len(word) - 1)
        )

    def _ends_cvc(self, word: str) -> bool:
        if len(word) < 3:
            return False
        c1 = _is_consonant(word, len(word) - 3)
        v = not _is_consonant(word, len(word) - 2)
        c2 = _is_consonant(word, len(word) - 1)
        return c1 and v and c2 and word[-1] not in "wxy"

    # -- steps --------------------------------------------------------------

    def _step1a(self, word: str) -> str:
        if word.endswith("sses"):
            return word[:-2]
        if word.endswith("ies"):
            return word[:-2]
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    def _step1b(self, word: str) -> str:
        if word.endswith("eed"):
            stem = word[:-3]
            if self._measure(stem) > 0:
                return word[:-1]
            return word
        flag = False
        if word.endswith("ed") and self._contains_vowel(word[:-2]):
            word = word[:-2]
            flag = True
        elif word.endswith("ing") and self._contains_vowel(word[:-3]):
            word = word[:-3]
            flag = True
        if flag:
            if word.endswith(("at", "bl", "iz")):
                return word + "e"
            if self._ends_double_consonant(word) and word[-1] not in "lsz":
                return word[:-1]
            if self._measure(word) == 1 and self._ends_cvc(word):
                return word + "e"
        return word

    def _step1c(self, word: str) -> str:
        if word.endswith("y") and self._contains_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    _STEP2_SUFFIXES = (
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    )

    def _step2(self, word: str) -> str:
        for suffix, replacement in self._STEP2_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: -len(suffix)]
                if self._measure(stem) > 0:
                    return stem + replacement
                return word
        return word

    _STEP3_SUFFIXES = (
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    )

    def _step3(self, word: str) -> str:
        for suffix, replacement in self._STEP3_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: -len(suffix)]
                if self._measure(stem) > 0:
                    return stem + replacement
                return word
        return word

    _STEP4_SUFFIXES = (
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    )

    def _step4(self, word: str) -> str:
        if word.endswith("ion"):
            stem = word[:-3]
            if stem and stem[-1] in "st" and self._measure(stem) > 1:
                return stem
            return word
        for suffix in self._STEP4_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: -len(suffix)]
                if self._measure(stem) > 1:
                    return stem
                return word
        return word

    def _step5a(self, word: str) -> str:
        if word.endswith("e"):
            stem = word[:-1]
            m = self._measure(stem)
            if m > 1 or (m == 1 and not self._ends_cvc(stem)):
                return stem
        return word

    def _step5b(self, word: str) -> str:
        if (
            self._measure(word) > 1
            and self._ends_double_consonant(word)
            and word.endswith("l")
        ):
            return word[:-1]
        return word


# Light suffix strippers for French / Spanish, longest-suffix-first.
_FRENCH_SUFFIXES = (
    "issements", "issement", "atrices", "atrice", "ateurs", "ateur",
    "logies", "logie", "emments", "emment", "ements", "ement", "euses",
    "euse", "istes", "iste", "ables", "able", "ances", "ance", "ences",
    "ence", "ités", "ité", "ives", "ive", "eaux", "aux", "ées", "ée",
    "és", "é", "es", "s",
)

_SPANISH_SUFFIXES = (
    "amientos", "amiento", "imientos", "imiento", "aciones", "ación",
    "logías", "logía", "idades", "idad", "mente", "istas", "ista",
    "ables", "able", "ibles", "ible", "ancias", "ancia", "encias",
    "encia", "adores", "adora", "ador", "osas", "osa", "osos", "oso",
    "ivas", "iva", "ivos", "ivo", "es", "as", "os", "a", "o", "s",
)

_MIN_STEM = 3

_porter = PorterStemmer()


def _strip_suffixes(word: str, suffixes: tuple[str, ...]) -> str:
    for suffix in suffixes:
        if word.endswith(suffix) and len(word) - len(suffix) >= _MIN_STEM:
            return word[: -len(suffix)]
    return word


def _stem_light(word: str, suffixes: tuple[str, ...], final_vowels: str) -> str:
    """Savoy-style light stemming: plural, derivational suffix, final vowel.

    The trailing-vowel strip is what conflates singular/plural pairs whose
    plural form loses the vowel together with the plural marker
    ("maladies" → "maladi" ← "maladie").
    """
    if word.endswith(("s", "x")) and len(word) - 1 >= _MIN_STEM:
        word = word[:-1]
    word = _strip_suffixes(word, suffixes)
    if word and word[-1] in final_vowels and len(word) - 1 >= _MIN_STEM:
        word = word[:-1]
    return word


def stem(word: str, language: str = "en") -> str:
    """Stem ``word`` for ``language`` (``"en"`` Porter, ``"fr"``/``"es"`` light)."""
    check_in_options(language, "language", ("en", "fr", "es"))
    word = word.lower()
    if language == "en":
        return _porter.stem(word)
    if language == "fr":
        return _stem_light(word, _FRENCH_SUFFIXES, "eé")
    return _stem_light(word, _SPANISH_SUFFIXES, "aeo")
