"""Ready-made synthetic scenarios combining ontology + corpus + lexicon.

Examples, tests, and benchmarks all need the same setup dance: mint a
lexicon, generate an ontology over it, generate a PubMed-like corpus over
both.  These helpers keep that dance in one place so every entry point
agrees on how a scenario is wired.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.corpus.corpus import Corpus
from repro.corpus.pubmed import PubMedSimulator, PubMedSpec
from repro.lexicon import BioLexicon
from repro.ontology.generator import GeneratorSpec, OntologyGenerator
from repro.ontology.mesh import assign_tree_numbers, make_eye_fragment
from repro.ontology.model import Ontology


@dataclass(frozen=True)
class EnrichmentScenario:
    """A generated ontology with a matching PubMed-like corpus.

    Attributes
    ----------
    ontology:
        The MeSH-like target ontology.
    corpus:
        Abstracts whose topics follow the ontology's concepts.
    pos_lexicon:
        Gold ``word → POS`` mapping covering every generated word (feed
        it to taggers for gold tagging).
    """

    ontology: Ontology
    corpus: Corpus
    pos_lexicon: dict[str, str]


def make_enrichment_scenario(
    *,
    seed: int = 0,
    n_concepts: int = 60,
    docs_per_concept: int = 8,
    polysemy_histogram: dict[int, int] | None = None,
    mean_synonyms: float = 1.0,
    recent_fraction: float = 0.15,
    inherit_fraction: float = 0.4,
    spec: PubMedSpec | None = None,
) -> EnrichmentScenario:
    """A general-purpose scenario for the full workflow.

    Parameters mirror the generator knobs; defaults produce a ~60-concept
    ontology with a corpus of ``60 × docs_per_concept`` abstracts in a
    couple of seconds.  ``inherit_fraction`` controls how similar related
    concepts' contexts are (higher = more confusable siblings).
    """
    from repro.corpus.topics import ConceptTopicModel

    lexicon = BioLexicon(seed=seed)
    generator_spec = GeneratorSpec(
        n_concepts=n_concepts,
        n_roots=max(2, n_concepts // 20),
        mean_synonyms=mean_synonyms,
        polysemy_histogram=polysemy_histogram
        or {2: max(2, n_concepts // 10), 3: max(1, n_concepts // 30)},
        recent_fraction=recent_fraction,
    )
    ontology = OntologyGenerator(
        generator_spec, lexicon=lexicon, seed=seed
    ).generate()
    assign_tree_numbers(ontology)
    topic_model = ConceptTopicModel(
        ontology, lexicon, inherit_fraction=inherit_fraction, seed=seed
    )
    simulator = PubMedSimulator(
        ontology,
        lexicon,
        spec=spec
        or PubMedSpec(mention_prob=0.85, related_mention_prob=0.3),
        topic_model=topic_model,
        seed=seed,
    )
    corpus = simulator.generate_balanced(docs_per_concept)
    return EnrichmentScenario(
        ontology=ontology, corpus=corpus, pos_lexicon=dict(lexicon.pos_lexicon)
    )


def make_corneal_scenario(
    *,
    seed: int = 0,
    docs_per_concept: int = 20,
    spec: PubMedSpec | None = None,
) -> EnrichmentScenario:
    """The paper's running example: the real MeSH eye fragment.

    "corneal injuries" (added to MeSH between 2009 and 2015, synonyms
    corneal injury / corneal damage / corneal trauma, fathers corneal
    diseases and eye injuries) plus the surrounding descriptors that
    appear in the paper's Table 3, with a generated PubMed-like context
    corpus.
    """
    ontology = make_eye_fragment()
    lexicon = BioLexicon(seed=seed)
    simulator = PubMedSimulator(
        ontology,
        lexicon,
        spec=spec
        or PubMedSpec(
            mention_prob=0.85,
            related_mention_prob=0.35,
            noise_mention_prob=0.05,
        ),
        seed=seed,
    )
    corpus = simulator.generate_balanced(docs_per_concept)
    return EnrichmentScenario(
        ontology=ontology, corpus=corpus, pos_lexicon=dict(lexicon.pos_lexicon)
    )
