"""Experiment runners regenerating every table of the paper.

Each ``run_*`` function is deterministic under its ``seed`` and returns a
result object the benchmarks render next to the paper's published numbers
(:mod:`repro.eval.paper`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clustering.algorithms import cluster
from repro.clustering.indexes import (
    INDEX_DIRECTIONS,
    PAPER_INDEXES,
    compute_index,
)
from repro.corpus.mshwsd import MshWsdSimulator
from repro.corpus.pubmed import PubMedSpec
from repro.eval import paper
from repro.linkage.evaluation import LinkageEvaluation, evaluate_linkage, gold_positions
from repro.linkage.linker import Proposition, SemanticLinker
from repro.ontology.snapshot import held_out_terms
from repro.ontology.stats import PolysemyStatistics
from repro.ontology.umls import SyntheticMetathesaurus
from repro.polysemy.dataset import build_entity_polysemy_dataset
from repro.polysemy.detector import PolysemyDetector
from repro.polysemy.features import PolysemyFeatureExtractor
from repro.scenarios import make_corneal_scenario, make_enrichment_scenario
from repro.senses.representation import represent_contexts
from repro.utils.rng import ensure_rng, spawn_rng


# -- E1: Table 1 ------------------------------------------------------------


@dataclass(frozen=True)
class Table1Result:
    """Measured polysemy statistics of the synthetic metathesaurus."""

    statistics: PolysemyStatistics
    scale: float

    def table(self) -> str:
        """Rendered in the paper's Table 1 layout."""
        return self.statistics.to_table(
            title=f"Table 1 (synthetic, scale 1:{self.scale:g})"
        )


def run_table1_experiment(*, scale: float = 1000.0, seed: int = 0) -> Table1Result:
    """Generate the six terminologies and measure their polysemy histograms."""
    meta = SyntheticMetathesaurus(scale=scale, seed=seed)
    ontologies = meta.generate()
    return Table1Result(
        statistics=PolysemyStatistics.measure(ontologies), scale=scale
    )


# -- E2: sense-number prediction (Table 2 indexes in action) -----------------


@dataclass
class SenseNumberResult:
    """Accuracy grid of the §3(i) experiment.

    ``accuracies[(algorithm, representation, index)]`` is the fraction of
    entities whose true sense count the index recovered.
    """

    accuracies: dict[tuple[str, str, str], float] = field(default_factory=dict)
    n_entities: int = 0
    k_distribution: dict[int, int] = field(default_factory=dict)

    def best(self) -> tuple[tuple[str, str, str], float]:
        """The winning (algorithm, representation, index) and its accuracy."""
        key = max(self.accuracies, key=self.accuracies.get)
        return key, self.accuracies[key]

    def best_by_index(self) -> dict[str, float]:
        """Best accuracy per index over algorithms × representations."""
        out: dict[str, float] = {}
        for (__, ___, index), acc in self.accuracies.items():
            out[index] = max(out.get(index, 0.0), acc)
        return out


def run_sense_number_experiment(
    *,
    n_entities: int = 60,
    contexts_per_sense: int = 25,
    sense_overlap: float = 0.35,
    background_fraction: float = 0.55,
    algorithms: tuple[str, ...] = paper.SENSE_PREDICTION_ALGORITHMS,
    representations: tuple[str, ...] = ("bow", "graph"),
    indexes: tuple[str, ...] = PAPER_INDEXES,
    k_range: tuple[int, ...] = (2, 3, 4, 5),
    seed: int = 0,
) -> SenseNumberResult:
    """Sweep algorithms × representations × indexes on MSH-WSD-like data.

    One clustering per (entity, representation, algorithm, k); every index
    is scored on that same solution, exactly how the paper's grid search
    works with CLUTO output.
    """
    simulator = MshWsdSimulator(
        n_entities=n_entities,
        contexts_per_sense=contexts_per_sense,
        sense_overlap=sense_overlap,
        background_fraction=background_fraction,
        seed=seed,
    )
    entities = simulator.generate()
    result = SenseNumberResult(n_entities=len(entities))
    for entity in entities:
        result.k_distribution[entity.true_k] = (
            result.k_distribution.get(entity.true_k, 0) + 1
        )

    hits: dict[tuple[str, str, str], int] = {
        (a, r, i): 0
        for a in algorithms
        for r in representations
        for i in indexes
    }
    rng = ensure_rng(seed)
    entity_rngs = spawn_rng(rng, len(entities))
    for entity, entity_rng in zip(entities, entity_rngs, strict=True):
        for representation in representations:
            matrix = represent_contexts(entity.contexts, representation)
            feasible = [k for k in k_range if k <= matrix.shape[0]]
            for algorithm in algorithms:
                values: dict[str, dict[int, float]] = {i: {} for i in indexes}
                for k in feasible:
                    solution = cluster(
                        matrix, k, method=algorithm, seed=entity_rng
                    )
                    for index in indexes:
                        values[index][k] = compute_index(
                            index, matrix, solution.labels, stats=solution.stats
                        )
                for index in indexes:
                    direction = INDEX_DIRECTIONS[index]
                    curve = values[index]
                    predicted = (
                        max(sorted(curve), key=lambda k: (curve[k], -k))
                        if direction == "max"
                        else min(sorted(curve), key=lambda k: (curve[k], k))
                    )
                    if predicted == entity.true_k:
                        hits[(algorithm, representation, index)] += 1

    for key, n_hits in hits.items():
        result.accuracies[key] = n_hits / len(entities)
    return result


# -- E3: Table 3 — the "corneal injuries" example ----------------------------


@dataclass(frozen=True)
class Table3Result:
    """The reproduced proposition list for "corneal injuries"."""

    propositions: list[Proposition]
    gold: set[str]

    def correct_flags(self) -> list[bool]:
        """Per-rank correctness (synonym/father/son of the true concept)."""
        return [p.term in self.gold for p in self.propositions]

    def n_correct(self) -> int:
        """Number of correct propositions in the list."""
        return sum(self.correct_flags())


def run_table3_experiment(
    *, seed: int = 0, docs_per_concept: int = 20
) -> Table3Result:
    """Position "corneal injuries" in the real MeSH eye fragment."""
    scenario = make_corneal_scenario(seed=seed, docs_per_concept=docs_per_concept)
    linker = SemanticLinker(scenario.ontology, scenario.corpus, top_k=10)
    propositions = linker.propose("corneal injuries")
    concept_id = scenario.ontology.concepts_for_term("corneal injuries")[0]
    gold = gold_positions(scenario.ontology, concept_id, "corneal injuries")
    return Table3Result(propositions=propositions, gold=gold)


# -- E4: Table 4 — linkage precision over held-out terms ---------------------


def run_linkage_precision_experiment(
    *,
    n_terms: int = paper.LINKAGE_N_TERMS,
    n_concepts: int = 150,
    docs_per_concept: int = 4,
    mean_synonyms: float = 0.6,
    inherit_fraction: float = 0.65,
    seed: int = 0,
    pubmed_spec: PubMedSpec | None = None,
    ks: tuple[int, ...] = (1, 2, 5, 10),
) -> LinkageEvaluation:
    """The Table 4 protocol on a generated MeSH-like ontology.

    Terms stamped 2009–2015 are the candidates; the linker proposes 10
    positions each; precision@k counts terms with ≥1 correct proposition.

    Defaults are calibrated to the paper's difficulty regime: sparse
    candidate contexts, heavy shared vocabulary between related concepts
    (high ``inherit_fraction`` → confusable siblings, like "chemical
    burns" outranking the fathers in Table 3), and many terms without
    synonyms (low ``mean_synonyms``), which is what pushes hit@1 down to
    the paper's ~1/3 while leaving hit@10 around ~0.6.
    """
    scenario = make_enrichment_scenario(
        seed=seed,
        n_concepts=n_concepts,
        docs_per_concept=docs_per_concept,
        mean_synonyms=mean_synonyms,
        inherit_fraction=inherit_fraction,
        recent_fraction=0.6 * n_terms / max(n_concepts, 1),
        spec=pubmed_spec
        or PubMedSpec(
            mention_prob=0.55,
            related_mention_prob=0.3,
            noise_mention_prob=0.2,
            background_fraction=0.6,
        ),
    )
    held = held_out_terms(scenario.ontology, *paper.LINKAGE_YEARS)
    rng = ensure_rng(seed)
    if len(held) > n_terms:
        picked = rng.choice(len(held), size=n_terms, replace=False)
        held = [held[int(i)] for i in sorted(picked)]
    linker = SemanticLinker(scenario.ontology, scenario.corpus, top_k=max(ks))
    return evaluate_linkage(linker, held, ks=ks)


# -- E6: term-extraction measure comparison (companion paper [4]) ------------


@dataclass(frozen=True)
class TermExtractionResult:
    """Precision@k per ranking measure against the generated terminology."""

    precision: dict[str, dict[int, float]]
    n_candidates: dict[str, int]

    def best_at(self, k: int) -> tuple[str, float]:
        """The measure with the highest precision at cutoff ``k``."""
        best = max(self.precision, key=lambda m: self.precision[m][k])
        return best, self.precision[best][k]


def run_term_extraction_experiment(
    *,
    n_concepts: int = 80,
    docs_per_concept: int = 6,
    ks: tuple[int, ...] = (10, 50, 100, 200),
    seed: int = 0,
) -> TermExtractionResult:
    """Rank candidates with every measure; score against the ontology terms."""
    from repro.extraction.evaluation import precision_curve, reference_terms_from_ontology
    from repro.extraction.extractor import BioTexExtractor
    from repro.extraction.measures import MEASURE_NAMES
    from repro.text.postag import LexiconTagger

    from repro.lexicon import BioLexicon

    scenario = make_enrichment_scenario(
        seed=seed,
        n_concepts=n_concepts,
        docs_per_concept=docs_per_concept,
    )
    reference = reference_terms_from_ontology(scenario.ontology)
    tagger = LexiconTagger(scenario.pos_lexicon)
    # BioTex's general-academic stop list: the filler vocabulary.
    stop_words = frozenset(
        BioLexicon.filler_nouns() + BioLexicon.core_verbs() + BioLexicon.core_adverbs()
    )
    precision: dict[str, dict[int, float]] = {}
    counts: dict[str, int] = {}
    for measure in MEASURE_NAMES:
        extractor = BioTexExtractor(
            measure=measure,
            tagger=tagger,
            min_length=2,
            min_frequency=2,
            stop_words=stop_words,
        )
        ranked = extractor.extract(scenario.corpus)
        precision[measure] = precision_curve(ranked, reference, ks=ks)
        counts[measure] = len(ranked)
    return TermExtractionResult(precision=precision, n_candidates=counts)


# -- E5: polysemy detection F-measure ----------------------------------------


def run_polysemy_detection_experiment(
    *,
    classifiers: tuple[str, ...] = (
        "forest",
        "logistic",
        "knn",
        "svm",
        "tree",
        "gaussian_nb",
    ),
    n_entities: int = 160,
    contexts_per_entity: int = 24,
    sense_overlap: float = 0.75,
    background_fraction: float = 0.65,
    feature_set: str = "all",
    n_splits: int = 10,
    seed: int = 0,
) -> dict[str, float]:
    """Mean CV F-measure per classifier on the entity benchmark.

    Half the entities are monosemous controls (k = 1), the rest follow
    the MSH WSD sense distribution; every entity has the same total
    context budget so volume cannot leak the label.
    """
    n_mono = n_entities // 2
    n_poly = n_entities - n_mono
    distribution = {
        1: n_mono,
        2: round(n_poly * 0.83),
        3: round(n_poly * 0.12),
        4: round(n_poly * 0.04),
        5: max(1, round(n_poly * 0.01)),
    }
    simulator = MshWsdSimulator(
        n_entities=n_entities,
        sense_distribution=distribution,
        contexts_per_sense=contexts_per_entity,
        contexts_mode="per_entity",
        sense_overlap=sense_overlap,
        background_fraction=background_fraction,
        seed=seed,
    )
    dataset = build_entity_polysemy_dataset(
        simulator.generate(),
        extractor=PolysemyFeatureExtractor(feature_set=feature_set),
    )
    results = {}
    for name in classifiers:
        detector = PolysemyDetector(name, seed=seed)
        scores = detector.cross_validate_f1(dataset, n_splits=n_splits, seed=seed)
        results[name] = float(scores.mean())
    return results
