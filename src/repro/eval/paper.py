"""Every number the paper reports, as constants.

Benchmarks print these next to the measured values so EXPERIMENTS.md can
record paper-vs-measured for each table; nothing in the library reads
them to *produce* results.
"""

from __future__ import annotations

#: Table 1 — polysemic-term counts per sense bin (5 stands for "5+").
TABLE1_POLYSEMY_COUNTS: dict[tuple[str, str], dict[int, int]] = {
    ("umls", "en"): {2: 54_257, 3: 7_770, 4: 1_842, 5: 1_677},
    ("umls", "fr"): {2: 1_292, 3: 36, 4: 1, 5: 1},
    ("umls", "es"): {2: 10_906, 3: 414, 4: 56, 5: 18},
    ("mesh", "en"): {2: 178, 3: 1, 4: 0, 5: 0},
    ("mesh", "fr"): {2: 11, 3: 0, 4: 0, 5: 0},
    ("mesh", "es"): {2: 0, 3: 0, 4: 0, 5: 0},
}

#: §1 prose: the English UMLS holds ~9 919 000 distinct terms...
UMLS_EN_TOTAL_TERMS = 9_919_000
#: ...i.e. roughly one polysemic term per 200 terms.
UMLS_EN_POLYSEMY_RATE = 1 / 200

#: §2(II) prose — polysemy detection effectiveness with the 23 features.
POLYSEMY_DETECTION_F_MEASURE = 0.98
N_DIRECT_FEATURES = 11
N_GRAPH_FEATURES = 12

#: §3(i) — number-of-senses prediction on MSH WSD.
MSHWSD_N_ENTITIES = 203
SENSE_PREDICTION_BEST_ACCURACY = 0.931
SENSE_PREDICTION_BEST_INDEX = "fk"
#: The five CLUTO algorithms the paper sweeps.
SENSE_PREDICTION_ALGORITHMS = ("rb", "rbr", "direct", "agglo", "graph")

#: §3(ii) — semantic linkage corpus: 60 terms added to MeSH 2009–2015,
#: contexts totalling 333 073 311 tokens.
LINKAGE_N_TERMS = 60
LINKAGE_CORPUS_TOKENS = 333_073_311
LINKAGE_YEARS = (2009, 2015)

#: Table 3 — top-10 propositions for "corneal injuries" (term, cosine);
#: rows marked correct in the paper are flagged.
TABLE3_PROPOSITIONS: list[tuple[str, float, bool]] = [
    ("corneal injury", 0.4251, True),
    ("corneal damage", 0.4181, True),
    ("chemical burns", 0.4081, False),
    ("corneal diseases", 0.3696, True),
    ("corneal ulcer", 0.3689, False),
    ("eye injuries", 0.3681, True),
    ("amniotic membrane", 0.3639, False),
    ("re-epithelialization", 0.3588, False),
    ("corneal trauma", 0.3582, True),
    ("wound", 0.3472, False),
]
TABLE3_CORRECT_IN_TOP10 = 5

#: Table 4 — fraction of the 60 terms with ≥1 correct proposition.
TABLE4_PRECISION_AT: dict[int, float] = {
    1: 0.333,
    2: 0.400,
    5: 0.500,
    10: 0.583,
}
