"""Rendering experiment results next to the paper's published numbers.

Used by ``examples/reproduce_paper.py`` and handy for notebooks: each
``render_*`` function takes the corresponding experiment result object
and returns a printable report block.
"""

from __future__ import annotations

from repro.eval import paper
from repro.eval.experiments import (
    SenseNumberResult,
    Table1Result,
    Table3Result,
    TermExtractionResult,
)
from repro.linkage.evaluation import LinkageEvaluation
from repro.utils.tables import format_table


def render_table1(result: Table1Result) -> str:
    """Table 1 measured vs paper (counts + shape statistics)."""
    lines = [result.table(), ""]
    en = result.statistics.histograms[("umls", "en")]
    en_paper = paper.TABLE1_POLYSEMY_COUNTS[("umls", "en")]
    share = en[2] / max(sum(en.values()), 1)
    share_paper = en_paper[2] / sum(en_paper.values())
    lines.append(
        format_table(
            ["quantity", "paper", "measured"],
            [
                ["UMLS-EN k=2 share", f"{share_paper:.3f}", f"{share:.3f}"],
                [
                    "UMLS-EN polysemy rate",
                    "~1/200",
                    f"1/{round(1 / max(result.statistics.polysemy_ratio(('umls', 'en')), 1e-9))}",
                ],
            ],
            title="Table 1 — shape check",
        )
    )
    return "\n".join(lines)


def render_sense_number(result: SenseNumberResult) -> str:
    """The §3(i) accuracy grid with the paper headline."""
    by_index = result.best_by_index()
    rows = [
        [index, f"{acc:.3f}"]
        for index, acc in sorted(by_index.items(), key=lambda kv: -kv[1])
    ]
    __, best_acc = result.best()
    tied = sorted(
        index for index, acc in by_index.items() if acc == max(by_index.values())
    )
    lines = [
        format_table(
            ["index", "best accuracy"],
            rows,
            title=(
                f"Sense-number prediction ({result.n_entities} entities, "
                f"k distribution {result.k_distribution})"
            ),
        ),
        "",
        format_table(
            ["quantity", "paper", "measured"],
            [
                ["best accuracy", f"{paper.SENSE_PREDICTION_BEST_ACCURACY:.3f}",
                 f"{best_acc:.3f}"],
                ["best index", paper.SENSE_PREDICTION_BEST_INDEX,
                 ", ".join(tied) + (" (tied)" if len(tied) > 1 else "")],
            ],
            title="§3(i) — headline",
        ),
    ]
    return "\n".join(lines)


def render_table3(result: Table3Result) -> str:
    """Table 3 measured rows with correctness flags."""
    rows = [
        [p.rank, p.term, f"{p.cosine:.4f}", "*" if ok else ""]
        for p, ok in zip(result.propositions, result.correct_flags(), strict=True)
    ]
    lines = [
        format_table(
            ["#", "where", "cosine", "correct"],
            rows,
            title='Table 3 — propositions for "corneal injuries"',
        ),
        f"correct in top 10: paper {paper.TABLE3_CORRECT_IN_TOP10}, "
        f"measured {result.n_correct()}",
    ]
    return "\n".join(lines)


def render_table4(evaluation: LinkageEvaluation) -> str:
    """Table 4 measured vs paper."""
    row = evaluation.as_row()
    return format_table(
        ["quantity", "paper", "measured"],
        [
            [f"Top {k}", f"{paper.TABLE4_PRECISION_AT[k]:.3f}", f"{row[k]:.3f}"]
            for k in (1, 2, 5, 10)
        ],
        title=f"Table 4 — hit@k over {evaluation.n_terms} held-out terms",
    )


def render_polysemy_detection(results: dict[str, float]) -> str:
    """The §2(II) F-measures per classifier with the paper headline."""
    rows = [
        [name, f"{f1:.3f}"]
        for name, f1 in sorted(results.items(), key=lambda kv: -kv[1])
    ]
    best = max(results.values())
    lines = [
        format_table(
            ["classifier", "F-measure"],
            rows,
            title="Polysemy detection (23 features, stratified CV)",
        ),
        f"best F-measure: paper {paper.POLYSEMY_DETECTION_F_MEASURE:.2f}, "
        f"measured {best:.3f}",
    ]
    return "\n".join(lines)


def render_term_extraction(result: TermExtractionResult) -> str:
    """The E6 measure-comparison table."""
    ks = sorted(next(iter(result.precision.values())))
    rows = [
        [measure] + [f"{curve[k]:.3f}" for k in ks]
        for measure, curve in result.precision.items()
    ]
    return format_table(
        ["measure"] + [f"P@{k}" for k in ks],
        rows,
        title="Step I substrate — extraction measures (companion paper [4])",
    )
