"""Evaluation: the paper's reported numbers and the experiment runners."""

from repro.eval import paper
from repro.eval.experiments import (
    run_linkage_precision_experiment,
    run_polysemy_detection_experiment,
    run_sense_number_experiment,
    run_table1_experiment,
    run_table3_experiment,
)

__all__ = [
    "paper",
    "run_linkage_precision_experiment",
    "run_polysemy_detection_experiment",
    "run_sense_number_experiment",
    "run_table1_experiment",
    "run_table3_experiment",
]
