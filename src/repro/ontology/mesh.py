"""MeSH-flavoured ontologies.

Adds the MeSH-specific dressing on top of the generic generator —
descriptor-style ids (``D######``), tree numbers assigned along the
hierarchy — and hand-builds the small *real* MeSH fragment around
"corneal injuries" that the paper uses as its running example (Table 3).
"""

from __future__ import annotations

import numpy as np

from repro.lexicon import BioLexicon
from repro.ontology.generator import GeneratorSpec, OntologyGenerator
from repro.ontology.model import Concept, Ontology


class MeshOntologyBuilder:
    """Build MeSH-like ontologies: generated at scale, or the real fragment.

    Parameters
    ----------
    spec:
        Structure of the generated part (see :class:`GeneratorSpec`).
    lexicon / seed:
        Shared naming lexicon and RNG seed, as in
        :class:`~repro.ontology.generator.OntologyGenerator`.
    """

    def __init__(
        self,
        spec: GeneratorSpec | None = None,
        *,
        lexicon: BioLexicon | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.spec = spec if spec is not None else GeneratorSpec()
        self._generator = OntologyGenerator(self.spec, lexicon=lexicon, seed=seed)

    @property
    def lexicon(self) -> BioLexicon:
        """The naming lexicon (shared with the corpus generator)."""
        return self._generator.lexicon

    def build(self, name: str = "mesh-like") -> Ontology:
        """Generate the ontology, then add MeSH descriptor tree numbers."""
        onto = self._generator.generate(name)
        assign_tree_numbers(onto)
        return onto


def assign_tree_numbers(ontology: Ontology) -> None:
    """Assign MeSH-style tree numbers along every father → son path.

    Roots get ``C01``, ``C02``...; each son appends a zero-padded sibling
    index (``C01.045.112``).  Concepts reachable by several paths get one
    tree number per path, like real MeSH descriptors.
    """
    for concept in ontology:
        concept.tree_numbers = []
    counters: dict[str, int] = {}

    def visit(cid: str, prefix: str) -> None:
        concept = ontology.concept(cid)
        concept.tree_numbers.append(prefix)
        for son in ontology.sons(cid):
            counters[prefix] = counters.get(prefix, 0) + 1
            visit(son, f"{prefix}.{counters[prefix]:03d}")

    for root_idx, root in enumerate(ontology.roots(), start=1):
        visit(root, f"C{root_idx:02d}")


def make_mesh_like_ontology(
    n_concepts: int = 300,
    *,
    seed: int | np.random.Generator | None = None,
    polysemy_histogram: dict[int, int] | None = None,
    lexicon: BioLexicon | None = None,
) -> Ontology:
    """Convenience one-call generated MeSH-like ontology."""
    spec = GeneratorSpec(
        n_concepts=n_concepts,
        polysemy_histogram=polysemy_histogram or {},
    )
    return MeshOntologyBuilder(spec, lexicon=lexicon, seed=seed).build()


def make_eye_fragment() -> Ontology:
    """The real MeSH fragment around "corneal injuries" (paper Table 3).

    Encodes the descriptors, entry terms (synonyms), and hierarchy the
    paper cites: *corneal injuries* (added to MeSH between 2009 and 2015,
    synonyms corneal injury / corneal damage / corneal trauma, fathers
    corneal diseases and eye injuries) plus the surrounding terms that
    appear among the paper's top-10 propositions (chemical burns, corneal
    ulcer, amniotic membrane, re-epithelialization, wound).
    """
    onto = Ontology("mesh-eye-fragment")
    onto.add_concept(Concept("D005128", "eye diseases", year_added=1963))
    onto.add_concept(
        Concept("D014947", "wounds and injuries", synonyms=["wound", "injuries"],
                year_added=1963)
    )
    onto.add_concept(
        Concept("D003316", "corneal diseases", synonyms=["cornea disease"],
                year_added=1966),
        fathers=["D005128"],
    )
    onto.add_concept(
        Concept("D005131", "eye injuries", synonyms=["ocular injuries"],
                year_added=1966),
        fathers=["D005128", "D014947"],
    )
    onto.add_concept(
        Concept(
            "D065306",
            "corneal injuries",
            synonyms=["corneal injury", "corneal damage", "corneal trauma"],
            year_added=2014,
        ),
        fathers=["D003316", "D005131"],
    )
    onto.add_concept(
        Concept("D003320", "corneal ulcer", synonyms=["ulcerative keratitis"],
                year_added=1966),
        fathers=["D003316"],
    )
    onto.add_concept(
        Concept("D002057", "chemical burns", synonyms=["burns chemical"],
                year_added=1966),
        fathers=["D014947"],
    )
    onto.add_concept(
        Concept("D000650", "amniotic membrane", synonyms=["amnion"],
                year_added=1966),
    )
    onto.add_concept(
        Concept(
            "D055545",
            "re-epithelialization",
            synonyms=["wound re-epithelialization"],
            year_added=2008,
        ),
        fathers=["D014947"],
    )
    onto.add_concept(
        Concept("D006082", "eye burns", synonyms=["ocular burns"], year_added=1966),
        fathers=["D005131"],
    )
    onto.add_concept(
        Concept("D007634", "keratitis", synonyms=["corneal inflammation"],
                year_added=1966),
        fathers=["D003316"],
    )
    assign_tree_numbers(onto)
    onto.validate()
    return onto
