"""Core ontology data model: concepts, terms, and the hierarchy.

The model follows the paper's vocabulary:

* a **concept** is a node of the ontology (a MeSH descriptor, a UMLS CUI);
* a **term** is a string naming one or more concepts (preferred term or
  synonym); a term naming several concepts is **polysemic**;
* **fathers** and **sons** are direct hierarchy neighbours — the paper's
  Step IV proposes positions among "its MeSH neighbors, and the
  fathers/sons of those neighbors".

The hierarchy is a DAG (MeSH descriptors can have several fathers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator

from repro.errors import OntologyError


def normalize_term(term: str) -> str:
    """Canonical form used for term lookup: lower-case, collapsed spaces."""
    return " ".join(term.lower().split())


@dataclass
class Concept:
    """A node of the ontology.

    Parameters
    ----------
    concept_id:
        Unique identifier (e.g. ``"D003316"`` or ``"C0010031"``).
    preferred_term:
        Canonical name of the concept.
    synonyms:
        Alternative names (entry terms), excluding the preferred term.
    year_added:
        Release year the concept entered the ontology; drives snapshots.
    tree_numbers:
        MeSH-style hierarchical addresses, informational only.
    """

    concept_id: str
    preferred_term: str
    synonyms: list[str] = field(default_factory=list)
    year_added: int | None = None
    tree_numbers: list[str] = field(default_factory=list)

    def all_terms(self) -> list[str]:
        """Preferred term followed by synonyms (normalised, deduplicated)."""
        seen: set[str] = set()
        out: list[str] = []
        for term in [self.preferred_term, *self.synonyms]:
            norm = normalize_term(term)
            if norm not in seen:
                seen.add(norm)
                out.append(norm)
        return out


class Ontology:
    """A DAG of :class:`Concept` objects with a term index.

    >>> onto = Ontology("demo")
    >>> _ = onto.add_concept(Concept("C1", "eye diseases"))
    >>> _ = onto.add_concept(Concept("C2", "corneal diseases"), fathers=["C1"])
    >>> onto.fathers("C2")
    ['C1']
    >>> onto.concepts_for_term("corneal diseases")
    ['C2']
    """

    def __init__(self, name: str = "ontology") -> None:
        self.name = name
        self._concepts: dict[str, Concept] = {}
        self._fathers: dict[str, set[str]] = {}
        self._sons: dict[str, set[str]] = {}
        self._term_index: dict[str, set[str]] = {}

    # -- construction -------------------------------------------------------

    def add_concept(
        self, concept: Concept, fathers: Iterable[str] = ()
    ) -> Concept:
        """Insert ``concept``; optionally attach it under existing fathers."""
        cid = concept.concept_id
        if cid in self._concepts:
            raise OntologyError(f"duplicate concept id {cid!r}")
        self._concepts[cid] = concept
        self._fathers[cid] = set()
        self._sons[cid] = set()
        for term in concept.all_terms():
            self._term_index.setdefault(term, set()).add(cid)
        for father in fathers:
            self.add_edge(father, cid)
        return concept

    def add_edge(self, father_id: str, son_id: str) -> None:
        """Add a father → son hierarchy edge (rejects cycles)."""
        if father_id not in self._concepts:
            raise OntologyError(f"unknown father concept {father_id!r}")
        if son_id not in self._concepts:
            raise OntologyError(f"unknown son concept {son_id!r}")
        if father_id == son_id:
            raise OntologyError(f"self-edge on {father_id!r}")
        if self._reaches(son_id, father_id):
            raise OntologyError(
                f"edge {father_id!r} -> {son_id!r} would create a cycle"
            )
        self._fathers[son_id].add(father_id)
        self._sons[father_id].add(son_id)

    def add_synonym(self, concept_id: str, term: str) -> None:
        """Attach an extra synonym to an existing concept."""
        concept = self.concept(concept_id)
        norm = normalize_term(term)
        if norm in concept.all_terms():
            return
        concept.synonyms.append(term)
        self._term_index.setdefault(norm, set()).add(concept_id)

    def _reaches(self, start: str, target: str) -> bool:
        """True if ``target`` is reachable from ``start`` via son edges."""
        stack = [start]
        seen: set[str] = set()
        while stack:
            node = stack.pop()
            if node == target:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._sons.get(node, ()))
        return False

    # -- lookup ----------------------------------------------------------------

    def concept(self, concept_id: str) -> Concept:
        """The concept with ``concept_id`` (raises OntologyError if absent)."""
        try:
            return self._concepts[concept_id]
        except KeyError:
            raise OntologyError(f"unknown concept id {concept_id!r}") from None

    def __contains__(self, concept_id: str) -> bool:
        return concept_id in self._concepts

    def __len__(self) -> int:
        return len(self._concepts)

    def __iter__(self) -> Iterator[Concept]:
        return iter(self._concepts.values())

    def concept_ids(self) -> list[str]:
        """All concept ids in insertion order."""
        return list(self._concepts)

    def fathers(self, concept_id: str) -> list[str]:
        """Direct fathers of ``concept_id`` (sorted)."""
        self.concept(concept_id)
        return sorted(self._fathers[concept_id])

    def sons(self, concept_id: str) -> list[str]:
        """Direct sons of ``concept_id`` (sorted)."""
        self.concept(concept_id)
        return sorted(self._sons[concept_id])

    def roots(self) -> list[str]:
        """Concepts without fathers (sorted)."""
        return sorted(cid for cid, f in self._fathers.items() if not f)

    def ancestors(self, concept_id: str) -> set[str]:
        """All transitive fathers of ``concept_id``."""
        out: set[str] = set()
        stack = list(self._fathers.get(concept_id, ()))
        self.concept(concept_id)
        while stack:
            node = stack.pop()
            if node in out:
                continue
            out.add(node)
            stack.extend(self._fathers.get(node, ()))
        return out

    def depth(self, concept_id: str) -> int:
        """Length of the shortest father-chain from a root to the concept."""
        self.concept(concept_id)
        frontier = {concept_id}
        depth = 0
        seen: set[str] = set()
        while frontier:
            if any(not self._fathers[node] for node in frontier):
                return depth
            seen.update(frontier)
            frontier = {
                father
                for node in frontier
                for father in self._fathers[node]
                if father not in seen
            }
            depth += 1
        raise OntologyError(f"no root reachable from {concept_id!r}")

    # -- terms -------------------------------------------------------------------

    def terms(self) -> list[str]:
        """Every distinct (normalised) term string in the ontology."""
        return sorted(self._term_index)

    def concepts_for_term(self, term: str) -> list[str]:
        """Concept ids named by ``term`` (empty list if unknown)."""
        return sorted(self._term_index.get(normalize_term(term), ()))

    def has_term(self, term: str) -> bool:
        """True if ``term`` names at least one concept."""
        return normalize_term(term) in self._term_index

    def sense_count(self, term: str) -> int:
        """Number of concepts ``term`` names (0 when unknown)."""
        return len(self._term_index.get(normalize_term(term), ()))

    def is_polysemic(self, term: str) -> bool:
        """True if ``term`` names two or more concepts."""
        return self.sense_count(term) >= 2

    def polysemic_terms(self) -> list[str]:
        """All terms naming at least two concepts (sorted)."""
        return sorted(
            term for term, cids in self._term_index.items() if len(cids) >= 2
        )

    def remove_term(self, term: str) -> None:
        """Remove a term string from the index and its concepts' synonym lists.

        Used by Step IV evaluation: the candidate term must not be findable
        in the ontology it is being positioned into.  Removing a concept's
        *preferred* term keeps the concept but drops the name from lookup.
        """
        norm = normalize_term(term)
        cids = self._term_index.pop(norm, set())
        for cid in cids:
            concept = self._concepts[cid]
            concept.synonyms = [
                s for s in concept.synonyms if normalize_term(s) != norm
            ]

    # -- neighbourhood used by Step IV ----------------------------------------

    def position_candidates(self, concept_ids: Iterable[str]) -> set[str]:
        """Expand ``concept_ids`` with their fathers and sons (Step IV.2)."""
        out: set[str] = set()
        for cid in concept_ids:
            self.concept(cid)
            out.add(cid)
            out.update(self._fathers[cid])
            out.update(self._sons[cid])
        return out

    def validate(self) -> None:
        """Check structural invariants; raise :class:`OntologyError` if broken."""
        for cid, fathers in self._fathers.items():
            for father in fathers:
                if father not in self._concepts:
                    raise OntologyError(f"dangling father {father!r} of {cid!r}")
                if cid not in self._sons[father]:
                    raise OntologyError(
                        f"father/son asymmetry between {father!r} and {cid!r}"
                    )
        for term, cids in self._term_index.items():
            if not cids:
                raise OntologyError(f"term {term!r} indexes no concept")
            for cid in cids:
                if cid not in self._concepts:
                    raise OntologyError(f"term {term!r} indexes unknown {cid!r}")
        # Acyclicity: iterative DFS with colouring.
        state: dict[str, int] = {}
        for start in self._concepts:
            if state.get(start):
                continue
            stack: list[tuple[str, Iterator[str]]] = [(start, iter(self._sons[start]))]
            state[start] = 1
            while stack:
                node, sons = stack[-1]
                advanced = False
                for son in sons:
                    colour = state.get(son, 0)
                    if colour == 1:
                        raise OntologyError(f"cycle through {son!r}")
                    if colour == 0:
                        state[son] = 1
                        stack.append((son, iter(self._sons[son])))
                        advanced = True
                        break
                if not advanced:
                    state[node] = 2
                    stack.pop()
