"""Ontology substrate: MeSH/UMLS-like terminologies, generators, statistics.

The paper enriches MeSH and motivates its design with UMLS statistics
(Table 1).  Neither resource ships with this offline reproduction, so this
subpackage provides a faithful data model plus synthetic generators whose
polysemy profile is calibrated to the numbers the paper publishes (see
DESIGN.md §1 for the substitution argument).
"""

from repro.ontology.generator import GeneratorSpec, OntologyGenerator
from repro.ontology.io import (
    ontology_from_json,
    ontology_from_obo,
    ontology_to_json,
    ontology_to_obo,
    read_ontology_json,
    write_ontology_json,
)
from repro.ontology.mesh import (
    MeshOntologyBuilder,
    assign_tree_numbers,
    make_eye_fragment,
    make_mesh_like_ontology,
)
from repro.ontology.model import Concept, Ontology
from repro.ontology.snapshot import held_out_terms, snapshot_before
from repro.ontology.stats import PolysemyStatistics, polysemy_histogram
from repro.ontology.umls import (
    PolysemyProfile,
    SyntheticMetathesaurus,
    paper_profiles,
)

__all__ = [
    "Concept",
    "GeneratorSpec",
    "MeshOntologyBuilder",
    "Ontology",
    "OntologyGenerator",
    "PolysemyProfile",
    "PolysemyStatistics",
    "SyntheticMetathesaurus",
    "assign_tree_numbers",
    "held_out_terms",
    "make_eye_fragment",
    "make_mesh_like_ontology",
    "ontology_from_json",
    "ontology_from_obo",
    "ontology_to_json",
    "ontology_to_obo",
    "paper_profiles",
    "polysemy_histogram",
    "read_ontology_json",
    "snapshot_before",
    "write_ontology_json",
]
