"""Random ontology generation.

:class:`OntologyGenerator` builds MeSH-like ontologies: a DAG of concepts
with preferred terms, synonyms, release years, and an injected polysemy
profile.  Everything the downstream experiments require from real MeSH /
UMLS is controllable here:

* **hierarchy** — fathers/sons for Step IV's position candidates;
* **synonyms** — the "correct propositions" Step IV must recover;
* **polysemy histogram** — how many term strings name 2, 3, 4, 5+
  concepts (Table 1's quantity);
* **year_added** — selects the "terms added between 2009 and 2015"
  evaluation set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.lexicon import BioLexicon
from repro.ontology.model import Concept, Ontology
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class GeneratorSpec:
    """Parameters of a generated ontology.

    Parameters
    ----------
    n_concepts:
        Number of concepts.
    n_roots:
        Number of hierarchy roots.
    mean_synonyms:
        Poisson mean of per-concept synonym counts.
    second_father_prob:
        Probability a non-root concept gets a second father (MeSH is a
        DAG, not a tree).
    polysemy_histogram:
        ``{k: count}`` — inject ``count`` term strings that each name ``k``
        distinct concepts, for k ≥ 2.  A key of 5 means "5 or more": the
        actual k is drawn from {5, 6, 7}.
    year_range:
        Inclusive (first, last) release years; concepts are assigned years
        uniformly, except ``recent_fraction`` forced into the final
        ``recent_years`` window so snapshot evaluations have material.
    recent_fraction:
        Fraction of concepts stamped into the recent window.
    recent_years:
        Width (in years) of the recent window at the end of ``year_range``.
    language:
        Tag recorded on the ontology (``"en"``, ``"fr"``, ``"es"``).
    """

    n_concepts: int = 200
    n_roots: int = 4
    mean_synonyms: float = 1.2
    second_father_prob: float = 0.15
    polysemy_histogram: dict[int, int] = field(default_factory=dict)
    year_range: tuple[int, int] = (1985, 2015)
    recent_fraction: float = 0.12
    recent_years: int = 6
    language: str = "en"

    def __post_init__(self) -> None:
        if self.n_concepts < 1:
            raise ValidationError(f"n_concepts must be >= 1, got {self.n_concepts}")
        if not 1 <= self.n_roots <= self.n_concepts:
            raise ValidationError(
                f"n_roots must be in [1, n_concepts], got {self.n_roots}"
            )
        if self.mean_synonyms < 0:
            raise ValidationError(
                f"mean_synonyms must be >= 0, got {self.mean_synonyms}"
            )
        if not 0.0 <= self.second_father_prob <= 1.0:
            raise ValidationError("second_father_prob must be in [0, 1]")
        for k, count in self.polysemy_histogram.items():
            if k < 2:
                raise ValidationError(f"polysemy keys must be >= 2, got {k}")
            if count < 0:
                raise ValidationError(f"negative count for k={k}")
        if self.year_range[0] > self.year_range[1]:
            raise ValidationError(f"invalid year_range {self.year_range}")
        if not 0.0 <= self.recent_fraction <= 1.0:
            raise ValidationError("recent_fraction must be in [0, 1]")


class OntologyGenerator:
    """Generate a random MeSH-like :class:`~repro.ontology.model.Ontology`.

    Parameters
    ----------
    spec:
        The :class:`GeneratorSpec` describing the target ontology.
    lexicon:
        Optional shared :class:`~repro.lexicon.BioLexicon`; pass the same
        instance to the corpus generator so word POS tags agree.
    seed:
        RNG seed for structure decisions (years, edges, polysemy targets).
    """

    def __init__(
        self,
        spec: GeneratorSpec,
        *,
        lexicon: BioLexicon | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.spec = spec
        self._rng = ensure_rng(seed)
        self.lexicon = lexicon if lexicon is not None else BioLexicon(seed=self._rng)

    def generate(self, name: str = "generated") -> Ontology:
        """Build and return the ontology (validated)."""
        spec = self.spec
        rng = self._rng
        onto = Ontology(name)

        years = self._sample_years()
        concept_ids = [f"C{idx:06d}" for idx in range(spec.n_concepts)]
        for idx, cid in enumerate(concept_ids):
            term_tokens = self.lexicon.new_term()
            concept = Concept(
                concept_id=cid,
                preferred_term=" ".join(term_tokens),
                year_added=int(years[idx]),
            )
            n_syn = int(rng.poisson(spec.mean_synonyms))
            for _ in range(n_syn):
                concept.synonyms.append(" ".join(self.lexicon.new_term()))
            if idx < spec.n_roots:
                onto.add_concept(concept)
            else:
                fathers = self._pick_fathers(concept_ids[:idx])
                onto.add_concept(concept, fathers=fathers)

        self._inject_polysemy(onto, concept_ids)
        onto.validate()
        return onto

    # -- internals ----------------------------------------------------------

    def _sample_years(self) -> np.ndarray:
        spec = self.spec
        first, last = spec.year_range
        rng = self._rng
        years = rng.integers(first, last + 1, size=spec.n_concepts)
        recent_lo = max(first, last - spec.recent_years + 1)
        n_recent = int(round(spec.recent_fraction * spec.n_concepts))
        if n_recent:
            recent_idx = rng.choice(spec.n_concepts, size=n_recent, replace=False)
            years[recent_idx] = rng.integers(recent_lo, last + 1, size=n_recent)
        return years

    def _pick_fathers(self, earlier: list[str]) -> list[str]:
        rng = self._rng
        # Preferential attachment flavour: later concepts tend to attach to
        # earlier (more general) ones, giving a broad-then-deep hierarchy.
        weights = np.arange(len(earlier), 0, -1, dtype=np.float64)
        weights /= weights.sum()
        first = earlier[int(rng.choice(len(earlier), p=weights))]
        fathers = [first]
        if len(earlier) > 1 and rng.random() < self.spec.second_father_prob:
            second = earlier[int(rng.choice(len(earlier), p=weights))]
            if second != first:
                fathers.append(second)
        return fathers

    def _inject_polysemy(self, onto: Ontology, concept_ids: list[str]) -> None:
        """Mint ambiguous term strings shared by k distinct concepts."""
        rng = self._rng
        for k, count in sorted(self.spec.polysemy_histogram.items()):
            for _ in range(count):
                actual_k = k if k < 5 else int(rng.choice([5, 6, 7], p=[0.7, 0.2, 0.1]))
                actual_k = min(actual_k, len(concept_ids))
                term = " ".join(self.lexicon.new_term())
                chosen = rng.choice(len(concept_ids), size=actual_k, replace=False)
                for concept_idx in chosen:
                    onto.add_synonym(concept_ids[int(concept_idx)], term)
