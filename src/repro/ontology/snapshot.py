"""Ontology release snapshots.

The paper evaluates Step IV on "60 MeSH terms that have been added between
2009 and 2015": terms new in recent releases, positioned against the
current ontology.  :func:`held_out_terms` selects such terms from a
generated ontology using the ``year_added`` stamps, and
:func:`snapshot_before` rebuilds the ontology as it looked before a cutoff
year (used by the full-workflow simulation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ontology.model import Concept, Ontology


@dataclass(frozen=True)
class HeldOutTerm:
    """An evaluation term: a concept's preferred term added in the window."""

    term: str
    concept_id: str
    year_added: int


def held_out_terms(
    ontology: Ontology, start_year: int, end_year: int
) -> list[HeldOutTerm]:
    """Preferred terms of concepts added in ``[start_year, end_year]``.

    Only concepts that still have a father or a son inside the ontology
    are returned — a term with no structural neighbours has no "correct
    position" to recover, matching the paper's protocol where every
    evaluation term has synonyms/fathers in MeSH 2015.
    """
    if start_year > end_year:
        raise ValueError(f"start_year {start_year} > end_year {end_year}")
    out = []
    for concept in ontology:
        year = concept.year_added
        if year is None or not start_year <= year <= end_year:
            continue
        cid = concept.concept_id
        if not ontology.fathers(cid) and not ontology.sons(cid):
            continue
        out.append(
            HeldOutTerm(
                term=concept.all_terms()[0],
                concept_id=cid,
                year_added=year,
            )
        )
    return sorted(out, key=lambda h: (h.year_added, h.term))


def snapshot_before(ontology: Ontology, cutoff_year: int) -> Ontology:
    """The ontology as of the release *before* ``cutoff_year``.

    Concepts with ``year_added >= cutoff_year`` are dropped; hierarchy
    edges among surviving concepts are kept; orphaned sons re-attach to
    their nearest surviving ancestor so the snapshot stays connected the
    way a real earlier release would be.
    """
    snap = Ontology(f"{ontology.name}@<{cutoff_year}")
    survivors = {
        c.concept_id
        for c in ontology
        if c.year_added is None or c.year_added < cutoff_year
    }

    def surviving_fathers(cid: str) -> set[str]:
        """Nearest surviving ancestors through dropped intermediate nodes."""
        out: set[str] = set()
        stack = list(ontology.fathers(cid))
        seen: set[str] = set()
        while stack:
            father = stack.pop()
            if father in seen:
                continue
            seen.add(father)
            if father in survivors:
                out.add(father)
            else:
                stack.extend(ontology.fathers(father))
        return out

    for concept in ontology:
        if concept.concept_id not in survivors:
            continue
        snap.add_concept(
            Concept(
                concept_id=concept.concept_id,
                preferred_term=concept.preferred_term,
                synonyms=list(concept.synonyms),
                year_added=concept.year_added,
                tree_numbers=list(concept.tree_numbers),
            )
        )
    for concept in ontology:
        cid = concept.concept_id
        if cid not in survivors:
            continue
        for father in surviving_fathers(cid):
            if father not in snap.fathers(cid):
                snap.add_edge(father, cid)
    snap.validate()
    return snap
