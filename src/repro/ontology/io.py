"""Ontology serialisation: JSON and a minimal OBO-flavoured text format.

JSON is the lossless round-trip format; the OBO flavour exists because
downstream biomedical tooling speaks it and it keeps the generated
ontologies inspectable with a pager.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

from repro.errors import LabelCollisionWarning, OntologyError
from repro.ontology.model import Concept, Ontology, normalize_term

_FORMAT_VERSION = 1


def dedupe_labels(
    concept_id: str, preferred_term: str, synonyms: list[str]
) -> list[str]:
    """Drop synonyms that normalise to an already-seen label of the concept.

    ``"Eye Diseases"`` and ``"eye  diseases"`` are one label to the model
    (:func:`~repro.ontology.model.normalize_term` folds case and spacing),
    so a file carrying both is redundant at best and a silent data-entry
    error at worst.  First spelling wins — the preferred term, then
    synonyms in file order — and each dropped spelling raises a
    :class:`~repro.errors.LabelCollisionWarning` naming the winner.
    """
    seen: dict[str, str] = {normalize_term(preferred_term): preferred_term}
    kept: list[str] = []
    for synonym in synonyms:
        norm = normalize_term(synonym)
        winner = seen.get(norm)
        if winner is None:
            seen[norm] = synonym
            kept.append(synonym)
        else:
            warnings.warn(
                f"concept {concept_id!r}: label {synonym!r} collides with "
                f"{winner!r} after normalisation; keeping {winner!r}",
                LabelCollisionWarning,
                stacklevel=2,
            )
    return kept


def ontology_to_json(ontology: Ontology) -> dict:
    """Serialise ``ontology`` to a JSON-compatible dict."""
    return {
        "format_version": _FORMAT_VERSION,
        "name": ontology.name,
        "concepts": [
            {
                "id": concept.concept_id,
                "preferred_term": concept.preferred_term,
                "synonyms": list(concept.synonyms),
                "year_added": concept.year_added,
                "tree_numbers": list(concept.tree_numbers),
                "fathers": ontology.fathers(concept.concept_id),
            }
            for concept in ontology
        ],
    }


def ontology_from_json(payload: dict) -> Ontology:
    """Rebuild an :class:`Ontology` from :func:`ontology_to_json` output."""
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise OntologyError(f"unsupported ontology format version {version!r}")
    onto = Ontology(payload.get("name", "ontology"))
    entries = payload.get("concepts", [])
    for entry in entries:
        onto.add_concept(
            Concept(
                concept_id=entry["id"],
                preferred_term=entry["preferred_term"],
                synonyms=dedupe_labels(
                    entry["id"],
                    entry["preferred_term"],
                    list(entry.get("synonyms", [])),
                ),
                year_added=entry.get("year_added"),
                tree_numbers=list(entry.get("tree_numbers", [])),
            )
        )
    for entry in entries:
        for father in entry.get("fathers", []):
            onto.add_edge(father, entry["id"])
    onto.validate()
    return onto


def write_ontology_json(ontology: Ontology, path: str | Path) -> None:
    """Write ``ontology`` as JSON to ``path``."""
    Path(path).write_text(
        json.dumps(ontology_to_json(ontology), indent=2, sort_keys=True)
    )


def read_ontology_json(path: str | Path) -> Ontology:
    """Read an ontology previously written by :func:`write_ontology_json`."""
    return ontology_from_json(json.loads(Path(path).read_text()))


def ontology_to_obo(ontology: Ontology) -> str:
    """Render ``ontology`` in a minimal OBO-flavoured text format."""
    lines = ["format-version: 1.2", f"ontology: {ontology.name}", ""]
    for concept in ontology:
        lines.append("[Term]")
        lines.append(f"id: {concept.concept_id}")
        lines.append(f"name: {concept.preferred_term}")
        for synonym in concept.synonyms:
            lines.append(f'synonym: "{synonym}" EXACT []')
        for father in ontology.fathers(concept.concept_id):
            lines.append(f"is_a: {father}")
        if concept.year_added is not None:
            lines.append(f"creation_date: {concept.year_added}")
        lines.append("")
    return "\n".join(lines)


def ontology_from_obo(text: str, name: str = "obo-import") -> Ontology:
    """Parse the OBO flavour written by :func:`ontology_to_obo`."""
    onto = Ontology(name)
    pending_edges: list[tuple[str, str]] = []
    current: dict | None = None

    def flush(entry: dict | None) -> None:
        if not entry or "id" not in entry:
            return
        preferred = entry.get("name", entry["id"])
        onto.add_concept(
            Concept(
                concept_id=entry["id"],
                preferred_term=preferred,
                synonyms=dedupe_labels(
                    entry["id"], preferred, entry.get("synonyms", [])
                ),
                year_added=entry.get("year_added"),
            )
        )
        for father in entry.get("fathers", []):
            pending_edges.append((father, entry["id"]))

    for raw_line in text.splitlines():
        line = raw_line.strip()
        if line == "[Term]":
            flush(current)
            current = {"synonyms": [], "fathers": []}
        elif current is not None and ": " in line:
            key, _, value = line.partition(": ")
            if key == "id":
                current["id"] = value
            elif key == "name":
                current["name"] = value
            elif key == "synonym":
                current["synonyms"].append(value.split('"')[1])
            elif key == "is_a":
                current["fathers"].append(value.split("!")[0].strip())
            elif key == "creation_date":
                current["year_added"] = int(value)
    flush(current)
    for father, son in pending_edges:
        onto.add_edge(father, son)
    onto.validate()
    return onto
