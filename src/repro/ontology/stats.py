"""Polysemy statistics over ontologies — the machinery behind Table 1.

The paper uses UMLS/MeSH polysemy counts to justify bounding the number of
senses of a new term to k ∈ {2..5}.  :func:`polysemy_histogram` measures
those counts on any :class:`~repro.ontology.model.Ontology`, and
:class:`PolysemyStatistics` aggregates several terminologies into the
paper's table layout.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ontology.model import Ontology
from repro.utils.tables import format_table

#: Bin labels of Table 1 (5 stands for "5+").
SENSE_BINS = (2, 3, 4, 5)


def polysemy_histogram(ontology: Ontology) -> dict[int, int]:
    """Count polysemic terms per sense bin: {2: n2, 3: n3, 4: n4, 5: n5plus}."""
    histogram = {k: 0 for k in SENSE_BINS}
    for term in ontology.polysemic_terms():
        k = ontology.sense_count(term)
        histogram[min(k, 5)] += 1
    return histogram


@dataclass
class PolysemyStatistics:
    """Aggregated polysemy statistics over several terminologies.

    Attributes
    ----------
    histograms:
        ``(source, language) → {k: count}`` as measured by
        :func:`polysemy_histogram`.
    total_terms:
        ``(source, language) → number of distinct terms``.
    """

    histograms: dict[tuple[str, str], dict[int, int]]
    total_terms: dict[tuple[str, str], int]

    @classmethod
    def measure(
        cls, ontologies: dict[tuple[str, str], Ontology]
    ) -> "PolysemyStatistics":
        """Measure statistics off generated/loaded ontologies."""
        histograms = {}
        totals = {}
        for key, onto in ontologies.items():
            histograms[key] = polysemy_histogram(onto)
            totals[key] = len(onto.terms())
        return cls(histograms=histograms, total_terms=totals)

    def n_polysemic(self, key: tuple[str, str]) -> int:
        """Total polysemic terms for one terminology."""
        return sum(self.histograms[key].values())

    def polysemy_ratio(self, key: tuple[str, str]) -> float:
        """Fraction of distinct terms that are polysemic."""
        total = self.total_terms[key]
        return self.n_polysemic(key) / total if total else 0.0

    def dominant_bin_share(self, key: tuple[str, str]) -> float:
        """Share of polysemic terms in the k=2 bin (the paper's '2 to 5' point)."""
        n = self.n_polysemic(key)
        return self.histograms[key].get(2, 0) / n if n else 0.0

    def to_table(self, *, title: str | None = None) -> str:
        """Render in the layout of the paper's Table 1."""
        sources = sorted({source for source, _lang in self.histograms})
        languages = ("en", "fr", "es")
        headers = ["k"] + [
            f"{source.upper()} {lang.upper()}"
            for source in sources
            for lang in languages
            if (source, lang) in self.histograms
        ]
        rows = []
        for k in SENSE_BINS:
            label = f"{k}" if k < 5 else "5+"
            row: list[object] = [label]
            for source in sources:
                for lang in languages:
                    if (source, lang) in self.histograms:
                        row.append(self.histograms[(source, lang)].get(k, 0))
            rows.append(row)
        return format_table(headers, rows, title=title)
