"""Synthetic UMLS metathesaurus calibrated to the paper's Table 1.

Table 1 of the paper counts polysemic terms (terms naming 2, 3, 4, 5+
concepts) in UMLS and MeSH for English, French, and Spanish.  The real
UMLS is licence-gated and ~9.9 M terms; this module generates a
metathesaurus whose polysemy *distribution* matches the published
marginals at a configurable scale, so the downstream statistics pipeline
(:mod:`repro.ontology.stats`) and the k ∈ {2..5} design decision can be
exercised end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.lexicon import BioLexicon
from repro.ontology.generator import GeneratorSpec, OntologyGenerator
from repro.ontology.model import Ontology
from repro.utils.rng import ensure_rng, spawn_rng

# Table 1 of the paper, verbatim: polysemic-term counts per sense count k.
# Keys: (source, language) → {k: count}; 5 stands for "5+".
PAPER_TABLE1: dict[tuple[str, str], dict[int, int]] = {
    ("umls", "en"): {2: 54_257, 3: 7_770, 4: 1_842, 5: 1_677},
    ("umls", "fr"): {2: 1_292, 3: 36, 4: 1, 5: 1},
    ("umls", "es"): {2: 10_906, 3: 414, 4: 56, 5: 18},
    ("mesh", "en"): {2: 178, 3: 1, 4: 0, 5: 0},
    ("mesh", "fr"): {2: 11, 3: 0, 4: 0, 5: 0},
    ("mesh", "es"): {2: 0, 3: 0, 4: 0, 5: 0},
}

# Total distinct terms per source/language.  The paper gives the English
# UMLS total (~9 919 000); the others are order-of-magnitude figures from
# the 2015AB UMLS release notes and the MeSH/DeCS translations, recorded
# here only to preserve the "1 polysemic term per ~200 terms" ratio.
PAPER_TOTAL_TERMS: dict[tuple[str, str], int] = {
    ("umls", "en"): 9_919_000,
    ("umls", "fr"): 180_000,
    ("umls", "es"): 1_200_000,
    ("mesh", "en"): 87_000,
    ("mesh", "fr"): 86_000,
    ("mesh", "es"): 77_000,
}


@dataclass(frozen=True)
class PolysemyProfile:
    """Polysemy calibration for one (source, language) terminology.

    Parameters
    ----------
    source / language:
        e.g. ``"umls"`` / ``"en"``.
    total_terms:
        Target number of distinct term strings.
    histogram:
        ``{k: count}`` of polysemic terms (k = 5 means "5 or more").
    """

    source: str
    language: str
    total_terms: int
    histogram: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.total_terms < 1:
            raise ValidationError(f"total_terms must be >= 1, got {self.total_terms}")
        n_polysemic = sum(self.histogram.values())
        if n_polysemic > self.total_terms:
            raise ValidationError(
                f"histogram holds {n_polysemic} polysemic terms but "
                f"total_terms is only {self.total_terms}"
            )

    def n_polysemic(self) -> int:
        """Total number of polysemic term strings."""
        return sum(self.histogram.values())

    def polysemy_ratio(self) -> float:
        """Fraction of terms that are polysemic (≈ 1/200 for UMLS-EN)."""
        return self.n_polysemic() / self.total_terms

    def scaled(self, scale: float) -> "PolysemyProfile":
        """A down-scaled profile preserving the distribution shape.

        Counts are divided by ``scale`` and rounded; very small counts are
        kept at ≥ 1 whenever the original count was non-zero, so the shape
        of Table 1 survives aggressive scaling.
        """
        if scale <= 0:
            raise ValidationError(f"scale must be > 0, got {scale}")
        histogram = {
            k: max(1, round(count / scale)) if count else 0
            for k, count in self.histogram.items()
        }
        total = max(sum(histogram.values()) + 1, round(self.total_terms / scale))
        return PolysemyProfile(self.source, self.language, total, histogram)


def paper_profiles(scale: float = 1.0) -> dict[tuple[str, str], PolysemyProfile]:
    """The six Table 1 profiles, optionally down-scaled by ``scale``."""
    profiles = {}
    for key, histogram in PAPER_TABLE1.items():
        source, language = key
        profile = PolysemyProfile(
            source=source,
            language=language,
            total_terms=PAPER_TOTAL_TERMS[key],
            histogram=dict(histogram),
        )
        profiles[key] = profile.scaled(scale) if scale != 1.0 else profile
    return profiles


class SyntheticMetathesaurus:
    """Generate per-language terminologies matching given polysemy profiles.

    Parameters
    ----------
    profiles:
        Profiles to realise (default: all six of Table 1 at ``scale``).
    scale:
        Down-scaling factor applied when ``profiles`` is None;
        the default 1000 keeps the biggest terminology under ~10k terms.
    seed:
        RNG seed.

    Notes
    -----
    Each profile becomes a full :class:`~repro.ontology.model.Ontology`
    (concepts + hierarchy + synonym index), not just a histogram — the
    polysemy statistics of Table 1 are then *measured* off the generated
    structure by :mod:`repro.ontology.stats`, exercising the same code
    path a real UMLS load would.
    """

    def __init__(
        self,
        profiles: dict[tuple[str, str], PolysemyProfile] | None = None,
        *,
        scale: float = 1000.0,
        seed: int | np.random.Generator | None = None,
        mean_synonyms: float = 1.0,
    ) -> None:
        self.profiles = profiles if profiles is not None else paper_profiles(scale)
        self.mean_synonyms = mean_synonyms
        self._rng = ensure_rng(seed)

    def generate(self) -> dict[tuple[str, str], Ontology]:
        """Build one ontology per profile, keyed by (source, language)."""
        out: dict[tuple[str, str], Ontology] = {}
        children = spawn_rng(self._rng, n=len(self.profiles))
        for child, (key, profile) in zip(
            children, sorted(self.profiles.items()), strict=True
        ):
            out[key] = self._generate_one(profile, child)
        return out

    def _generate_one(
        self, profile: PolysemyProfile, rng: np.random.Generator
    ) -> Ontology:
        # Terms per concept ≈ 1 preferred + mean_synonyms synonyms; solve
        # for the concept count that lands near the target total terms.
        terms_per_concept = 1.0 + self.mean_synonyms
        n_needed = max(profile.n_polysemic() * 7 + 10, 20)
        n_concepts = max(int(profile.total_terms / terms_per_concept), n_needed)
        spec = GeneratorSpec(
            n_concepts=n_concepts,
            n_roots=max(2, n_concepts // 500),
            mean_synonyms=self.mean_synonyms,
            polysemy_histogram=dict(profile.histogram),
            language=profile.language,
        )
        generator = OntologyGenerator(
            spec, lexicon=BioLexicon(seed=rng), seed=rng
        )
        return generator.generate(f"{profile.source}-{profile.language}")
