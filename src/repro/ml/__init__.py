"""Machine-learning substrate for Step II (polysemy detection).

The paper reports "several machine learning algorithms" reaching a 98 %
F-measure on polysemy detection.  scikit-learn is not available offline,
so this subpackage implements six standard classifier families with a
uniform fit/predict API plus the model-selection and metric plumbing the
benchmark sweep needs.
"""

from repro.ml.base import BaseClassifier, clone
from repro.ml.forest import RandomForestClassifier
from repro.ml.importance import (
    group_permutation_importance,
    permutation_importance,
    rank_features,
)
from repro.ml.knn import KNeighborsClassifier
from repro.ml.logistic import LogisticRegression
from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    precision_recall_f1,
    precision_score,
    recall_score,
)
from repro.ml.model_selection import (
    cross_validate,
    stratified_kfold_indices,
    train_test_split,
)
from repro.ml.naive_bayes import GaussianNB, MultinomialNB
from repro.ml.preprocessing import MinMaxScaler, StandardScaler
from repro.ml.svm import LinearSVC
from repro.ml.tree import DecisionTreeClassifier

__all__ = [
    "BaseClassifier",
    "DecisionTreeClassifier",
    "GaussianNB",
    "KNeighborsClassifier",
    "LinearSVC",
    "LogisticRegression",
    "MinMaxScaler",
    "MultinomialNB",
    "RandomForestClassifier",
    "StandardScaler",
    "accuracy_score",
    "clone",
    "confusion_matrix",
    "cross_validate",
    "f1_score",
    "group_permutation_importance",
    "permutation_importance",
    "precision_recall_f1",
    "precision_score",
    "rank_features",
    "recall_score",
    "stratified_kfold_indices",
    "train_test_split",
]

#: The classifier families swept by the polysemy-detection benchmark.
DEFAULT_CLASSIFIERS = (
    "gaussian_nb",
    "multinomial_nb",
    "logistic",
    "tree",
    "forest",
    "knn",
    "svm",
)


def make_classifier(name: str, *, seed: int | None = 0) -> BaseClassifier:
    """Instantiate a classifier by registry name (see DEFAULT_CLASSIFIERS)."""
    if name == "gaussian_nb":
        return GaussianNB()
    if name == "multinomial_nb":
        return MultinomialNB()
    if name == "logistic":
        return LogisticRegression()
    if name == "tree":
        return DecisionTreeClassifier(seed=seed)
    if name == "forest":
        return RandomForestClassifier(seed=seed)
    if name == "knn":
        return KNeighborsClassifier()
    if name == "svm":
        return LinearSVC(seed=seed)
    raise ValueError(
        f"unknown classifier {name!r}; options: {', '.join(DEFAULT_CLASSIFIERS)}"
    )
