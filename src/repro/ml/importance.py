"""Permutation feature importance.

Model-agnostic importance: the drop in a score when one feature column is
shuffled.  Used to ask the paper's implicit question — *which of the 23
polysemy features carry the signal?* — without relying on any specific
classifier's internals.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.errors import ValidationError
from repro.ml.base import BaseClassifier
from repro.ml.metrics import accuracy_score
from repro.utils.rng import ensure_rng


def permutation_importance(
    model: BaseClassifier,
    X,
    y,
    *,
    scorer: Callable[[np.ndarray, np.ndarray], float] = accuracy_score,
    n_repeats: int = 5,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Mean score drop per feature over ``n_repeats`` shuffles.

    Parameters
    ----------
    model:
        A *fitted* classifier.
    X, y:
        Evaluation data (ideally held out from training).
    scorer:
        ``scorer(y_true, y_pred) -> float``; higher = better.
    n_repeats:
        Shuffles per feature (averaged).
    seed:
        RNG seed.

    Returns
    -------
    ndarray of shape (n_features,) — positive values mean the feature
    mattered; ~0 means the model ignores it.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    if X.ndim != 2 or X.shape[0] != y.shape[0]:
        raise ValidationError("X must be 2-D and aligned with y")
    if n_repeats < 1:
        raise ValidationError(f"n_repeats must be >= 1, got {n_repeats}")
    rng = ensure_rng(seed)

    baseline = scorer(y, model.predict(X))
    importances = np.zeros(X.shape[1])
    for feature in range(X.shape[1]):
        drops = []
        for __ in range(n_repeats):
            shuffled = X.copy()
            shuffled[:, feature] = rng.permutation(shuffled[:, feature])
            drops.append(baseline - scorer(y, model.predict(shuffled)))
        importances[feature] = float(np.mean(drops))
    return importances


def group_permutation_importance(
    model: BaseClassifier,
    X,
    y,
    groups: dict[str, list[int]],
    *,
    scorer: Callable[[np.ndarray, np.ndarray], float] = accuracy_score,
    n_repeats: int = 5,
    seed: int | np.random.Generator | None = 0,
) -> dict[str, float]:
    """Score drop when a whole feature *group* is shuffled together.

    Correlated features mask each other under per-column permutation (the
    model reads the signal from an unshuffled sibling).  Shuffling a
    semantic group jointly — e.g. all cluster-separation features of the
    polysemy detector — measures the group's real contribution.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    if X.ndim != 2 or X.shape[0] != y.shape[0]:
        raise ValidationError("X must be 2-D and aligned with y")
    if n_repeats < 1:
        raise ValidationError(f"n_repeats must be >= 1, got {n_repeats}")
    rng = ensure_rng(seed)

    baseline = scorer(y, model.predict(X))
    out: dict[str, float] = {}
    for name, columns in groups.items():
        if not columns:
            raise ValidationError(f"group {name!r} has no columns")
        drops = []
        for __ in range(n_repeats):
            shuffled = X.copy()
            order = rng.permutation(X.shape[0])
            for column in columns:
                shuffled[:, column] = shuffled[order, column]
            drops.append(baseline - scorer(y, model.predict(shuffled)))
        out[name] = float(np.mean(drops))
    return out


def rank_features(
    importances: np.ndarray, names: tuple[str, ...]
) -> list[tuple[str, float]]:
    """(name, importance) pairs sorted most-important first."""
    if len(importances) != len(names):
        raise ValidationError(
            f"{len(importances)} importances for {len(names)} names"
        )
    order = np.argsort(-np.asarray(importances))
    return [(names[int(i)], float(importances[int(i)])) for i in order]
