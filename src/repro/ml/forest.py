"""Random forest: bagged CART trees with per-split feature sampling."""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.ml.base import BaseClassifier
from repro.ml.tree import DecisionTreeClassifier
from repro.utils.rng import ensure_rng, spawn_rng


class RandomForestClassifier(BaseClassifier):
    """Bootstrap-aggregated decision trees (probability averaging).

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth / min_samples_split / criterion:
        Passed to each tree.
    max_features:
        Features sampled per split (default ``"sqrt"``).
    seed:
        RNG seed for bootstraps and per-tree feature sampling.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        criterion: str = "gini",
        max_features: int | str | None = "sqrt",
        seed: int | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValidationError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.criterion = criterion
        self.max_features = max_features
        self.seed = seed
        self.classes_ = None
        self.estimators_: list[DecisionTreeClassifier] = []

    def fit(self, X, y) -> "RandomForestClassifier":
        """Fit ``n_estimators`` trees on bootstrap resamples of (X, y)."""
        X, y = self._check_X_y(X, y)
        self._encode_labels(y)  # sets classes_
        rng = ensure_rng(self.seed)
        tree_rngs = spawn_rng(rng, self.n_estimators)
        n = X.shape[0]
        self.estimators_ = []
        for tree_rng in tree_rngs:
            idx = tree_rng.integers(0, n, size=n)
            while np.unique(y[idx]).shape[0] < 2:
                idx = tree_rng.integers(0, n, size=n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                criterion=self.criterion,
                max_features=self.max_features,
                seed=int(tree_rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[idx], y[idx])
            self.estimators_.append(tree)
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Average of tree probabilities, aligned to forest ``classes_``."""
        self._require_fitted()
        X = self._check_X(X)
        out = np.zeros((X.shape[0], self.classes_.shape[0]))
        class_pos = {label: i for i, label in enumerate(self.classes_.tolist())}
        for tree in self.estimators_:
            proba = tree.predict_proba(X)
            for j, label in enumerate(tree.classes_.tolist()):
                out[:, class_pos[label]] += proba[:, j]
        return out / len(self.estimators_)
