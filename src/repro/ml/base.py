"""The estimator API shared by every classifier in :mod:`repro.ml`.

Follows the fit/predict convention: ``fit(X, y)`` returns ``self``;
``predict(X)`` returns labels; ``predict_proba(X)`` (where supported)
returns an (n, n_classes) row-stochastic matrix whose columns align with
``classes_``.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.errors import NotFittedError, ValidationError


class BaseClassifier:
    """Common plumbing: input checking, label encoding, clone support."""

    #: Attribute set by fit; used to detect unfitted use.
    classes_: np.ndarray | None = None

    # -- shared validation -------------------------------------------------

    @staticmethod
    def _check_X(X) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValidationError(f"X must be 2-D, got shape {X.shape}")
        if X.shape[0] == 0:
            raise ValidationError("X must contain at least one sample")
        if not np.all(np.isfinite(X)):
            raise ValidationError("X contains NaN or infinite values")
        return X

    def _check_X_y(self, X, y) -> tuple[np.ndarray, np.ndarray]:
        X = self._check_X(X)
        y = np.asarray(y)
        if y.ndim != 1:
            raise ValidationError(f"y must be 1-D, got shape {y.shape}")
        if y.shape[0] != X.shape[0]:
            raise ValidationError(
                f"X has {X.shape[0]} samples but y has {y.shape[0]}"
            )
        return X, y

    def _encode_labels(self, y: np.ndarray) -> np.ndarray:
        """Store ``classes_`` and return y as indices into it."""
        classes, encoded = np.unique(y, return_inverse=True)
        if classes.shape[0] < 2:
            raise ValidationError("need at least two classes to fit a classifier")
        self.classes_ = classes
        return encoded

    def _require_fitted(self) -> None:
        if self.classes_ is None:
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before prediction"
            )

    # -- API ------------------------------------------------------------------

    def fit(self, X, y) -> "BaseClassifier":
        """Train on (X, y); must be overridden."""
        raise NotImplementedError

    def predict(self, X) -> np.ndarray:
        """Predict labels; default routes through :meth:`predict_proba`."""
        self._require_fitted()
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def predict_proba(self, X) -> np.ndarray:
        """Class-probability estimates; override where supported."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement predict_proba"
        )

    def get_params(self) -> dict:
        """Constructor parameters (every public non-fitted attribute)."""
        return {
            key: value
            for key, value in vars(self).items()
            if not key.endswith("_") and not key.startswith("_")
        }


def clone(estimator: BaseClassifier) -> BaseClassifier:
    """A fresh unfitted copy of ``estimator`` with the same parameters."""
    fresh = type(estimator)(**copy.deepcopy(estimator.get_params()))
    return fresh
