"""k-nearest-neighbours classifier (Euclidean or cosine)."""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.ml.base import BaseClassifier


class KNeighborsClassifier(BaseClassifier):
    """Majority vote among the k nearest training samples.

    Parameters
    ----------
    n_neighbors:
        Vote pool size (clipped to the training-set size at fit time).
    metric:
        ``"euclidean"`` or ``"cosine"``.
    """

    def __init__(self, n_neighbors: int = 5, metric: str = "euclidean") -> None:
        if n_neighbors < 1:
            raise ValidationError(f"n_neighbors must be >= 1, got {n_neighbors}")
        if metric not in ("euclidean", "cosine"):
            raise ValidationError(f"metric must be euclidean|cosine, got {metric!r}")
        self.n_neighbors = n_neighbors
        self.metric = metric
        self.classes_ = None
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def fit(self, X, y) -> "KNeighborsClassifier":
        """Memorise the training set."""
        X, y = self._check_X_y(X, y)
        encoded = self._encode_labels(y)
        self._X = X
        self._y = encoded
        return self

    def _distances(self, X: np.ndarray) -> np.ndarray:
        if self.metric == "euclidean":
            # ||a-b||^2 = ||a||^2 + ||b||^2 - 2 a.b  (clipped for stability)
            aa = (X**2).sum(axis=1)[:, None]
            bb = (self._X**2).sum(axis=1)[None, :]
            d2 = np.clip(aa + bb - 2.0 * (X @ self._X.T), 0.0, None)
            return np.sqrt(d2)
        norms_q = np.linalg.norm(X, axis=1, keepdims=True)
        norms_t = np.linalg.norm(self._X, axis=1, keepdims=True).T
        norms_q[norms_q == 0] = 1.0
        norms_t[norms_t == 0] = 1.0
        sims = (X @ self._X.T) / (norms_q * norms_t)
        return 1.0 - sims

    def predict_proba(self, X) -> np.ndarray:
        """Neighbour vote shares per class."""
        self._require_fitted()
        X = self._check_X(X)
        k = min(self.n_neighbors, self._X.shape[0])
        distances = self._distances(X)
        nearest = np.argsort(distances, axis=1, kind="stable")[:, :k]
        out = np.zeros((X.shape[0], self.classes_.shape[0]))
        for i in range(X.shape[0]):
            votes = np.bincount(
                self._y[nearest[i]], minlength=self.classes_.shape[0]
            )
            out[i] = votes / votes.sum()
        return out
