"""Naive Bayes classifiers: Gaussian (continuous) and multinomial (counts)."""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.ml.base import BaseClassifier


class GaussianNB(BaseClassifier):
    """Gaussian naive Bayes with per-class diagonal variances.

    Parameters
    ----------
    var_smoothing:
        Fraction of the largest feature variance added to every variance
        for numerical stability.
    """

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        self.var_smoothing = var_smoothing
        self.classes_ = None
        self.theta_: np.ndarray | None = None
        self.var_: np.ndarray | None = None
        self.class_log_prior_: np.ndarray | None = None

    def fit(self, X, y) -> "GaussianNB":
        """Estimate per-class feature means, variances, and priors."""
        X, y = self._check_X_y(X, y)
        encoded = self._encode_labels(y)
        n_classes = self.classes_.shape[0]
        n_features = X.shape[1]
        self.theta_ = np.zeros((n_classes, n_features))
        self.var_ = np.zeros((n_classes, n_features))
        counts = np.zeros(n_classes)
        for i in range(n_classes):
            rows = X[encoded == i]
            counts[i] = rows.shape[0]
            self.theta_[i] = rows.mean(axis=0)
            self.var_[i] = rows.var(axis=0)
        epsilon = self.var_smoothing * max(float(X.var(axis=0).max()), 1e-12)
        self.var_ += epsilon
        self.class_log_prior_ = np.log(counts / counts.sum())
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        jll = np.zeros((X.shape[0], self.classes_.shape[0]))
        for i in range(self.classes_.shape[0]):
            log_det = np.sum(np.log(2.0 * np.pi * self.var_[i]))
            quad = np.sum((X - self.theta_[i]) ** 2 / self.var_[i], axis=1)
            jll[:, i] = self.class_log_prior_[i] - 0.5 * (log_det + quad)
        return jll

    def predict_proba(self, X) -> np.ndarray:
        """Posterior class probabilities."""
        self._require_fitted()
        X = self._check_X(X)
        jll = self._joint_log_likelihood(X)
        jll -= jll.max(axis=1, keepdims=True)
        proba = np.exp(jll)
        return proba / proba.sum(axis=1, keepdims=True)


class MultinomialNB(BaseClassifier):
    """Multinomial naive Bayes for non-negative count-like features.

    Parameters
    ----------
    alpha:
        Laplace/Lidstone smoothing constant.
    """

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha <= 0:
            raise ValidationError(f"alpha must be > 0, got {alpha}")
        self.alpha = alpha
        self.classes_ = None
        self.feature_log_prob_: np.ndarray | None = None
        self.class_log_prior_: np.ndarray | None = None

    def fit(self, X, y) -> "MultinomialNB":
        """Estimate smoothed per-class feature log-probabilities."""
        X, y = self._check_X_y(X, y)
        if np.any(X < 0):
            raise ValidationError("MultinomialNB requires non-negative features")
        encoded = self._encode_labels(y)
        n_classes = self.classes_.shape[0]
        counts = np.zeros(n_classes)
        totals = np.zeros((n_classes, X.shape[1]))
        for i in range(n_classes):
            rows = X[encoded == i]
            counts[i] = rows.shape[0]
            totals[i] = rows.sum(axis=0)
        smoothed = totals + self.alpha
        self.feature_log_prob_ = np.log(
            smoothed / smoothed.sum(axis=1, keepdims=True)
        )
        self.class_log_prior_ = np.log(counts / counts.sum())
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Posterior class probabilities."""
        self._require_fitted()
        X = self._check_X(X)
        if np.any(X < 0):
            raise ValidationError("MultinomialNB requires non-negative features")
        jll = X @ self.feature_log_prob_.T + self.class_log_prior_
        jll -= jll.max(axis=1, keepdims=True)
        proba = np.exp(jll)
        return proba / proba.sum(axis=1, keepdims=True)
