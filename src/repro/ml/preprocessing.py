"""Feature scaling (the polysemy features mix very different ranges)."""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError, ValidationError


class StandardScaler:
    """Per-feature standardisation to zero mean / unit variance.

    Constant features scale to zero (their variance floor is 1), never NaN.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X) -> "StandardScaler":
        """Learn per-feature mean and standard deviation."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValidationError(f"X must be 2-D, got shape {X.shape}")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, X) -> np.ndarray:
        """Standardise ``X`` with the fitted statistics."""
        if self.mean_ is None:
            raise NotFittedError("StandardScaler must be fitted before transform")
        X = np.asarray(X, dtype=np.float64)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        """Fit on ``X`` and return its standardised copy."""
        return self.fit(X).transform(X)


class MinMaxScaler:
    """Per-feature rescaling to [0, 1] (constant features map to 0)."""

    def __init__(self) -> None:
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, X) -> "MinMaxScaler":
        """Learn per-feature min and range."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValidationError(f"X must be 2-D, got shape {X.shape}")
        self.min_ = X.min(axis=0)
        span = X.max(axis=0) - self.min_
        span[span == 0.0] = 1.0
        self.range_ = span
        return self

    def transform(self, X) -> np.ndarray:
        """Rescale ``X`` with the fitted min/range."""
        if self.min_ is None:
            raise NotFittedError("MinMaxScaler must be fitted before transform")
        X = np.asarray(X, dtype=np.float64)
        return (X - self.min_) / self.range_

    def fit_transform(self, X) -> np.ndarray:
        """Fit on ``X`` and return its rescaled copy."""
        return self.fit(X).transform(X)
