"""Train/test splitting and stratified cross-validation."""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.errors import ValidationError
from repro.ml.base import BaseClassifier, clone
from repro.ml.metrics import accuracy_score
from repro.utils.rng import ensure_rng


def train_test_split(
    X,
    y,
    *,
    test_size: float = 0.25,
    stratify: bool = True,
    seed: int | np.random.Generator | None = None,
):
    """Split (X, y) into train and test partitions.

    Returns ``X_train, X_test, y_train, y_test``.  With ``stratify`` the
    per-class proportions are preserved (each class contributes at least
    one sample to each side when it has two or more).
    """
    X = np.asarray(X)
    y = np.asarray(y)
    if X.shape[0] != y.shape[0]:
        raise ValidationError("X and y must have the same number of samples")
    if not 0.0 < test_size < 1.0:
        raise ValidationError(f"test_size must be in (0, 1), got {test_size}")
    rng = ensure_rng(seed)
    n = X.shape[0]

    if stratify:
        test_idx: list[int] = []
        for label in np.unique(y):
            members = np.where(y == label)[0]
            members = members[rng.permutation(members.size)]
            n_test = int(round(test_size * members.size))
            if members.size >= 2:
                n_test = min(max(n_test, 1), members.size - 1)
            test_idx.extend(members[:n_test].tolist())
        test_mask = np.zeros(n, dtype=bool)
        test_mask[test_idx] = True
    else:
        order = rng.permutation(n)
        n_test = max(1, int(round(test_size * n)))
        test_mask = np.zeros(n, dtype=bool)
        test_mask[order[:n_test]] = True

    return X[~test_mask], X[test_mask], y[~test_mask], y[test_mask]


def stratified_kfold_indices(
    y,
    n_splits: int = 10,
    *,
    seed: int | np.random.Generator | None = None,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Stratified k-fold (train_idx, test_idx) pairs.

    Every class's samples are dealt round-robin over the folds after a
    seeded shuffle, so each fold's class mix approximates the global one.
    """
    y = np.asarray(y)
    if n_splits < 2:
        raise ValidationError(f"n_splits must be >= 2, got {n_splits}")
    class_counts = {label: int(np.sum(y == label)) for label in np.unique(y)}
    smallest = min(class_counts.values())
    if smallest < n_splits:
        raise ValidationError(
            f"n_splits={n_splits} exceeds smallest class size {smallest}"
        )
    rng = ensure_rng(seed)
    fold_of = np.empty(y.shape[0], dtype=np.int64)
    for label in np.unique(y):
        members = np.where(y == label)[0]
        members = members[rng.permutation(members.size)]
        for position, idx in enumerate(members):
            fold_of[idx] = position % n_splits
    folds = []
    for fold in range(n_splits):
        test_idx = np.where(fold_of == fold)[0]
        train_idx = np.where(fold_of != fold)[0]
        folds.append((train_idx, test_idx))
    return folds


def cross_validate(
    estimator: BaseClassifier,
    X,
    y,
    *,
    n_splits: int = 10,
    scorer: Callable[[np.ndarray, np.ndarray], float] = accuracy_score,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Per-fold scores of ``estimator`` under stratified k-fold CV.

    A fresh clone is fitted per fold; ``scorer(y_true, y_pred)`` defaults
    to accuracy (pass an F1 lambda for the paper's headline metric).
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    scores = []
    for train_idx, test_idx in stratified_kfold_indices(y, n_splits, seed=seed):
        model = clone(estimator)
        model.fit(X[train_idx], y[train_idx])
        predictions = model.predict(X[test_idx])
        scores.append(scorer(y[test_idx], predictions))
    return np.asarray(scores, dtype=np.float64)
