"""CART decision-tree classifier (gini / entropy splits)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.ml.base import BaseClassifier
from repro.utils.rng import ensure_rng


@dataclass
class _Node:
    """A tree node; leaves carry a class distribution."""

    counts: np.ndarray
    feature: int = -1
    threshold: float = 0.0
    left: "._Node | None" = None
    right: "._Node | None" = None

    def is_leaf(self) -> bool:
        """True when the node has no split (carries a class distribution)."""
        return self.left is None


def _impurity(counts: np.ndarray, criterion: str) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    if criterion == "gini":
        return float(1.0 - (p**2).sum())
    p = p[p > 0]
    return float(-(p * np.log2(p)).sum())


class DecisionTreeClassifier(BaseClassifier):
    """CART with threshold splits on continuous features.

    Parameters
    ----------
    max_depth:
        Depth cap (None = grow until pure or below ``min_samples_split``).
    min_samples_split:
        Minimum samples a node needs to be considered for splitting.
    criterion:
        ``"gini"`` or ``"entropy"``.
    max_features:
        Features sampled per split: None (all), an int, or ``"sqrt"``
        (used by the random forest).
    seed:
        RNG for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        criterion: str = "gini",
        max_features: int | str | None = None,
        seed: int | None = None,
    ) -> None:
        if criterion not in ("gini", "entropy"):
            raise ValidationError(f"criterion must be gini|entropy, got {criterion!r}")
        if max_depth is not None and max_depth < 1:
            raise ValidationError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_split < 2:
            raise ValidationError(
                f"min_samples_split must be >= 2, got {min_samples_split}"
            )
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.criterion = criterion
        self.max_features = max_features
        self.seed = seed
        self.classes_ = None
        self._root: _Node | None = None
        self._rng = None

    # -- fitting ----------------------------------------------------------

    def _n_split_features(self, d: int) -> int:
        if self.max_features is None:
            return d
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(d)))
        if isinstance(self.max_features, int) and self.max_features >= 1:
            return min(self.max_features, d)
        raise ValidationError(f"bad max_features {self.max_features!r}")

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, features: np.ndarray
    ) -> tuple[int, float, float] | None:
        """(feature, threshold, impurity decrease) of the best split, if any."""
        n = X.shape[0]
        k = self.classes_.shape[0]
        parent_counts = np.bincount(y, minlength=k)
        parent_imp = _impurity(parent_counts, self.criterion)
        best: tuple[int, float, float] | None = None
        for feature in features:
            order = np.argsort(X[:, feature], kind="stable")
            values = X[order, feature]
            labels = y[order]
            left_counts = np.zeros(k)
            right_counts = parent_counts.astype(np.float64).copy()
            for i in range(n - 1):
                left_counts[labels[i]] += 1
                right_counts[labels[i]] -= 1
                if values[i] == values[i + 1]:
                    continue
                n_left = i + 1
                n_right = n - n_left
                gain = parent_imp - (
                    n_left / n * _impurity(left_counts, self.criterion)
                    + n_right / n * _impurity(right_counts, self.criterion)
                )
                if best is None or gain > best[2]:
                    threshold = (values[i] + values[i + 1]) / 2.0
                    best = (int(feature), float(threshold), float(gain))
        if best is None or best[2] <= 1e-12:
            return None
        return best

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        k = self.classes_.shape[0]
        counts = np.bincount(y, minlength=k)
        node = _Node(counts=counts.astype(np.float64))
        if (
            np.count_nonzero(counts) <= 1
            or X.shape[0] < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
        ):
            return node
        d = X.shape[1]
        n_feat = self._n_split_features(d)
        features = (
            np.arange(d)
            if n_feat == d
            else self._rng.choice(d, size=n_feat, replace=False)
        )
        split = self._best_split(X, y, features)
        if split is None:
            return node
        feature, threshold, __ = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], depth + 1)
        return node

    def fit(self, X, y) -> "DecisionTreeClassifier":
        """Grow the tree on (X, y)."""
        X, y = self._check_X_y(X, y)
        encoded = self._encode_labels(y)
        self._rng = ensure_rng(self.seed)
        self._root = self._grow(X, encoded, depth=0)
        return self

    # -- prediction ----------------------------------------------------------

    def _leaf_for(self, row: np.ndarray) -> _Node:
        node = self._root
        while not node.is_leaf():
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node

    def predict_proba(self, X) -> np.ndarray:
        """Leaf class distributions."""
        self._require_fitted()
        X = self._check_X(X)
        out = np.zeros((X.shape[0], self.classes_.shape[0]))
        for i, row in enumerate(X):
            counts = self._leaf_for(row).counts
            out[i] = counts / counts.sum()
        return out

    def depth(self) -> int:
        """Actual depth of the grown tree."""
        self._require_fitted()

        def walk(node: _Node) -> int:
            if node.is_leaf():
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)
