"""Linear SVM trained with the Pegasos stochastic sub-gradient method.

Binary hinge-loss SVM; multiclass is handled one-vs-rest.  Pegasos
(Shalev-Shwartz et al. 2011) needs no QP solver, which keeps the
dependency footprint at numpy only.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.ml.base import BaseClassifier
from repro.utils.rng import ensure_rng


def _pegasos_binary(
    X: np.ndarray,
    y_signed: np.ndarray,
    lam: float,
    n_epochs: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, float]:
    """Train one hinge-loss separator; returns (weights, bias)."""
    n, d = X.shape
    w = np.zeros(d)
    b = 0.0
    t = 0
    for __ in range(n_epochs):
        order = rng.permutation(n)
        for i in order:
            t += 1
            eta = 1.0 / (lam * t)
            margin = y_signed[i] * (X[i] @ w + b)
            w *= 1.0 - eta * lam
            if margin < 1.0:
                w += eta * y_signed[i] * X[i]
                b += eta * y_signed[i]
    return w, b


class LinearSVC(BaseClassifier):
    """Linear SVM (Pegasos), one-vs-rest for multiclass.

    Parameters
    ----------
    lam:
        Regularisation strength (Pegasos λ); smaller = larger margins
        violations allowed.
    n_epochs:
        Passes over the data per binary problem.
    seed:
        RNG seed for the sampling order.
    """

    def __init__(
        self, lam: float = 1e-3, n_epochs: int = 20, seed: int | None = None
    ) -> None:
        if lam <= 0:
            raise ValidationError(f"lam must be > 0, got {lam}")
        if n_epochs < 1:
            raise ValidationError(f"n_epochs must be >= 1, got {n_epochs}")
        self.lam = lam
        self.n_epochs = n_epochs
        self.seed = seed
        self.classes_ = None
        self.coef_: np.ndarray | None = None
        self.intercept_: np.ndarray | None = None

    def fit(self, X, y) -> "LinearSVC":
        """Train one separator per class (one-vs-rest)."""
        X, y = self._check_X_y(X, y)
        encoded = self._encode_labels(y)
        rng = ensure_rng(self.seed)
        k = self.classes_.shape[0]
        n_problems = 1 if k == 2 else k
        self.coef_ = np.zeros((n_problems, X.shape[1]))
        self.intercept_ = np.zeros(n_problems)
        for problem in range(n_problems):
            positive = problem if k > 2 else 1
            y_signed = np.where(encoded == positive, 1.0, -1.0)
            w, b = _pegasos_binary(X, y_signed, self.lam, self.n_epochs, rng)
            self.coef_[problem] = w
            self.intercept_[problem] = b
        return self

    def decision_function(self, X) -> np.ndarray:
        """Signed margins: (n,) for binary, (n, k) one-vs-rest otherwise."""
        self._require_fitted()
        X = self._check_X(X)
        scores = X @ self.coef_.T + self.intercept_
        if self.classes_.shape[0] == 2:
            return scores.ravel()
        return scores

    def predict(self, X) -> np.ndarray:
        """Class labels by maximum margin."""
        scores = self.decision_function(X)
        if self.classes_.shape[0] == 2:
            return self.classes_[(scores > 0).astype(int)]
        return self.classes_[np.argmax(scores, axis=1)]
