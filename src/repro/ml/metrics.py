"""Classification metrics: accuracy, precision/recall/F1, confusion matrix.

The paper reports polysemy detection quality as an F-measure; these are
the standard binary/multiclass definitions with explicit averaging.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError


def _check_pair(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValidationError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.ndim != 1:
        raise ValidationError("labels must be 1-D")
    if y_true.shape[0] == 0:
        raise ValidationError("labels must be non-empty")
    return y_true, y_pred


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exact label matches."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float((y_true == y_pred).mean())


def confusion_matrix(y_true, y_pred, *, labels=None) -> np.ndarray:
    """Counts ``C[i, j]`` = samples of true class i predicted as class j."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    labels = (
        np.unique(np.concatenate([y_true, y_pred]))
        if labels is None
        else np.asarray(labels)
    )
    index = {label: i for i, label in enumerate(labels.tolist())}
    matrix = np.zeros((len(labels), len(labels)), dtype=np.int64)
    for t, p in zip(y_true, y_pred, strict=True):
        matrix[index[t], index[p]] += 1
    return matrix


def precision_recall_f1(
    y_true, y_pred, *, positive=None, average: str = "binary"
) -> tuple[float, float, float]:
    """Precision, recall, and F1.

    Parameters
    ----------
    positive:
        The positive label for ``average="binary"``; defaults to the
        largest label value (so 1 for 0/1 and True for booleans).
    average:
        ``"binary"`` (one positive class) or ``"macro"`` (unweighted mean
        of per-class scores).
    """
    y_true, y_pred = _check_pair(y_true, y_pred)
    if average not in ("binary", "macro"):
        raise ValidationError(f"average must be binary|macro, got {average!r}")

    def prf_for(label) -> tuple[float, float, float]:
        tp = float(np.sum((y_true == label) & (y_pred == label)))
        fp = float(np.sum((y_true != label) & (y_pred == label)))
        fn = float(np.sum((y_true == label) & (y_pred != label)))
        precision = tp / (tp + fp) if tp + fp > 0 else 0.0
        recall = tp / (tp + fn) if tp + fn > 0 else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall > 0
            else 0.0
        )
        return precision, recall, f1

    if average == "binary":
        if positive is None:
            positive = np.unique(y_true).max()
        return prf_for(positive)
    labels = np.unique(y_true)
    scores = np.array([prf_for(label) for label in labels])
    return tuple(float(v) for v in scores.mean(axis=0))


def precision_score(y_true, y_pred, *, positive=None) -> float:
    """Binary precision (see :func:`precision_recall_f1`)."""
    return precision_recall_f1(y_true, y_pred, positive=positive)[0]


def recall_score(y_true, y_pred, *, positive=None) -> float:
    """Binary recall (see :func:`precision_recall_f1`)."""
    return precision_recall_f1(y_true, y_pred, positive=positive)[1]


def f1_score(y_true, y_pred, *, positive=None, average: str = "binary") -> float:
    """F1 (binary by default; ``average="macro"`` for multiclass)."""
    return precision_recall_f1(y_true, y_pred, positive=positive, average=average)[2]
