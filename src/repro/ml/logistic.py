"""Multinomial logistic regression trained by batch gradient descent."""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.ml.base import BaseClassifier


def _softmax(z: np.ndarray) -> np.ndarray:
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


class LogisticRegression(BaseClassifier):
    """Multinomial logistic regression with L2 regularisation.

    Parameters
    ----------
    learning_rate:
        Gradient-descent step size.
    l2:
        L2 penalty strength on the weights (bias unpenalised).
    max_iter:
        Maximum full-batch iterations.
    tol:
        Stop when the max absolute weight update falls below this.
    """

    def __init__(
        self,
        learning_rate: float = 0.5,
        l2: float = 1e-3,
        max_iter: int = 500,
        tol: float = 1e-6,
    ) -> None:
        if learning_rate <= 0:
            raise ValidationError(f"learning_rate must be > 0, got {learning_rate}")
        if l2 < 0:
            raise ValidationError(f"l2 must be >= 0, got {l2}")
        if max_iter < 1:
            raise ValidationError(f"max_iter must be >= 1, got {max_iter}")
        self.learning_rate = learning_rate
        self.l2 = l2
        self.max_iter = max_iter
        self.tol = tol
        self.classes_ = None
        self.coef_: np.ndarray | None = None
        self.intercept_: np.ndarray | None = None
        self.n_iter_: int | None = None

    def fit(self, X, y) -> "LogisticRegression":
        """Minimise the L2-regularised multinomial cross-entropy."""
        X, y = self._check_X_y(X, y)
        encoded = self._encode_labels(y)
        n, d = X.shape
        k = self.classes_.shape[0]
        onehot = np.zeros((n, k))
        onehot[np.arange(n), encoded] = 1.0

        weights = np.zeros((d, k))
        bias = np.zeros(k)
        for iteration in range(1, self.max_iter + 1):
            proba = _softmax(X @ weights + bias)
            error = proba - onehot
            grad_w = X.T @ error / n + self.l2 * weights
            grad_b = error.mean(axis=0)
            weights -= self.learning_rate * grad_w
            bias -= self.learning_rate * grad_b
            if float(np.abs(grad_w).max()) * self.learning_rate < self.tol:
                break
        self.coef_ = weights
        self.intercept_ = bias
        self.n_iter_ = iteration
        return self

    def decision_function(self, X) -> np.ndarray:
        """Raw class scores (pre-softmax)."""
        self._require_fitted()
        X = self._check_X(X)
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        """Softmax class probabilities."""
        return _softmax(self.decision_function(X))
