"""Corpus serialisation: JSON-lines, one document per line."""

from __future__ import annotations

import json
from pathlib import Path

from repro.corpus.corpus import Corpus
from repro.corpus.document import Document
from repro.errors import CorpusError


def write_corpus_jsonl(corpus: Corpus, path: str | Path) -> None:
    """Write ``corpus`` to ``path``, one JSON document per line."""
    with open(path, "w") as handle:
        for doc in corpus:
            handle.write(
                json.dumps(
                    {
                        "doc_id": doc.doc_id,
                        "sentences": doc.sentences,
                        "concept_ids": doc.concept_ids,
                        "language": doc.language,
                    }
                )
            )
            handle.write("\n")


def read_corpus_jsonl(path: str | Path) -> Corpus:
    """Read a corpus previously written by :func:`write_corpus_jsonl`."""
    corpus = Corpus()
    with open(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise CorpusError(f"bad JSON on line {line_no}: {exc}") from exc
            corpus.add(
                Document(
                    doc_id=payload["doc_id"],
                    sentences=[list(s) for s in payload["sentences"]],
                    concept_ids=list(payload.get("concept_ids", [])),
                    language=payload.get("language", "en"),
                )
            )
    return corpus
