"""The Document data model."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.text.sentences import split_sentences
from repro.text.tokenizer import tokenize_lower


@dataclass
class Document:
    """A tokenised document (e.g. one PubMed abstract).

    Parameters
    ----------
    doc_id:
        Stable identifier (e.g. ``"PMID:12345"`` or a generated id).
    sentences:
        Token lists, one per sentence.  Tokens are stored lower-cased.
    concept_ids:
        The ontology concepts this document is "about" (generation ground
        truth; empty for real text).
    language:
        ISO 639-1 code.
    """

    doc_id: str
    sentences: list[list[str]]
    concept_ids: list[str] = field(default_factory=list)
    language: str = "en"

    @classmethod
    def from_text(
        cls,
        doc_id: str,
        text: str,
        *,
        concept_ids: list[str] | None = None,
        language: str = "en",
    ) -> "Document":
        """Build a document by sentence-splitting and tokenising raw text."""
        sentences = [tokenize_lower(s) for s in split_sentences(text)]
        return cls(
            doc_id=doc_id,
            sentences=[s for s in sentences if s],
            concept_ids=concept_ids or [],
            language=language,
        )

    def tokens(self) -> list[str]:
        """All tokens in order (sentence boundaries flattened)."""
        return [token for sentence in self.sentences for token in sentence]

    def n_tokens(self) -> int:
        """Total token count."""
        return sum(len(s) for s in self.sentences)

    def text(self) -> str:
        """Reconstructed plain text (one period-terminated line per sentence)."""
        return " ".join(" ".join(sentence) + "." for sentence in self.sentences)
