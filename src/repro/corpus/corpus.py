"""The Corpus container and term-context retrieval.

Steps II–IV all start from "the context of a term in the corpus": token
windows around the term's occurrences.  :meth:`Corpus.contexts_for_term`
is the single implementation of that retrieval, so polysemy features,
sense induction, and semantic linkage agree on what a context is.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from repro.corpus.document import Document
from repro.errors import CorpusError


@dataclass(frozen=True)
class TermContext:
    """One occurrence context of a term.

    Attributes
    ----------
    doc_id:
        Document the occurrence was found in.
    tokens:
        The window tokens with the term occurrence itself removed (its
        presence in every context carries no disambiguation signal).
    position:
        Token offset of the occurrence within the flattened document.
    """

    doc_id: str
    tokens: tuple[str, ...]
    position: int


class Corpus:
    """An ordered collection of :class:`Document` objects.

    >>> corpus = Corpus([Document("d1", [["wound", "heals"]])])
    >>> corpus.n_documents()
    1
    """

    def __init__(self, documents: Iterable[Document] = ()) -> None:
        self._documents: list[Document] = list(documents)
        ids = [d.doc_id for d in self._documents]
        if len(ids) != len(set(ids)):
            raise CorpusError("duplicate document ids in corpus")

    # -- container basics ----------------------------------------------------

    def add(self, document: Document) -> None:
        """Append ``document`` (ids must stay unique)."""
        if any(d.doc_id == document.doc_id for d in self._documents):
            raise CorpusError(f"duplicate document id {document.doc_id!r}")
        self._documents.append(document)

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents)

    def __getitem__(self, index: int) -> Document:
        return self._documents[index]

    def document(self, doc_id: str) -> Document:
        """The document with ``doc_id`` (raises CorpusError if absent)."""
        for doc in self._documents:
            if doc.doc_id == doc_id:
                return doc
        raise CorpusError(f"unknown document id {doc_id!r}")

    def n_documents(self) -> int:
        """Number of documents."""
        return len(self._documents)

    def n_tokens(self) -> int:
        """Total token count over all documents."""
        return sum(doc.n_tokens() for doc in self._documents)

    def token_documents(self) -> list[list[str]]:
        """Flat token list per document (the vectoriser input shape)."""
        return [doc.tokens() for doc in self._documents]

    def sentence_documents(self) -> list[list[str]]:
        """All sentences of the corpus as independent token lists."""
        return [s for doc in self._documents for s in doc.sentences]

    # -- term occurrence retrieval ------------------------------------------

    def contexts_for_term(
        self,
        term: str | Sequence[str],
        *,
        window: int = 10,
    ) -> list[TermContext]:
        """Token windows around each occurrence of ``term``.

        Parameters
        ----------
        term:
            The term as a string (split on spaces) or a token sequence.
        window:
            Number of tokens kept on each side of the occurrence.
        """
        if isinstance(term, str):
            needle = tuple(term.lower().split())
        else:
            needle = tuple(t.lower() for t in term)
        if not needle:
            raise CorpusError("term must contain at least one token")
        if window < 1:
            raise CorpusError(f"window must be >= 1, got {window}")

        span = len(needle)
        contexts: list[TermContext] = []
        for doc in self._documents:
            tokens = doc.tokens()
            n = len(tokens)
            i = 0
            while i <= n - span:
                if tuple(tokens[i : i + span]) == needle:
                    left = tokens[max(0, i - window) : i]
                    right = tokens[i + span : i + span + window]
                    contexts.append(
                        TermContext(
                            doc_id=doc.doc_id,
                            tokens=tuple(left + right),
                            position=i,
                        )
                    )
                    i += span
                else:
                    i += 1
        return contexts

    def term_frequency(self, term: str | Sequence[str]) -> int:
        """Number of occurrences of ``term`` in the corpus."""
        return len(self.contexts_for_term(term, window=1))

    def document_frequency(self, term: str | Sequence[str]) -> int:
        """Number of documents containing ``term`` at least once."""
        contexts = self.contexts_for_term(term, window=1)
        return len({c.doc_id for c in contexts})
