"""The Corpus container and term-context retrieval.

Steps II–IV all start from "the context of a term in the corpus": token
windows around the term's occurrences.  :meth:`Corpus.contexts_for_term`
is the single implementation of that retrieval, so polysemy features,
sense induction, and semantic linkage agree on what a context is.

Retrieval is served by a positional inverted index
(:class:`repro.corpus.index.CorpusIndex`) built lazily on first use and
cached, so repeated term lookups cost postings traversal instead of full
document scans.  :meth:`Corpus.add` patches the cached index in place
(O(new tokens)) instead of discarding it, so a growing document stream
never pays a full rebuild; pass ``n_shards`` to :meth:`Corpus.index` to
partition the build across a
:class:`~repro.corpus.index.ShardedCorpusIndex`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.corpus.document import Document
from repro.errors import CorpusError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.corpus.index import CorpusIndex, ShardedCorpusIndex
    from repro.corpus.index_store import IndexStore


@dataclass(frozen=True)
class TermContext:
    """One occurrence context of a term.

    Attributes
    ----------
    doc_id:
        Document the occurrence was found in.
    tokens:
        The window tokens with the term occurrence itself removed (its
        presence in every context carries no disambiguation signal).
    position:
        Token offset of the occurrence within the flattened document.
    """

    doc_id: str
    tokens: tuple[str, ...]
    position: int


class Corpus:
    """An ordered collection of :class:`Document` objects.

    >>> corpus = Corpus([Document("d1", [["wound", "heals"]])])
    >>> corpus.n_documents()
    1
    """

    def __init__(self, documents: Iterable[Document] = ()) -> None:
        self._documents: list[Document] = list(documents)
        self._by_id: dict[str, Document] = {
            d.doc_id: d for d in self._documents
        }
        if len(self._by_id) != len(self._documents):
            raise CorpusError("duplicate document ids in corpus")
        self._index: "CorpusIndex | ShardedCorpusIndex | None" = None
        self._index_store: "IndexStore | None" = None
        self._index_shards = 1

    # -- container basics ----------------------------------------------------

    def add(self, document: Document) -> None:
        """Append ``document`` (ids must stay unique).

        A cached index is patched in place
        (:meth:`~repro.corpus.index.CorpusIndex.add_documents`) rather
        than discarded, so adding a document costs O(its tokens), not a
        full index rebuild.  A read-only cached index (an adopted
        mmap-backed one — see :meth:`adopt_index`) is dropped instead,
        to be rebuilt lazily on the next :meth:`index` call — and when
        the dropped index came out of an
        :class:`~repro.corpus.index_store.IndexStore`, that rebuild is
        routed back through the store so the grown corpus's generation
        is persisted, not rebuilt in RAM on every restart.
        """
        if document.doc_id in self._by_id:
            raise CorpusError(f"duplicate document id {document.doc_id!r}")
        self._documents.append(document)
        self._by_id[document.doc_id] = document
        if self._index is not None:
            try:
                self._index.add_documents([document])
            except CorpusError:
                # Read-only (mmap-backed) indexes cannot be patched;
                # correctness over reuse: forget it and rebuild lazily
                # (through the remembered store when there is one).
                self._index = None

    def adopt_index(
        self,
        index: "CorpusIndex | ShardedCorpusIndex",
        *,
        store: "IndexStore | None" = None,
    ) -> None:
        """Cache a pre-built ``index`` (e.g. an
        :class:`~repro.corpus.index_store.MmapCorpusIndex` reopened
        from an :class:`~repro.corpus.index_store.IndexStore`) as this
        corpus's index.

        The index must describe exactly these documents: the document
        count and ids are checked (cheap), mismatches raise
        :class:`~repro.errors.CorpusError`.

        ``store`` names the :class:`IndexStore` the index came from;
        when omitted it is recovered from a mmap-backed index's own
        directory.  A remembered store routes the rebuild after a
        post-adoption :meth:`add` back through
        :meth:`~repro.corpus.index_store.IndexStore.load_or_build`, so
        the grown corpus's index generation is persisted instead of
        being rebuilt in RAM on every process start.
        """
        if index.n_documents() != len(self._documents):
            raise CorpusError(
                f"adopted index covers {index.n_documents()} documents, "
                f"corpus has {len(self._documents)}"
            )
        lengths = index.doc_lengths()
        for doc in self._documents:
            if doc.doc_id not in lengths:
                raise CorpusError(
                    f"adopted index is missing document {doc.doc_id!r}"
                )
        if store is None:
            from repro.corpus.index_store import store_for_index

            store = store_for_index(index)
        self._index = index
        self._index_store = store
        self._index_shards = index.n_shards

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents)

    def __getitem__(self, index: int) -> Document:
        return self._documents[index]

    def document(self, doc_id: str) -> Document:
        """The document with ``doc_id`` (raises CorpusError if absent)."""
        try:
            return self._by_id[doc_id]
        except KeyError:
            raise CorpusError(f"unknown document id {doc_id!r}") from None

    def n_documents(self) -> int:
        """Number of documents."""
        return len(self._documents)

    def n_tokens(self) -> int:
        """Total token count over all documents."""
        return sum(doc.n_tokens() for doc in self._documents)

    def token_documents(self) -> list[list[str]]:
        """Flat token list per document (the vectoriser input shape)."""
        return [doc.tokens() for doc in self._documents]

    def sentence_documents(self) -> list[list[str]]:
        """All sentences of the corpus as independent token lists."""
        return [s for doc in self._documents for s in doc.sentences]

    # -- term occurrence retrieval ------------------------------------------

    def index(
        self, *, n_shards: int | None = None, n_workers: int = 1
    ) -> "CorpusIndex | ShardedCorpusIndex":
        """The corpus's positional index, built lazily and cached.

        :meth:`add` extends the cached index in place; mutating a
        :class:`Document` in place is not detected.

        Parameters
        ----------
        n_shards:
            ``None`` (default) reuses whatever index is cached (building
            a monolithic :class:`~repro.corpus.index.CorpusIndex` on
            first use).  An explicit count requests a
            :class:`~repro.corpus.index.ShardedCorpusIndex` with that
            many partitions (1 = monolithic), rebuilding only when the
            cached index's shard count differs.
        n_workers:
            Threads fanning out the shard builds (only used when a
            sharded index is actually built).
        """
        if n_shards is not None and n_shards < 1:
            raise CorpusError(f"n_shards must be >= 1, got {n_shards}")
        if self._index is not None and (
            n_shards is None or self._index.n_shards == n_shards
        ):
            return self._index
        if self._index_store is not None and (
            n_shards is None or n_shards == self._index_shards
        ):
            # The previous index was adopted from an IndexStore: rebuild
            # through it so the grown corpus's generation is persisted
            # (and this process gets the mmap handle back).
            self._index = self._index_store.load_or_build(
                self._documents,
                n_shards=self._index_shards,
                n_workers=n_workers,
            )
            return self._index
        if n_shards is None:
            n_shards = 1
        if n_shards == 1:
            from repro.corpus.index import CorpusIndex

            self._index = CorpusIndex(self)
        else:
            from repro.corpus.index import ShardedCorpusIndex

            self._index = ShardedCorpusIndex(
                self, n_shards=n_shards, n_workers=n_workers
            )
        return self._index

    def contexts_for_term(
        self,
        term: str | Sequence[str],
        *,
        window: int = 10,
    ) -> list[TermContext]:
        """Token windows around each occurrence of ``term``.

        Parameters
        ----------
        term:
            The term as a string (split on spaces) or a token sequence.
        window:
            Number of tokens kept on each side of the occurrence.
        """
        return self.index().contexts_for_term(term, window=window)

    def term_frequency(self, term: str | Sequence[str]) -> int:
        """Number of occurrences of ``term`` in the corpus."""
        return self.index().term_frequency(term)

    def document_frequency(self, term: str | Sequence[str]) -> int:
        """Number of documents containing ``term`` at least once."""
        return self.index().document_frequency(term)
