"""Hierarchy-correlated concept topics driving text generation.

Every synthetic document is sampled from a **topic**: a weighted vocabulary
over signature (concept-specific) words and a shared Zipfian background.
Topics of ontologically related concepts share signature words — a son
inherits a fraction of its father's signature — so that the cosine
geometry the paper's Steps III/IV rely on ("semantically close terms have
similar contexts") holds in the generated corpus by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.lexicon import BioLexicon
from repro.ontology.model import Ontology
from repro.utils.rng import ensure_rng
from repro.utils.zipf import zipf_weights


@dataclass(frozen=True)
class Topic:
    """A unigram language model: signature words + shared background.

    Attributes
    ----------
    name:
        Identifier (typically a concept id or ``"term::sense0"``).
    signature:
        Concept-specific content words, most characteristic first.
    signature_weights:
        Normalised sampling weights aligned with ``signature``.
    """

    name: str
    signature: tuple[str, ...]
    signature_weights: np.ndarray

    def sample_signature(self, rng: np.random.Generator, size: int) -> list[str]:
        """Draw ``size`` signature words (with replacement)."""
        idx = rng.choice(len(self.signature), size=size, p=self.signature_weights)
        return [self.signature[int(i)] for i in idx]


def make_topic(name: str, words: list[str]) -> Topic:
    """Build a topic whose word weights decay Zipf-style with rank."""
    if not words:
        raise ValidationError(f"topic {name!r} needs at least one word")
    return Topic(
        name=name,
        signature=tuple(words),
        signature_weights=zipf_weights(len(words), exponent=0.8),
    )


class ConceptTopicModel:
    """One topic per ontology concept, correlated along hierarchy edges.

    Parameters
    ----------
    ontology:
        The ontology to cover.
    lexicon:
        Word source (shared with the ontology generator so POS is known).
    signature_size:
        Words per concept signature.
    inherit_fraction:
        Fraction of a son's signature copied from a random father
        (the knob controlling how similar related concepts' contexts are).
    seed:
        RNG seed.

    Notes
    -----
    The signature of every concept always contains the content words of
    the concept's own terms (e.g. "corneal", "injury"), so a term's name
    is echoed by its context distribution the way titles echo abstracts
    in real PubMed.
    """

    def __init__(
        self,
        ontology: Ontology,
        lexicon: BioLexicon,
        *,
        signature_size: int = 24,
        inherit_fraction: float = 0.4,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if signature_size < 4:
            raise ValidationError(
                f"signature_size must be >= 4, got {signature_size}"
            )
        if not 0.0 <= inherit_fraction < 1.0:
            raise ValidationError("inherit_fraction must be in [0, 1)")
        self.ontology = ontology
        self.lexicon = lexicon
        self.signature_size = signature_size
        self.inherit_fraction = inherit_fraction
        self._rng = ensure_rng(seed)
        self._topics: dict[str, Topic] = {}
        self._build()

    def _term_words(self, concept_id: str) -> list[str]:
        words: list[str] = []
        for term in self.ontology.concept(concept_id).all_terms():
            for word in term.split():
                if len(word) > 2 and word not in words:
                    words.append(word)
        return words

    def _build(self) -> None:
        rng = self._rng
        # Topological order: fathers before sons, so inheritance can copy.
        order: list[str] = []
        seen: set[str] = set()
        frontier = self.ontology.roots()
        while frontier:
            next_frontier: list[str] = []
            for cid in frontier:
                if cid in seen:
                    continue
                if any(f not in seen for f in self.ontology.fathers(cid)):
                    next_frontier.append(cid)
                    continue
                seen.add(cid)
                order.append(cid)
                next_frontier.extend(self.ontology.sons(cid))
            frontier = next_frontier

        for cid in order:
            words = self._term_words(cid)
            fathers = [f for f in self.ontology.fathers(cid) if f in self._topics]
            n_inherit = int(round(self.inherit_fraction * self.signature_size))
            if fathers and n_inherit:
                father = fathers[int(rng.integers(0, len(fathers)))]
                father_sig = list(self._topics[father].signature)
                take = min(n_inherit, len(father_sig))
                picked = rng.choice(len(father_sig), size=take, replace=False)
                for idx in picked:
                    word = father_sig[int(idx)]
                    if word not in words:
                        words.append(word)
            while len(words) < self.signature_size:
                word = self.lexicon.new_noun() if rng.random() < 0.7 else (
                    self.lexicon.new_adjective()
                )
                if word not in words:
                    words.append(word)
            self._topics[cid] = make_topic(cid, words[: self.signature_size])

    def topic(self, concept_id: str) -> Topic:
        """The topic of ``concept_id``."""
        try:
            return self._topics[concept_id]
        except KeyError:
            raise ValidationError(
                f"no topic for concept {concept_id!r}"
            ) from None

    def topics(self) -> dict[str, Topic]:
        """All topics keyed by concept id (a shallow copy)."""
        return dict(self._topics)

    def signature_overlap(self, a: str, b: str) -> float:
        """Jaccard overlap of two concepts' signatures (a generation probe)."""
        sa = set(self.topic(a).signature)
        sb = set(self.topic(b).signature)
        union = sa | sb
        return len(sa & sb) / len(union) if union else 0.0


class BackgroundVocabulary:
    """The shared Zipfian background every document samples from.

    Parameters
    ----------
    lexicon:
        Source of the core/filler inventories.
    size:
        Number of distinct background words (padded with minted nouns).
    seed:
        RNG seed for padding.
    """

    def __init__(
        self,
        lexicon: BioLexicon,
        *,
        size: int = 400,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        rng = ensure_rng(seed)
        words = list(
            dict.fromkeys(
                list(lexicon.filler_nouns())
                + list(lexicon.core_verbs())
                + list(lexicon.core_adverbs())
            )
        )
        while len(words) < size:
            words.append(lexicon.new_noun() if rng.random() < 0.6 else lexicon.new_verb())
        self.words = tuple(words[:size])
        self._weights = zipf_weights(len(self.words), exponent=1.1)

    def sample(self, rng: np.random.Generator, size: int) -> list[str]:
        """Draw ``size`` background words (with replacement)."""
        idx = rng.choice(len(self.words), size=size, p=self._weights)
        return [self.words[int(i)] for i in idx]
