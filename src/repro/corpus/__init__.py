"""Corpus substrate: documents, synthetic PubMed, and the MSH-WSD benchmark.

The paper's pipeline consumes PubMed abstracts (333 M tokens for Step IV)
and evaluates Step III on the MSH WSD data set.  Neither is available
offline, so this subpackage generates topic-model-driven equivalents whose
statistical structure (Zipfian vocabulary, hierarchy-correlated concept
topics, sense-separated contexts) exercises the same code paths — see
DESIGN.md §1.
"""

from repro.corpus.document import Document
from repro.corpus.corpus import Corpus, TermContext
from repro.corpus.index import CorpusIndex, ShardedCorpusIndex
from repro.corpus.io import read_corpus_jsonl, write_corpus_jsonl
from repro.corpus.mshwsd import MshWsdEntity, MshWsdSimulator
from repro.corpus.pubmed import PubMedSimulator
from repro.corpus.topics import ConceptTopicModel, Topic

__all__ = [
    "ConceptTopicModel",
    "Corpus",
    "CorpusIndex",
    "Document",
    "TermContext",
    "MshWsdEntity",
    "MshWsdSimulator",
    "ShardedCorpusIndex",
    "PubMedSimulator",
    "Topic",
    "read_corpus_jsonl",
    "write_corpus_jsonl",
]
