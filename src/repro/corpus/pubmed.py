"""Synthetic PubMed: topic-model-driven abstract generation.

The paper retrieves the PubMed contexts of candidate terms (333 M tokens
for Step IV).  :class:`PubMedSimulator` generates abstracts with the three
statistical properties that retrieval exploits:

1. an abstract about concept *c* samples content words from *c*'s topic,
   so two terms of the same concept have near-identical context
   distributions (what makes synonyms rank first in Table 3);
2. topics are correlated along hierarchy edges (fathers/sons rank next);
3. sentences mention the concept's terms — and, with configurable
   probability, terms of *related* and *random* concepts — producing the
   term co-occurrence graph Step IV restricts to the MeSH neighbourhood.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.corpus import Corpus
from repro.corpus.document import Document
from repro.corpus.topics import BackgroundVocabulary, ConceptTopicModel
from repro.errors import ValidationError
from repro.lexicon import BioLexicon
from repro.ontology.model import Ontology
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class PubMedSpec:
    """Generation parameters of the synthetic PubMed corpus.

    Parameters
    ----------
    sentences_per_doc:
        Inclusive (lo, hi) sentence-count range per abstract.
    tokens_per_sentence:
        Inclusive (lo, hi) content-token range per sentence.
    background_fraction:
        Share of tokens drawn from the shared background vocabulary (the
        rest come from the concept topic).  Higher = noisier contexts.
    mention_prob:
        Probability that a sentence mentions a term of the abstract's
        concept.
    related_mention_prob:
        Probability that a sentence also mentions a term of a father/son
        concept (creates the MeSH-neighbourhood co-occurrence edges).
    noise_mention_prob:
        Probability of mentioning a random unrelated concept's term
        (creates distractor edges).
    """

    sentences_per_doc: tuple[int, int] = (4, 8)
    tokens_per_sentence: tuple[int, int] = (9, 16)
    background_fraction: float = 0.45
    mention_prob: float = 0.7
    related_mention_prob: float = 0.25
    noise_mention_prob: float = 0.08

    def __post_init__(self) -> None:
        for name in ("sentences_per_doc", "tokens_per_sentence"):
            lo, hi = getattr(self, name)
            if not 1 <= lo <= hi:
                raise ValidationError(f"{name} must satisfy 1 <= lo <= hi")
        for name in (
            "background_fraction",
            "mention_prob",
            "related_mention_prob",
            "noise_mention_prob",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValidationError(f"{name} must be in [0, 1], got {value}")


class PubMedSimulator:
    """Generate a PubMed-like corpus for an ontology.

    Parameters
    ----------
    ontology:
        Source of concepts, terms, and the hierarchy.
    lexicon:
        The shared :class:`~repro.lexicon.BioLexicon` (pass the instance
        used to generate the ontology so the POS lexicon covers all words).
    spec:
        Generation parameters.
    topic_model:
        Reuse an existing :class:`ConceptTopicModel`; built on demand
        otherwise.
    seed:
        RNG seed.
    """

    def __init__(
        self,
        ontology: Ontology,
        lexicon: BioLexicon,
        *,
        spec: PubMedSpec | None = None,
        topic_model: ConceptTopicModel | None = None,
        background: BackgroundVocabulary | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.ontology = ontology
        self.lexicon = lexicon
        self.spec = spec if spec is not None else PubMedSpec()
        self._rng = ensure_rng(seed)
        self.topic_model = (
            topic_model
            if topic_model is not None
            else ConceptTopicModel(ontology, lexicon, seed=self._rng)
        )
        self.background = (
            background
            if background is not None
            else BackgroundVocabulary(lexicon, seed=self._rng)
        )
        self._concept_ids = ontology.concept_ids()

    # -- term helpers ----------------------------------------------------------

    def _random_term_tokens(self, concept_id: str) -> list[str]:
        terms = self.ontology.concept(concept_id).all_terms()
        term = terms[int(self._rng.integers(0, len(terms)))]
        return term.split()

    def _related_concepts(self, concept_id: str) -> list[str]:
        return self.ontology.fathers(concept_id) + self.ontology.sons(concept_id)

    # -- generation -----------------------------------------------------------

    def _sentence(self, concept_id: str) -> list[str]:
        spec = self.spec
        rng = self._rng
        lo, hi = spec.tokens_per_sentence
        n_tokens = int(rng.integers(lo, hi + 1))
        n_bg = int(round(spec.background_fraction * n_tokens))
        topic = self.topic_model.topic(concept_id)
        tokens = self.background.sample(rng, n_bg)
        tokens += topic.sample_signature(rng, n_tokens - n_bg)
        order = rng.permutation(len(tokens))
        tokens = [tokens[int(i)] for i in order]

        insertions: list[list[str]] = []
        if rng.random() < spec.mention_prob:
            insertions.append(self._random_term_tokens(concept_id))
        related = self._related_concepts(concept_id)
        if related and rng.random() < spec.related_mention_prob:
            other = related[int(rng.integers(0, len(related)))]
            insertions.append(self._random_term_tokens(other))
        if rng.random() < spec.noise_mention_prob:
            noise = self._concept_ids[int(rng.integers(0, len(self._concept_ids)))]
            insertions.append(self._random_term_tokens(noise))
        for mention in insertions:
            at = int(rng.integers(0, len(tokens) + 1))
            tokens[at:at] = mention
        return tokens

    def generate_abstract(self, concept_id: str, doc_id: str) -> Document:
        """One abstract about ``concept_id``."""
        lo, hi = self.spec.sentences_per_doc
        n_sentences = int(self._rng.integers(lo, hi + 1))
        sentences = [self._sentence(concept_id) for _ in range(n_sentences)]
        self.ontology.concept(concept_id)  # validate the id early
        return Document(
            doc_id=doc_id,
            sentences=sentences,
            concept_ids=[concept_id],
            language="en",
        )

    def generate(
        self,
        n_documents: int,
        *,
        concept_ids: list[str] | None = None,
        doc_prefix: str = "pm",
    ) -> Corpus:
        """A corpus of ``n_documents`` abstracts over ``concept_ids``.

        Concepts are drawn uniformly from ``concept_ids`` (default: every
        concept of the ontology), so each concept accumulates several
        abstracts worth of context.
        """
        if n_documents < 1:
            raise ValidationError(f"n_documents must be >= 1, got {n_documents}")
        pool = concept_ids if concept_ids is not None else self._concept_ids
        if not pool:
            raise ValidationError("no concepts to generate about")
        corpus = Corpus()
        for i in range(n_documents):
            concept = pool[int(self._rng.integers(0, len(pool)))]
            corpus.add(self.generate_abstract(concept, f"{doc_prefix}:{i:06d}"))
        return corpus

    def generate_balanced(
        self,
        docs_per_concept: int,
        *,
        concept_ids: list[str] | None = None,
        doc_prefix: str = "pm",
    ) -> Corpus:
        """A corpus with exactly ``docs_per_concept`` abstracts per concept."""
        if docs_per_concept < 1:
            raise ValidationError(
                f"docs_per_concept must be >= 1, got {docs_per_concept}"
            )
        pool = concept_ids if concept_ids is not None else self._concept_ids
        corpus = Corpus()
        counter = 0
        for concept in pool:
            for _ in range(docs_per_concept):
                corpus.add(self.generate_abstract(concept, f"{doc_prefix}:{counter:06d}"))
                counter += 1
        return corpus
