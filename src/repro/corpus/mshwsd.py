"""MSH-WSD-like benchmark generation (evaluation data for Step III).

The MSH WSD data set [Jimeno-Yepes et al. 2011] holds 203 ambiguous
biomedical entities, each linked to between 2 and 5 UMLS concepts, with
~100 PubMed contexts per sense.  It is behind an NLM licence wall, so
:class:`MshWsdSimulator` generates an equivalent: ambiguous terms whose
per-sense contexts are drawn from distinct topics.

The number-of-senses distribution defaults to the one documented for the
real data set (mean ≈ 2.08 senses/entity — the overwhelming majority of
entities have exactly two senses).  This matters: the paper's headline
93.1 % accuracy for max(f_k) is only reachable when the k distribution is
that skewed, because f_k's log10(k) denominator makes it conservative
about large k.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.corpus.topics import BackgroundVocabulary, make_topic
from repro.errors import ValidationError
from repro.lexicon import BioLexicon
from repro.utils.rng import ensure_rng

#: Senses-per-entity counts matching the real MSH WSD distribution
#: (203 entities, mean ≈ 2.08): {k: number of entities with k senses}.
MSHWSD_SENSE_DISTRIBUTION: dict[int, int] = {2: 189, 3: 10, 4: 3, 5: 1}


@dataclass
class MshWsdEntity:
    """One ambiguous entity of the benchmark.

    Attributes
    ----------
    term:
        The ambiguous term string.
    true_k:
        Ground-truth number of senses (1..5; 1 only for monosemous
        control entities used by the polysemy-detection benchmark).
    contexts:
        One token tuple per occurrence context.
    labels:
        Ground-truth sense index (0-based) aligned with ``contexts``.
    """

    term: str
    true_k: int
    contexts: list[tuple[str, ...]] = field(default_factory=list)
    labels: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.contexts) != len(self.labels):
            raise ValidationError("contexts and labels must be aligned")

    def n_contexts(self) -> int:
        """Number of occurrence contexts."""
        return len(self.contexts)


class MshWsdSimulator:
    """Generate an MSH-WSD-like benchmark.

    Parameters
    ----------
    n_entities:
        Number of ambiguous entities (the real data set has 203).
    sense_distribution:
        ``{k: count}`` distribution to draw entity sense-counts from;
        re-normalised to ``n_entities``.
    contexts_per_sense:
        Contexts generated for each sense of each entity.
    contexts_mode:
        ``"per_sense"`` (default) gives every sense ``contexts_per_sense``
        contexts — the real MSH WSD layout.  ``"per_entity"`` fixes the
        *total* at ``contexts_per_sense`` and splits it evenly across
        senses, so context volume carries no information about k (required
        for a fair polysemy-detection benchmark).
    context_length:
        Content tokens per context.
    background_fraction:
        Share of tokens from the shared background (noise level).
    sense_overlap:
        Fraction of a sense's signature shared with the entity's other
        senses — raises cross-sense similarity, making k harder to
        recover.
    signature_size:
        Words per sense signature.
    seed:
        RNG seed.
    """

    def __init__(
        self,
        *,
        n_entities: int = 203,
        sense_distribution: dict[int, int] | None = None,
        contexts_per_sense: int = 40,
        contexts_mode: str = "per_sense",
        context_length: int = 30,
        background_fraction: float = 0.4,
        sense_overlap: float = 0.1,
        signature_size: int = 24,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if n_entities < 1:
            raise ValidationError(f"n_entities must be >= 1, got {n_entities}")
        if contexts_per_sense < 2:
            raise ValidationError("contexts_per_sense must be >= 2")
        if contexts_mode not in ("per_sense", "per_entity"):
            raise ValidationError(
                f"contexts_mode must be per_sense|per_entity, got {contexts_mode!r}"
            )
        if context_length < 4:
            raise ValidationError("context_length must be >= 4")
        if not 0.0 <= background_fraction < 1.0:
            raise ValidationError("background_fraction must be in [0, 1)")
        if not 0.0 <= sense_overlap < 1.0:
            raise ValidationError("sense_overlap must be in [0, 1)")
        distribution = (
            dict(sense_distribution)
            if sense_distribution is not None
            else dict(MSHWSD_SENSE_DISTRIBUTION)
        )
        for k in distribution:
            # k = 1 is allowed so monosemous control entities can be
            # generated for the Step II (polysemy detection) benchmark;
            # the real MSH WSD set itself is all-ambiguous (2..5).
            if not 1 <= k <= 5:
                raise ValidationError(f"sense counts must be in 1..5, got {k}")
        self.n_entities = n_entities
        self.sense_distribution = distribution
        self.contexts_per_sense = contexts_per_sense
        self.contexts_mode = contexts_mode
        self.context_length = context_length
        self.background_fraction = background_fraction
        self.sense_overlap = sense_overlap
        self.signature_size = signature_size
        self._rng = ensure_rng(seed)

    def _sample_ks(self) -> list[int]:
        ks = sorted(self.sense_distribution)
        counts = np.array([self.sense_distribution[k] for k in ks], dtype=float)
        probs = counts / counts.sum()
        return [int(k) for k in self._rng.choice(ks, size=self.n_entities, p=probs)]

    def _sense_signatures(
        self, lexicon: BioLexicon, k: int
    ) -> list[list[str]]:
        rng = self._rng
        n_shared = int(round(self.sense_overlap * self.signature_size))
        shared = [lexicon.new_noun() for _ in range(n_shared)]
        signatures = []
        for _ in range(k):
            own = [
                lexicon.new_noun() if rng.random() < 0.7 else lexicon.new_adjective()
                for _ in range(self.signature_size - n_shared)
            ]
            signatures.append(own + shared)
        return signatures

    def generate(self) -> list[MshWsdEntity]:
        """Build the benchmark: a list of entities with labelled contexts."""
        rng = self._rng
        lexicon = BioLexicon(seed=rng)
        background = BackgroundVocabulary(lexicon, seed=rng)
        entities: list[MshWsdEntity] = []
        for k in self._sample_ks():
            term = " ".join(lexicon.new_term())
            signatures = self._sense_signatures(lexicon, k)
            topics = [
                make_topic(f"{term}::sense{i}", sig)
                for i, sig in enumerate(signatures)
            ]
            if self.contexts_mode == "per_entity":
                base = self.contexts_per_sense // k
                counts = [base + (1 if i < self.contexts_per_sense % k else 0)
                          for i in range(k)]
            else:
                counts = [self.contexts_per_sense] * k
            contexts: list[tuple[str, ...]] = []
            labels: list[int] = []
            for sense_idx, topic in enumerate(topics):
                for _ in range(counts[sense_idx]):
                    n_bg = int(round(self.background_fraction * self.context_length))
                    tokens = background.sample(rng, n_bg)
                    tokens += topic.sample_signature(
                        rng, self.context_length - n_bg
                    )
                    order = rng.permutation(len(tokens))
                    contexts.append(tuple(tokens[int(i)] for i in order))
                    labels.append(sense_idx)
            shuffle = rng.permutation(len(contexts))
            entities.append(
                MshWsdEntity(
                    term=term,
                    true_k=k,
                    contexts=[contexts[int(i)] for i in shuffle],
                    labels=[labels[int(i)] for i in shuffle],
                )
            )
        return entities
