"""Memory-mapped on-disk persistence of the positional corpus index.

A :class:`~repro.corpus.index.CorpusIndex` over a PubMed-scale corpus
is expensive to build (pure-Python postings construction) and expensive
to *move* (``worker_backend="process"`` pickles the whole index into
every pool worker).  This module makes the index a build-once artefact,
the Aber-OWL deployment shape: persist it as flat numpy arrays plus a
CRC-carrying manifest, then reopen it in O(1) through ``mmap`` as an
:class:`MmapCorpusIndex` that answers the **full query surface** of
:class:`CorpusIndex` byte-identically.  Pool workers receive a picklable
*path handle* instead of the index itself, so worker cold-start no
longer scales with corpus size.

Disk layout
-----------
One *generation* directory per corpus fingerprint (so corpus changes
invalidate by construction, exactly like
:class:`~repro.polysemy.cache_store.DiskCacheStore` generations)::

    index_dir/
      <fingerprint>/              # the 40-hex corpus fingerprint
        manifest.json             # kind, counts, per-file size + CRC-32
        tokens.bin                # sorted vocabulary, utf-8 concatenated
        token_offsets.npy         # int64 (V+1) offsets into tokens.bin
        postings_offsets.npy      # int64 (V+1) postings range per token
        postings_docs.npy         # int32 (P) doc ordinal per posting
        postings_positions.npy    # int32 (P) token position per posting
        doc_ids.bin               # doc ids, utf-8 concatenated
        doc_id_offsets.npy        # int64 (D+1)
        doc_token_ids.npy         # int32 (N) vocabulary id per token
        doc_token_offsets.npy     # int64 (D+1) doc ranges

A sharded index persists as ``shard-0000/ ... shard-NNNN/`` single-index
subdirectories behind one top-level manifest (``kind: "sharded"``), so
:func:`build_sharded_index` can fan the *builds* out over a process pool
— each worker builds and persists its shard, the parent mmap-opens all
of them — killing the GIL bound that capped thread-pool shard builds.

Durability discipline mirrors :class:`DiskCacheStore`: generations are
written to a temp directory and atomically renamed into place, every
file's size and CRC-32 are recorded in the manifest and validated on
open, and *any* corruption (truncated array, flipped bytes, torn
manifest, missing file) surfaces as :class:`IndexStoreError` — which
:meth:`IndexStore.load_or_build` degrades to a clean in-memory rebuild,
never a wrong answer.
"""

from __future__ import annotations

import contextlib
import json
import os
import shutil
import tempfile
import zlib
from collections.abc import Iterable
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.corpus.index import (
    EMPTY_FINGERPRINT,
    CorpusIndex,
    ShardedCorpusIndex,
    _extend_fingerprint,
)
from repro.errors import CorpusError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.corpus.document import Document

#: Bump when the on-disk layout changes; mismatches are treated as
#: corruption (clean rebuild), never a partial read.
STORE_VERSION = 1

_MANIFEST_NAME = "manifest.json"

#: Array/blob files of one single-index generation, in manifest order.
_ARRAY_FILES = (
    "tokens.bin",
    "token_offsets.npy",
    "postings_offsets.npy",
    "postings_docs.npy",
    "postings_positions.npy",
    "doc_ids.bin",
    "doc_id_offsets.npy",
    "doc_token_ids.npy",
    "doc_token_offsets.npy",
)

#: Decoded per-document token lists kept hot per mmap handle (strings
#: are shared with the decoded vocabulary, so the cache costs list
#: overhead only).
_DOC_CACHE_SIZE = 4096


class IndexStoreError(CorpusError):
    """A stored index could not be read back (missing/corrupt/stale)."""


def _crc32_of(path: Path) -> int:
    crc = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(1 << 20)
            if not chunk:
                return crc
            crc = zlib.crc32(chunk, crc)


def _fingerprint_documents(documents: "Iterable[Document]") -> str:
    """The corpus fingerprint a fresh :class:`CorpusIndex` would compute."""
    fingerprint = EMPTY_FINGERPRINT
    for doc in documents:
        tokens = [token.lower() for token in doc.tokens()]
        fingerprint = _extend_fingerprint(fingerprint, doc.doc_id, tokens)
    return fingerprint


# -- persisting a built index ------------------------------------------------


def _save_single(index: CorpusIndex, directory: Path) -> None:
    """Write one in-memory :class:`CorpusIndex` as a generation dir."""
    directory.mkdir(parents=True, exist_ok=True)
    vocabulary = sorted(index._postings)
    token_ids = {token: i for i, token in enumerate(vocabulary)}

    token_blob = bytearray()
    token_offsets = np.zeros(len(vocabulary) + 1, dtype=np.int64)
    for i, token in enumerate(vocabulary):
        token_blob.extend(token.encode("utf-8"))
        token_offsets[i + 1] = len(token_blob)

    postings_offsets = np.zeros(len(vocabulary) + 1, dtype=np.int64)
    total_postings = sum(len(index._postings[t]) for t in vocabulary)
    postings_docs = np.empty(total_postings, dtype=np.int32)
    postings_positions = np.empty(total_postings, dtype=np.int32)
    cursor = 0
    for i, token in enumerate(vocabulary):
        postings = index._postings[token]
        end = cursor + len(postings)
        if postings:
            arr = np.asarray(postings, dtype=np.int64)
            postings_docs[cursor:end] = arr[:, 0]
            postings_positions[cursor:end] = arr[:, 1]
        postings_offsets[i + 1] = end
        cursor = end

    doc_id_blob = bytearray()
    doc_id_offsets = np.zeros(index.n_documents() + 1, dtype=np.int64)
    for i, doc_id in enumerate(index._doc_ids):
        doc_id_blob.extend(doc_id.encode("utf-8"))
        doc_id_offsets[i + 1] = len(doc_id_blob)

    doc_token_offsets = np.zeros(index.n_documents() + 1, dtype=np.int64)
    doc_token_ids = np.empty(index.n_tokens(), dtype=np.int32)
    cursor = 0
    for i, tokens in enumerate(index._doc_tokens):
        for token in tokens:
            doc_token_ids[cursor] = token_ids[token]
            cursor += 1
        doc_token_offsets[i + 1] = cursor

    (directory / "tokens.bin").write_bytes(bytes(token_blob))
    (directory / "doc_ids.bin").write_bytes(bytes(doc_id_blob))
    np.save(directory / "token_offsets.npy", token_offsets)
    np.save(directory / "postings_offsets.npy", postings_offsets)
    np.save(directory / "postings_docs.npy", postings_docs)
    np.save(directory / "postings_positions.npy", postings_positions)
    np.save(directory / "doc_id_offsets.npy", doc_id_offsets)
    np.save(directory / "doc_token_ids.npy", doc_token_ids)
    np.save(directory / "doc_token_offsets.npy", doc_token_offsets)

    manifest = {
        "version": STORE_VERSION,
        "kind": "single",
        "fingerprint": index.fingerprint(),
        "n_documents": index.n_documents(),
        "n_tokens": index.n_tokens(),
        "vocabulary_size": index.vocabulary_size(),
        "files": {
            name: {
                "bytes": (directory / name).stat().st_size,
                "crc32": _crc32_of(directory / name),
            }
            for name in _ARRAY_FILES
        },
    }
    # The manifest lands last: a crash mid-save leaves a directory that
    # fails to open (no manifest), never one that half-answers.
    (directory / _MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )


def _read_manifest(directory: Path) -> dict:
    path = directory / _MANIFEST_NAME
    try:
        manifest = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise IndexStoreError(
            f"unreadable index manifest at {path}: {exc}"
        ) from None
    if not isinstance(manifest, dict):
        raise IndexStoreError(f"malformed index manifest at {path}")
    if manifest.get("version") != STORE_VERSION:
        raise IndexStoreError(
            f"index store version mismatch at {directory} "
            f"(got {manifest.get('version')!r}, want {STORE_VERSION})"
        )
    return manifest


def _verify_files(directory: Path, manifest: dict, *, verify_crc: bool) -> None:
    files = manifest.get("files")
    if not isinstance(files, dict) or set(files) != set(_ARRAY_FILES):
        raise IndexStoreError(f"malformed file table at {directory}")
    for name, record in files.items():
        path = directory / name
        try:
            size = path.stat().st_size
        except OSError:
            raise IndexStoreError(f"missing index file {path}") from None
        if size != record.get("bytes"):
            raise IndexStoreError(
                f"truncated index file {path} "
                f"({size} bytes, manifest says {record.get('bytes')})"
            )
        if verify_crc and _crc32_of(path) != record.get("crc32"):
            raise IndexStoreError(f"CRC mismatch in index file {path}")


# -- the mmap-backed read path ----------------------------------------------


class _MmapPostings:
    """Dict-like postings view over the mmapped arrays.

    Implements exactly the mapping surface :class:`CorpusIndex`'s query
    methods use (``get`` returning a ``[(ordinal, position), ...]``
    list, ``len`` for the vocabulary size, iteration over token
    strings), so the inherited algorithms run unchanged.
    """

    def __init__(self, owner: "MmapCorpusIndex") -> None:
        self._owner = owner

    def get(self, token: str, default=None):
        token_id = self._owner._token_id(token)
        if token_id is None:
            return default
        start, end = self._owner._postings_range(token_id)
        if start == end:
            return default if default is not None else []
        return list(
            zip(
                self._owner._postings_docs[start:end].tolist(),
                self._owner._postings_positions[start:end].tolist(),
                strict=True,
            )
        )

    def __contains__(self, token: str) -> bool:
        return self._owner._token_id(token) is not None

    def __len__(self) -> int:
        return self._owner.vocabulary_size()

    def __iter__(self):
        return iter(self._owner._vocabulary())


class _MmapDocTokens:
    """Sequence view: ``[ordinal] -> list[str]`` decoded lazily.

    Decoded documents are kept in a small LRU so repeated window
    extraction around hot documents does not re-decode; the token
    strings themselves are shared with the decoded vocabulary.
    """

    def __init__(self, owner: "MmapCorpusIndex") -> None:
        self._owner = owner
        self._cache: dict[int, list[str]] = {}

    def __getitem__(self, ordinal: int) -> list[str]:
        cached = self._cache.get(ordinal)
        if cached is not None:
            return cached
        owner = self._owner
        start = int(owner._doc_token_offsets[ordinal])
        end = int(owner._doc_token_offsets[ordinal + 1])
        vocabulary = owner._vocabulary()
        tokens = [
            vocabulary[i]
            for i in owner._doc_token_ids[start:end].tolist()
        ]
        if len(self._cache) >= _DOC_CACHE_SIZE:
            self._cache.pop(next(iter(self._cache)))
        self._cache[ordinal] = tokens
        return tokens

    def __len__(self) -> int:
        return self._owner.n_documents()

    def __iter__(self):
        for ordinal in range(len(self)):
            yield self[ordinal]


class _MmapDocIds:
    """Sequence view: ``[ordinal] -> doc_id`` decoded per access."""

    def __init__(self, owner: "MmapCorpusIndex") -> None:
        self._owner = owner

    def __getitem__(self, ordinal: int) -> str:
        owner = self._owner
        start = int(owner._doc_id_offsets[ordinal])
        end = int(owner._doc_id_offsets[ordinal + 1])
        return bytes(owner._doc_id_blob[start:end]).decode("utf-8")

    def __len__(self) -> int:
        return self._owner.n_documents()

    def __iter__(self):
        for ordinal in range(len(self)):
            yield self[ordinal]


class _MmapOrdinals:
    """``doc_id in index._ordinals`` support, built lazily on first use."""

    def __init__(self, owner: "MmapCorpusIndex") -> None:
        self._owner = owner
        self._mapping: dict[str, int] | None = None

    def _resolve(self) -> dict[str, int]:
        if self._mapping is None:
            self._mapping = {
                doc_id: ordinal
                for ordinal, doc_id in enumerate(self._owner._doc_ids)
            }
        return self._mapping

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._resolve()

    def __getitem__(self, doc_id: str) -> int:
        return self._resolve()[doc_id]

    def __len__(self) -> int:
        return self._owner.n_documents()


class MmapCorpusIndex(CorpusIndex):
    """A read-only :class:`CorpusIndex` served straight off the store.

    Opening costs O(1): the numpy arrays are memory-mapped, nothing is
    decoded until a query touches it.  Every query method answers
    byte-identically to the in-memory index the generation was saved
    from — the inherited :class:`CorpusIndex` algorithms run unchanged
    over lazy dict/sequence views of the arrays.

    Pickling ships only the generation *path* (plus the manifest-backed
    counters), so ``worker_backend="process"`` workers reopen the mmap
    in their own process instead of unpickling postings — worker
    cold-start no longer scales with the corpus.

    The index is immutable: :meth:`add_documents` raises
    :class:`~repro.errors.CorpusError` (grow the corpus through an
    in-memory index, then re-persist).
    """

    def __init__(self, directory: str | Path, *, verify: bool = True) -> None:
        directory = Path(directory)
        manifest = _read_manifest(directory)
        if manifest.get("kind") != "single":
            raise IndexStoreError(
                f"{directory} holds a {manifest.get('kind')!r} index, "
                "expected a single shard"
            )
        _verify_files(directory, manifest, verify_crc=verify)
        self._dir = directory
        self._manifest = manifest
        try:
            self._open_arrays()
        except (OSError, ValueError) as exc:
            raise IndexStoreError(
                f"cannot map index arrays at {directory}: {exc}"
            ) from None
        self._fingerprint = str(manifest["fingerprint"])
        self._n_tokens = int(manifest["n_tokens"])
        self._postings = _MmapPostings(self)
        self._doc_tokens = _MmapDocTokens(self)
        self._doc_ids = _MmapDocIds(self)
        self._ordinals = _MmapOrdinals(self)
        self._vocab_cache: list[str] | None = None
        self._doc_lengths: dict[str, int] | None = None

    def _open_arrays(self) -> None:
        load = lambda name: np.load(  # noqa: E731 - local shorthand
            self._dir / name, mmap_mode="r"
        )
        self._token_offsets = load("token_offsets.npy")
        self._postings_offsets = load("postings_offsets.npy")
        self._postings_docs = load("postings_docs.npy")
        self._postings_positions = load("postings_positions.npy")
        self._doc_id_offsets = load("doc_id_offsets.npy")
        self._doc_token_ids = load("doc_token_ids.npy")
        self._doc_token_offsets = load("doc_token_offsets.npy")
        self._token_blob = np.memmap(
            self._dir / "tokens.bin", dtype=np.uint8, mode="r"
        ) if (self._dir / "tokens.bin").stat().st_size else np.empty(
            0, dtype=np.uint8
        )
        self._doc_id_blob = np.memmap(
            self._dir / "doc_ids.bin", dtype=np.uint8, mode="r"
        ) if (self._dir / "doc_ids.bin").stat().st_size else np.empty(
            0, dtype=np.uint8
        )

    # -- pickling: the path handle is the whole payload --------------------

    def __getstate__(self) -> dict:
        return {"directory": str(self._dir)}

    def __setstate__(self, state: dict) -> None:
        # The generation was CRC-verified when the parent opened it and
        # files are immutable once renamed into place, so worker
        # reopens skip the CRC pass to keep cold-start O(1).
        self.__init__(state["directory"], verify=False)

    # -- vocabulary plumbing ----------------------------------------------

    def _vocabulary(self) -> list[str]:
        """The sorted vocabulary, decoded once per handle on first use."""
        if self._vocab_cache is None:
            blob = bytes(self._token_blob)
            offsets = self._token_offsets.tolist()
            self._vocab_cache = [
                blob[offsets[i] : offsets[i + 1]].decode("utf-8")
                for i in range(len(offsets) - 1)
            ]
        return self._vocab_cache

    def _token_id(self, token: str) -> int | None:
        """Binary search of the sorted vocabulary; None when unseen."""
        if self._vocab_cache is not None:
            # Once the vocabulary is decoded, bisect the string list.
            import bisect

            i = bisect.bisect_left(self._vocab_cache, token)
            if i < len(self._vocab_cache) and self._vocab_cache[i] == token:
                return i
            return None
        needle = token.encode("utf-8")
        offsets = self._token_offsets
        lo, hi = 0, len(offsets) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            start, end = int(offsets[mid]), int(offsets[mid + 1])
            candidate = bytes(self._token_blob[start:end])
            if candidate < needle:
                lo = mid + 1
            else:
                hi = mid
        if lo >= len(offsets) - 1:
            return None
        start, end = int(offsets[lo]), int(offsets[lo + 1])
        if bytes(self._token_blob[start:end]) != needle:
            return None
        return lo

    def _postings_range(self, token_id: int) -> tuple[int, int]:
        return (
            int(self._postings_offsets[token_id]),
            int(self._postings_offsets[token_id + 1]),
        )

    # -- overrides where the inherited implementation assumes lists --------

    @property
    def directory(self) -> Path:
        """The generation directory this handle maps."""
        return self._dir

    def add_documents(self, documents: "Iterable[Document]") -> None:
        if not list(documents):  # an empty add is a no-op, as in-memory
            return
        raise CorpusError(
            "mmap-backed corpus index is read-only; rebuild and re-persist "
            "through IndexStore.load_or_build to grow it"
        )

    def n_documents(self) -> int:
        return int(self._manifest["n_documents"])

    def vocabulary_size(self) -> int:
        return int(self._manifest["vocabulary_size"])

    def doc_lengths(self) -> dict[str, int]:
        if self._doc_lengths is None:
            lengths = np.diff(self._doc_token_offsets).tolist()
            self._doc_lengths = dict(zip(iter(self._doc_ids), lengths, strict=True))
        return self._doc_lengths

    def token_documents(self) -> list[list[str]]:
        return [self._doc_tokens[i] for i in range(self.n_documents())]

    def extend_fingerprint(self, fingerprint: str) -> str:
        for ordinal in range(self.n_documents()):
            fingerprint = _extend_fingerprint(
                fingerprint,
                self._doc_ids[ordinal],
                self._doc_tokens[ordinal],
            )
        return fingerprint


# -- sharded persistence ------------------------------------------------------


def _save_sharded(index: ShardedCorpusIndex, directory: Path) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    shard_names = []
    for i, shard in enumerate(index.shards()):
        name = f"shard-{i:04d}"
        _save_single(shard, directory / name)
        shard_names.append(name)
    _write_sharded_manifest(
        directory,
        fingerprint=index.fingerprint(),
        shard_names=shard_names,
        n_documents=index.n_documents(),
        n_tokens=index.n_tokens(),
    )


def _write_sharded_manifest(
    directory: Path,
    *,
    fingerprint: str,
    shard_names: list[str],
    n_documents: int,
    n_tokens: int,
) -> None:
    manifest = {
        "version": STORE_VERSION,
        "kind": "sharded",
        "fingerprint": fingerprint,
        "n_documents": n_documents,
        "n_tokens": n_tokens,
        "shards": shard_names,
    }
    (directory / _MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )


def _build_and_save_shard(task: tuple[list, str]) -> str:
    """Pool worker: build one shard in memory, persist it, return its name.

    The built postings never travel back over the pipe — only the shard
    directory name does; the parent mmap-opens the persisted arrays.
    """
    documents, shard_dir = task
    _save_single(CorpusIndex(documents), Path(shard_dir))
    return Path(shard_dir).name


def _partition(documents: list, n_shards: int) -> list[list]:
    """The contiguous near-even split :class:`ShardedCorpusIndex` uses."""
    base, remainder = divmod(len(documents), n_shards)
    chunks: list[list] = []
    start = 0
    for shard in range(n_shards):
        size = base + (1 if shard < remainder else 0)
        chunks.append(documents[start : start + size])
        start += size
    return chunks


def build_sharded_index(
    documents: "Iterable[Document]",
    directory: str | Path,
    *,
    n_shards: int,
    n_workers: int = 1,
    build_backend: str = "process",
    fingerprint: str | None = None,
) -> ShardedCorpusIndex:
    """Build + persist a sharded index, shards fanned over a process pool.

    Each pool worker builds its contiguous document chunk into a
    :class:`CorpusIndex` and persists it directly into ``directory`` —
    the built postings are never pickled back — while the parent chains
    the global fingerprint (pure C-speed hashing) concurrently.  The
    returned index is a :class:`ShardedCorpusIndex` whose shards are
    :class:`MmapCorpusIndex` handles over the just-written arrays, so
    both the parent and any process-pool worker it later pickles the
    index into share the same mapped pages.

    ``build_backend="thread"`` (or ``n_workers == 1``) keeps the builds
    in-process — mainly for environments where process pools are
    unavailable; results are identical either way.
    """
    if n_shards < 1:
        raise CorpusError(f"n_shards must be >= 1, got {n_shards}")
    if n_workers < 1:
        raise CorpusError(f"n_workers must be >= 1, got {n_workers}")
    if build_backend not in ("thread", "process"):
        raise CorpusError(
            f"build_backend must be thread|process, got {build_backend!r}"
        )
    documents = list(documents)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    chunks = _partition(documents, n_shards)
    tasks = [
        (chunk, str(directory / f"shard-{i:04d}"))
        for i, chunk in enumerate(chunks)
    ]
    if build_backend == "process" and n_workers > 1 and len(documents) > 1:
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            futures = [pool.submit(_build_and_save_shard, t) for t in tasks]
            # Hash the global chain while the workers build postings.
            if fingerprint is None:
                fingerprint = _fingerprint_documents(documents)
            shard_names = [future.result() for future in futures]
    else:
        shard_names = [_build_and_save_shard(task) for task in tasks]
        if fingerprint is None:
            fingerprint = _fingerprint_documents(documents)
    _write_sharded_manifest(
        directory,
        fingerprint=fingerprint,
        shard_names=shard_names,
        n_documents=len(documents),
        n_tokens=sum(doc.n_tokens() for doc in documents),
    )
    shards = [
        MmapCorpusIndex(directory / name, verify=False)
        for name in shard_names
    ]
    return ShardedCorpusIndex.from_shards(
        shards, fingerprint=fingerprint, n_workers=n_workers
    )


# -- the store ----------------------------------------------------------------


class IndexStore:
    """Fingerprint-keyed generations of persisted corpus indexes.

    Parameters
    ----------
    directory:
        Root of the store.  Each persisted index lives in a
        subdirectory named by its corpus fingerprint; saves write to a
        temp directory and atomically rename, so readers never observe
        a half-written generation under its final name.

    Example
    -------
    >>> import tempfile
    >>> from repro.corpus.corpus import Corpus
    >>> from repro.corpus.document import Document
    >>> corpus = Corpus([Document("d", [["wound", "heals"]])])
    >>> store = IndexStore(tempfile.mkdtemp())
    >>> opened = store.load_or_build(corpus)
    >>> opened.term_frequency("wound")
    1
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, fingerprint: str) -> Path:
        """The generation directory a fingerprint maps to."""
        return self.directory / fingerprint

    def fingerprints(self) -> list[str]:
        """Fingerprints with a (possibly corrupt) generation present."""
        return sorted(
            entry.name
            for entry in self.directory.iterdir()
            if entry.is_dir() and not entry.name.startswith(".")
        )

    def describe(self) -> dict:
        """Layout summary of every stored generation (``repro index``)."""
        generations = []
        for fingerprint in self.fingerprints():
            path = self.path_for(fingerprint)
            record: dict = {"fingerprint": fingerprint}
            try:
                manifest = _read_manifest(path)
            except IndexStoreError as exc:
                record.update({"kind": "corrupt", "error": str(exc)})
            else:
                record.update(
                    {
                        "kind": manifest["kind"],
                        "n_documents": manifest["n_documents"],
                        "n_tokens": manifest["n_tokens"],
                        "n_shards": len(manifest.get("shards", [])) or 1,
                    }
                )
            record["bytes"] = sum(
                p.stat().st_size for p in path.rglob("*") if p.is_file()
            )
            generations.append(record)
        return {
            "index_dir": str(self.directory),
            "n_generations": len(generations),
            "store_bytes": sum(g["bytes"] for g in generations),
            "generations": generations,
        }

    # -- persisting --------------------------------------------------------

    def save(self, index: CorpusIndex | ShardedCorpusIndex) -> Path:
        """Persist a built in-memory index; returns its generation dir.

        The write is atomic at the generation level: arrays land in a
        temp sibling first and are renamed into place, replacing any
        previous (possibly corrupt) generation of the same fingerprint.
        """
        if isinstance(index, MmapCorpusIndex):
            raise CorpusError(
                "refusing to re-persist an mmap handle; save the in-memory "
                "index it came from"
            )
        final = self.path_for(index.fingerprint())
        staging = Path(
            tempfile.mkdtemp(
                prefix=f".tmp-{index.fingerprint()[:8]}-", dir=self.directory
            )
        )
        try:
            if isinstance(index, ShardedCorpusIndex):
                _save_sharded(index, staging)
            else:
                _save_single(index, staging)
            if final.exists():
                shutil.rmtree(final)
            os.replace(staging, final)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        return final

    # -- reopening ---------------------------------------------------------

    def open(
        self,
        fingerprint: str,
        *,
        n_workers: int = 1,
        verify: bool = True,
    ) -> "MmapCorpusIndex | ShardedCorpusIndex":
        """Mmap-reopen the generation for ``fingerprint`` in O(1).

        Raises :class:`IndexStoreError` for a missing, truncated,
        CRC-mismatched, or version-skewed generation — callers either
        surface it or degrade to a rebuild
        (:meth:`load_or_build` does the latter).
        """
        path = self.path_for(fingerprint)
        if not path.is_dir():
            raise IndexStoreError(f"no stored index for {fingerprint}")
        manifest = _read_manifest(path)
        if manifest.get("fingerprint") != fingerprint:
            raise IndexStoreError(
                f"fingerprint mismatch at {path}: manifest says "
                f"{manifest.get('fingerprint')!r}"
            )
        if manifest.get("kind") == "single":
            return MmapCorpusIndex(path, verify=verify)
        if manifest.get("kind") != "sharded":
            raise IndexStoreError(
                f"unknown index kind {manifest.get('kind')!r} at {path}"
            )
        shard_names = manifest.get("shards")
        if not isinstance(shard_names, list) or not shard_names:
            raise IndexStoreError(f"malformed shard table at {path}")
        shards = [
            MmapCorpusIndex(path / name, verify=verify)
            for name in shard_names
        ]
        index = ShardedCorpusIndex.from_shards(
            shards, fingerprint=fingerprint, n_workers=n_workers
        )
        if index.n_documents() != manifest.get("n_documents"):
            raise IndexStoreError(f"shard document counts disagree at {path}")
        return index

    def load_or_build(
        self,
        documents: "Iterable[Document]",
        *,
        n_shards: int = 1,
        n_workers: int = 1,
        build_backend: str = "thread",
    ) -> CorpusIndex | ShardedCorpusIndex:
        """Open the store's index for ``documents``, building on a miss.

        The document stream is fingerprinted (C-speed hashing, far
        cheaper than a build) and the matching generation mmap-opened.
        A missing or corrupt generation — truncation, CRC mismatch,
        version skew, torn manifest — degrades to a clean rebuild that
        then replaces the generation, mirroring
        :class:`~repro.polysemy.cache_store.DiskCacheStore`'s
        corruption-is-a-miss discipline: never a wrong answer.  Sharded
        rebuilds fan out over a process pool when
        ``build_backend="process"`` and ``n_workers > 1``.
        """
        documents = list(documents)
        fingerprint = _fingerprint_documents(documents)
        with contextlib.suppress(IndexStoreError):
            return self.open(fingerprint, n_workers=n_workers)
        if n_shards > 1:
            # Shard builds persist straight from the workers; the
            # returned index already maps the written arrays.
            staging = Path(
                tempfile.mkdtemp(
                    prefix=f".tmp-{fingerprint[:8]}-", dir=self.directory
                )
            )
            try:
                build_sharded_index(
                    documents,
                    staging,
                    n_shards=n_shards,
                    n_workers=n_workers,
                    build_backend=build_backend,
                    fingerprint=fingerprint,
                )
                final = self.path_for(fingerprint)
                if final.exists():
                    shutil.rmtree(final)
                os.replace(staging, final)
            except BaseException:
                shutil.rmtree(staging, ignore_errors=True)
                raise
            return self.open(fingerprint, n_workers=n_workers, verify=False)
        index = CorpusIndex(documents)
        try:
            self.save(index)
            return self.open(fingerprint, n_workers=n_workers, verify=False)
        except (OSError, IndexStoreError):
            # A store that cannot be written or immediately re-read
            # must not cost the run; serve the in-memory build.
            return index


def store_for_index(
    index: "CorpusIndex | ShardedCorpusIndex",
) -> IndexStore | None:
    """The :class:`IndexStore` a mmap-backed index was opened from.

    Returns ``None`` for in-memory indexes (there is no store to route
    rebuilds through).  :meth:`repro.corpus.corpus.Corpus.adopt_index`
    uses this so that growing a corpus past its read-only mmap index
    rebuilds *through the store* — persisting the new generation — rather
    than silently degrading to an unpersisted in-RAM rebuild.
    """
    if isinstance(index, MmapCorpusIndex):
        return IndexStore(index.directory.parent)
    if isinstance(index, ShardedCorpusIndex):
        shards = index.shards()
        if shards and all(
            isinstance(shard, MmapCorpusIndex) for shard in shards
        ):
            # Shards live at <store>/<fingerprint>/shard-NNNN.
            return IndexStore(shards[0].directory.parent.parent)
    return None
