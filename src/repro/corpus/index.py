"""The positional corpus index: one build, every occurrence question.

Steps I–IV repeatedly ask "where does term *t* occur and what surrounds
it?".  The naive answer — rescan every document per term — makes the
workflow O(candidates × corpus).  :class:`CorpusIndex` is built once per
corpus (token → postings of ``(document, position)``) and answers every
occurrence question from the postings:

* :meth:`phrase_occurrences` — every (overlapping) start position of a
  token phrase, located through the phrase's rarest token;
* :meth:`contexts_for_term` — the legacy ``Corpus.contexts_for_term``
  retrieval (greedy non-overlapping matches, windows clipped at document
  boundaries) with byte-identical results;
* :meth:`occurrence_records` — the multi-term retrieval of
  ``linkage.context.find_occurrence_records`` (overlapping occurrences
  allowed, longest term wins at any single start position);
* :meth:`term_frequency` / :meth:`document_frequency` — counting without
  window materialisation.

The index also caches each document's flattened token list, so the many
consumers that iterate ``doc.tokens()`` (graph builders, vectorisers,
extraction) can share :meth:`token_documents` instead of re-flattening.

The index is a snapshot: it reflects the corpus at build time.
:meth:`repro.corpus.corpus.Corpus.index` rebuilds automatically when
documents are added, but mutating a :class:`Document` in place is not
detected.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Sequence

from repro.corpus.corpus import Corpus, TermContext
from repro.errors import CorpusError


def _as_needle(term: str | Sequence[str]) -> tuple[str, ...]:
    """Normalise a term to its lower-cased token tuple (may be empty)."""
    if isinstance(term, str):
        return tuple(term.lower().split())
    return tuple(t.lower() for t in term)


class CorpusIndex:
    """Positional inverted index over a :class:`Corpus`.

    Parameters
    ----------
    corpus:
        The corpus to index.  Built in one pass: O(total tokens).

    Example
    -------
    >>> from repro.corpus.document import Document
    >>> corpus = Corpus([Document("d", [["corneal", "injury", "heals"]])])
    >>> index = CorpusIndex(corpus)
    >>> index.term_frequency("corneal injury")
    1
    """

    def __init__(self, corpus: Corpus) -> None:
        self._doc_ids: list[str] = []
        self._doc_tokens: list[list[str]] = []
        self._postings: dict[str, list[tuple[int, int]]] = {}
        for ordinal, doc in enumerate(corpus):
            tokens = doc.tokens()
            self._doc_ids.append(doc.doc_id)
            self._doc_tokens.append(tokens)
            for position, token in enumerate(tokens):
                self._postings.setdefault(token, []).append(
                    (ordinal, position)
                )
        self._n_tokens = sum(len(tokens) for tokens in self._doc_tokens)
        self._fingerprint: str | None = None

    # -- corpus-level statistics --------------------------------------------

    def fingerprint(self) -> str:
        """Stable content hash of the indexed corpus (doc ids + tokens).

        Two indexes over byte-identical corpora share a fingerprint;
        any added, removed, reordered, or edited document changes it.
        Used as the corpus component of feature-cache keys
        (:mod:`repro.polysemy.cache`).  Computed once and cached (the
        index is a snapshot, so the content cannot drift).
        """
        if self._fingerprint is None:
            digest = hashlib.sha1()
            for doc_id, tokens in zip(self._doc_ids, self._doc_tokens):
                digest.update(doc_id.encode("utf-8"))
                digest.update(b"\x00")
                digest.update("\x1f".join(tokens).encode("utf-8"))
                digest.update(b"\x01")
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def n_documents(self) -> int:
        """Number of indexed documents."""
        return len(self._doc_ids)

    def n_tokens(self) -> int:
        """Total token count over all indexed documents."""
        return self._n_tokens

    def vocabulary_size(self) -> int:
        """Number of distinct tokens."""
        return len(self._postings)

    def doc_lengths(self) -> dict[str, int]:
        """``doc_id → token count`` over all indexed documents."""
        return {
            doc_id: len(tokens)
            for doc_id, tokens in zip(self._doc_ids, self._doc_tokens)
        }

    def token_documents(self) -> list[list[str]]:
        """The cached flat token list of every document, in corpus order.

        The returned lists are the index's own storage — treat them as
        read-only (they are shared to avoid re-flattening per consumer).
        """
        return self._doc_tokens

    def token_frequency(self, token: str) -> int:
        """Occurrences of a single ``token`` (0 when unseen)."""
        return len(self._postings.get(token.lower(), ()))

    # -- phrase lookup -------------------------------------------------------

    def phrase_occurrences(
        self, term: str | Sequence[str]
    ) -> list[tuple[int, int]]:
        """Every ``(doc ordinal, start position)`` of ``term``, overlapping.

        Matching anchors on the phrase's rarest token, so lookup cost is
        proportional to that token's posting list, not the corpus.
        """
        needle = _as_needle(term)
        if not needle:
            raise CorpusError("term must contain at least one token")
        return self._occurrences(needle)

    def _occurrences(self, needle: tuple[str, ...]) -> list[tuple[int, int]]:
        anchor_offset = 0
        anchor_postings: list[tuple[int, int]] | None = None
        for offset, token in enumerate(needle):
            postings = self._postings.get(token)
            if postings is None:
                return []
            if anchor_postings is None or len(postings) < len(anchor_postings):
                anchor_offset, anchor_postings = offset, postings
        assert anchor_postings is not None
        span = len(needle)
        if span == 1:
            # Copy: callers must not be able to mutate the postings.
            return list(anchor_postings)
        out: list[tuple[int, int]] = []
        for ordinal, position in anchor_postings:
            start = position - anchor_offset
            if start < 0:
                continue
            tokens = self._doc_tokens[ordinal]
            if start + span > len(tokens):
                continue
            if tuple(tokens[start : start + span]) == needle:
                out.append((ordinal, start))
        return out

    def _window(
        self, ordinal: int, start: int, span: int, window: int
    ) -> tuple[str, ...]:
        """Window tokens around an occurrence, the occurrence excluded."""
        tokens = self._doc_tokens[ordinal]
        left = tokens[max(0, start - window) : start]
        right = tokens[start + span : start + span + window]
        return tuple(left + right)

    # -- the legacy single-term retrieval -----------------------------------

    def contexts_for_term(
        self,
        term: str | Sequence[str],
        *,
        window: int = 10,
    ) -> list[TermContext]:
        """Token windows around each occurrence of ``term``.

        Exactly reproduces the document-scan semantics of
        :meth:`repro.corpus.corpus.Corpus.contexts_for_term`: matches are
        consumed greedily left to right (an occurrence may not overlap
        the previous one), and windows clip at document boundaries.
        """
        needle = _as_needle(term)
        if not needle:
            raise CorpusError("term must contain at least one token")
        if window < 1:
            raise CorpusError(f"window must be >= 1, got {window}")
        span = len(needle)
        contexts: list[TermContext] = []
        last_doc, last_end = -1, 0
        for ordinal, start in sorted(self._occurrences(needle)):
            if ordinal == last_doc and start < last_end:
                continue  # overlaps the previous (greedy) match
            last_doc, last_end = ordinal, start + span
            contexts.append(
                TermContext(
                    doc_id=self._doc_ids[ordinal],
                    tokens=self._window(ordinal, start, span, window),
                    position=start,
                )
            )
        return contexts

    def term_frequency(self, term: str | Sequence[str]) -> int:
        """Number of (non-overlapping) occurrences of ``term``."""
        needle = _as_needle(term)
        if not needle:
            raise CorpusError("term must contain at least one token")
        if len(needle) == 1:
            return len(self._postings.get(needle[0], ()))
        count = 0
        last_doc, last_end = -1, 0
        for ordinal, start in sorted(self._occurrences(needle)):
            if ordinal == last_doc and start < last_end:
                continue
            last_doc, last_end = ordinal, start + len(needle)
            count += 1
        return count

    def document_frequency(self, term: str | Sequence[str]) -> int:
        """Number of documents containing ``term`` at least once."""
        needle = _as_needle(term)
        if not needle:
            raise CorpusError("term must contain at least one token")
        return len({ordinal for ordinal, __ in self._occurrences(needle)})

    # -- the multi-term retrieval -------------------------------------------

    def occurrence_records(
        self,
        terms: Iterable[str],
        *,
        window: int = 10,
    ) -> dict[str, list[tuple[str, tuple[str, ...]]]]:
        """(doc_id, window) records of every term of ``terms``.

        Exactly reproduces
        :func:`repro.linkage.context.find_occurrence_records`: overlapping
        occurrences of different terms are all reported, but at any single
        start position only the longest matching term records an
        occurrence.
        """
        needles: dict[str, tuple[str, ...]] = {}
        for term in terms:
            tokens = _as_needle(term)
            if not tokens:
                continue
            needles[" ".join(tokens)] = tokens

        # Longest match wins at each start position.  Two distinct keys
        # cannot tie: equal-length matches at one position are the same
        # token sequence, hence the same key.
        best: dict[tuple[int, int], tuple[int, str]] = {}
        for key, needle in needles.items():
            span = len(needle)
            for occurrence in self._occurrences(needle):
                incumbent = best.get(occurrence)
                if incumbent is None or span > incumbent[0]:
                    best[occurrence] = (span, key)

        records: dict[str, list[tuple[str, tuple[str, ...]]]] = {
            key: [] for key in needles
        }
        for (ordinal, start), (span, key) in sorted(best.items()):
            records[key].append(
                (
                    self._doc_ids[ordinal],
                    self._window(ordinal, start, span, window),
                )
            )
        return records
