"""The positional corpus index: one build, every occurrence question.

Steps I–IV repeatedly ask "where does term *t* occur and what surrounds
it?".  The naive answer — rescan every document per term — makes the
workflow O(candidates × corpus).  :class:`CorpusIndex` is built once per
corpus (token → postings of ``(document, position)``) and answers every
occurrence question from the postings:

* :meth:`phrase_occurrences` — every (overlapping) start position of a
  token phrase, located through the phrase's rarest token;
* :meth:`contexts_for_term` — the legacy ``Corpus.contexts_for_term``
  retrieval (greedy non-overlapping matches, windows clipped at document
  boundaries) with byte-identical results;
* :meth:`occurrence_records` — the multi-term retrieval of
  ``linkage.context.find_occurrence_records`` (overlapping occurrences
  allowed, longest term wins at any single start position);
* :meth:`term_frequency` / :meth:`document_frequency` — counting without
  window materialisation.

The index also caches each document's flattened token list, so the many
consumers that iterate ``doc.tokens()`` (graph builders, vectorisers,
extraction) can share :meth:`token_documents` instead of re-flattening.
Tokens are normalised (lower-cased) at build time, so postings always
match the lower-cased needles every lookup uses — a document constructed
with mixed-case sentences is findable instead of silently invisible.

The index reflects the corpus at its build point and grows with it:
:meth:`add_documents` extends the postings, document tables, and content
fingerprint in O(new tokens) instead of a full rebuild, and
:meth:`repro.corpus.corpus.Corpus.add` patches the corpus's cached index
through it.  Mutating a :class:`Document` in place is still not
detected.

For corpora large enough that a single build or posting traversal is the
bottleneck, :class:`ShardedCorpusIndex` partitions the documents across
N single-shard :class:`CorpusIndex` instances (contiguous document
ranges, so global ordering is preserved) behind the very same query API
with byte-identical results; shard builds can fan out over a thread
pool.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections.abc import Iterable, Sequence
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING

from repro.errors import CorpusError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.corpus.document import Document

from repro.corpus.corpus import TermContext

#: Fingerprint of an index with no documents — the chain seed.
EMPTY_FINGERPRINT = hashlib.sha1().hexdigest()

#: Minimum indexed tokens before sharded *queries* fan out by default.
#: Below this, thread-pool dispatch costs more than the pure-Python
#: per-shard traversal it parallelises (measured ~2x slower on ~30k
#: tokens, ~2x faster at ~200k); explicit ``map_shards(n_workers=...)``
#: overrides the gate either way.  Deployments whose break-even differs
#: override per index (``ShardedCorpusIndex(parallel_query_min_tokens=)``)
#: or per process (env ``REPRO_PARALLEL_QUERY_MIN_TOKENS``).
PARALLEL_QUERY_MIN_TOKENS = 100_000


def _resolve_parallel_query_min_tokens(explicit: int | None) -> int:
    """The fan-out gate: explicit kwarg > environment > module default."""
    if explicit is not None:
        if explicit < 0:
            raise CorpusError(
                f"parallel_query_min_tokens must be >= 0, got {explicit}"
            )
        return explicit
    raw = os.environ.get("REPRO_PARALLEL_QUERY_MIN_TOKENS")
    if raw is None:
        return PARALLEL_QUERY_MIN_TOKENS
    try:
        value = int(raw)
    except ValueError:
        raise CorpusError(
            "REPRO_PARALLEL_QUERY_MIN_TOKENS must be an integer, "
            f"got {raw!r}"
        ) from None
    if value < 0:
        raise CorpusError(
            f"REPRO_PARALLEL_QUERY_MIN_TOKENS must be >= 0, got {value}"
        )
    return value


def _as_needle(term: str | Sequence[str]) -> tuple[str, ...]:
    """Normalise a term to its lower-cased token tuple (may be empty)."""
    if isinstance(term, str):
        return tuple(term.lower().split())
    return tuple(t.lower() for t in term)


def _extend_fingerprint(
    fingerprint: str, doc_id: str, tokens: list[str]
) -> str:
    """Chain one document's content onto a running fingerprint.

    The fingerprint is a per-document hash chain (each link hashes the
    previous fingerprint plus the document's id and normalised tokens),
    so appending a document is O(its tokens) — no replay of the whole
    corpus — while any added, removed, reordered, or edited document
    still changes the final value.  A fresh build and an incrementally
    extended index over the same documents produce identical chains.
    """
    digest = hashlib.sha1()
    digest.update(fingerprint.encode("ascii"))
    digest.update(doc_id.encode("utf-8"))
    digest.update(b"\x00")
    digest.update("\x1f".join(tokens).encode("utf-8"))
    digest.update(b"\x01")
    return digest.hexdigest()


class CorpusIndex:
    """Positional inverted index over a corpus (any Document iterable).

    Parameters
    ----------
    documents:
        The documents to index (e.g. a :class:`~repro.corpus.corpus.Corpus`).
        Built in one pass: O(total tokens).

    Example
    -------
    >>> from repro.corpus.corpus import Corpus
    >>> from repro.corpus.document import Document
    >>> corpus = Corpus([Document("d", [["corneal", "injury", "heals"]])])
    >>> index = CorpusIndex(corpus)
    >>> index.term_frequency("corneal injury")
    1
    """

    def __init__(self, documents: "Iterable[Document]" = ()) -> None:
        self._doc_ids: list[str] = []
        self._doc_tokens: list[list[str]] = []
        self._postings: dict[str, list[tuple[int, int]]] = {}
        self._ordinals: dict[str, int] = {}
        self._n_tokens = 0
        self._fingerprint = EMPTY_FINGERPRINT
        self._doc_lengths: dict[str, int] | None = None
        self.add_documents(documents)

    # -- incremental growth --------------------------------------------------

    def add_documents(self, documents: "Iterable[Document]") -> None:
        """Extend the index with ``documents`` in O(their tokens).

        Postings, document tables, and the content fingerprint are
        patched in place — no rebuild — and the result is
        indistinguishable from a fresh build over the full document
        sequence (identical query answers and :meth:`fingerprint`).
        The batch is all-or-nothing: document ids must stay unique, and
        a duplicate — or a document whose tokenisation fails — raises
        :class:`~repro.errors.CorpusError` (or the tokeniser's error)
        before any document of the batch is applied, leaving postings
        and fingerprint untouched.
        """
        batch_ids = set()
        prepared: list[tuple[str, list[str]]] = []
        for doc in documents:
            if doc.doc_id in self._ordinals or doc.doc_id in batch_ids:
                raise CorpusError(
                    f"duplicate document id {doc.doc_id!r}"
                )
            batch_ids.add(doc.doc_id)
            # Normalise at build time: every lookup lower-cases its
            # needle, so postings must be lower-cased too or mixed-case
            # documents silently return zero occurrences.  Tokenise
            # here, before any mutation: ``doc.tokens()`` runs caller
            # code, and an exception from it mid-batch must not leave
            # the index half-extended with its fingerprint advanced.
            prepared.append(
                (doc.doc_id, [token.lower() for token in doc.tokens()])
            )
        for doc_id, tokens in prepared:
            ordinal = len(self._doc_ids)
            self._ordinals[doc_id] = ordinal
            self._doc_ids.append(doc_id)
            self._doc_tokens.append(tokens)
            for position, token in enumerate(tokens):
                self._postings.setdefault(token, []).append(
                    (ordinal, position)
                )
            self._n_tokens += len(tokens)
            self._fingerprint = _extend_fingerprint(
                self._fingerprint, doc_id, tokens
            )
        if prepared:
            # Lazily rebuilt on the next doc_lengths() call.
            self._doc_lengths = None

    # -- corpus-level statistics --------------------------------------------

    def fingerprint(self) -> str:
        """Stable content hash of the indexed corpus (doc ids + tokens).

        Two indexes over byte-identical corpora share a fingerprint —
        whether built fresh, extended through :meth:`add_documents`, or
        sharded (:class:`ShardedCorpusIndex`); any added, removed,
        reordered, or edited document changes it.  Used as the corpus
        component of feature-cache keys (:mod:`repro.polysemy.cache`),
        so an incremental update invalidates cache entries exactly like
        a rebuild.  Maintained as a per-document hash chain, so it is
        extended in O(new tokens) as documents are added.
        """
        return self._fingerprint

    def extend_fingerprint(self, fingerprint: str) -> str:
        """Chain this index's documents onto a caller-supplied prefix.

        Lets :class:`ShardedCorpusIndex` compute the global (whole
        corpus) fingerprint by threading one chain through its shards in
        order.
        """
        for doc_id, tokens in zip(self._doc_ids, self._doc_tokens, strict=True):
            fingerprint = _extend_fingerprint(fingerprint, doc_id, tokens)
        return fingerprint

    @property
    def n_shards(self) -> int:
        """A monolithic index is its own single shard."""
        return 1

    def n_documents(self) -> int:
        """Number of indexed documents."""
        return len(self._doc_ids)

    def n_tokens(self) -> int:
        """Total token count over all indexed documents."""
        return self._n_tokens

    def vocabulary_size(self) -> int:
        """Number of distinct tokens."""
        return len(self._postings)

    def doc_lengths(self) -> dict[str, int]:
        """``doc_id → token count`` over all indexed documents.

        The mapping is computed once and cached (invalidated by
        :meth:`add_documents`), so repeat consumers — every extraction
        build reads it — are allocation-free.  As with
        :meth:`token_documents`, the returned dict is the index's own
        storage: treat it as read-only.
        """
        if self._doc_lengths is None:
            self._doc_lengths = {
                doc_id: len(tokens)
                for doc_id, tokens in zip(self._doc_ids, self._doc_tokens, strict=True)
            }
        return self._doc_lengths

    def token_documents(self) -> list[list[str]]:
        """The cached flat token list of every document, in corpus order.

        The returned lists are the index's own storage — treat them as
        read-only (they are shared to avoid re-flattening per consumer).
        """
        return self._doc_tokens

    def token_frequency(self, token: str) -> int:
        """Occurrences of a single ``token`` (0 when unseen)."""
        return len(self._postings.get(token.lower(), ()))

    # -- phrase lookup -------------------------------------------------------

    def phrase_occurrences(
        self, term: str | Sequence[str]
    ) -> list[tuple[int, int]]:
        """Every ``(doc ordinal, start position)`` of ``term``, overlapping.

        Matching anchors on the phrase's rarest token, so lookup cost is
        proportional to that token's posting list, not the corpus.
        Results are sorted ascending by (ordinal, start).
        """
        needle = _as_needle(term)
        if not needle:
            raise CorpusError("term must contain at least one token")
        return self._occurrences(needle)

    def _occurrences(self, needle: tuple[str, ...]) -> list[tuple[int, int]]:
        anchor_offset = 0
        anchor_postings: list[tuple[int, int]] | None = None
        for offset, token in enumerate(needle):
            postings = self._postings.get(token)
            if postings is None:
                return []
            if anchor_postings is None or len(postings) < len(anchor_postings):
                anchor_offset, anchor_postings = offset, postings
        assert anchor_postings is not None
        span = len(needle)
        if span == 1:
            # Copy: callers must not be able to mutate the postings.
            return list(anchor_postings)
        out: list[tuple[int, int]] = []
        for ordinal, position in anchor_postings:
            start = position - anchor_offset
            if start < 0:
                continue
            tokens = self._doc_tokens[ordinal]
            if start + span > len(tokens):
                continue
            if tuple(tokens[start : start + span]) == needle:
                out.append((ordinal, start))
        return out

    def _window(
        self, ordinal: int, start: int, span: int, window: int
    ) -> tuple[str, ...]:
        """Window tokens around an occurrence, the occurrence excluded."""
        tokens = self._doc_tokens[ordinal]
        left = tokens[max(0, start - window) : start]
        right = tokens[start + span : start + span + window]
        return tuple(left + right)

    # -- the legacy single-term retrieval -----------------------------------

    def contexts_for_term(
        self,
        term: str | Sequence[str],
        *,
        window: int = 10,
    ) -> list[TermContext]:
        """Token windows around each occurrence of ``term``.

        Exactly reproduces the document-scan semantics of
        :meth:`repro.corpus.corpus.Corpus.contexts_for_term`: matches are
        consumed greedily left to right (an occurrence may not overlap
        the previous one), and windows clip at document boundaries.
        """
        needle = _as_needle(term)
        if not needle:
            raise CorpusError("term must contain at least one token")
        if window < 1:
            raise CorpusError(f"window must be >= 1, got {window}")
        span = len(needle)
        contexts: list[TermContext] = []
        last_doc, last_end = -1, 0
        for ordinal, start in sorted(self._occurrences(needle)):
            if ordinal == last_doc and start < last_end:
                continue  # overlaps the previous (greedy) match
            last_doc, last_end = ordinal, start + span
            contexts.append(
                TermContext(
                    doc_id=self._doc_ids[ordinal],
                    tokens=self._window(ordinal, start, span, window),
                    position=start,
                )
            )
        return contexts

    def term_frequency(self, term: str | Sequence[str]) -> int:
        """Number of (non-overlapping) occurrences of ``term``."""
        needle = _as_needle(term)
        if not needle:
            raise CorpusError("term must contain at least one token")
        if len(needle) == 1:
            return len(self._postings.get(needle[0], ()))
        count = 0
        last_doc, last_end = -1, 0
        for ordinal, start in sorted(self._occurrences(needle)):
            if ordinal == last_doc and start < last_end:
                continue
            last_doc, last_end = ordinal, start + len(needle)
            count += 1
        return count

    def document_frequency(self, term: str | Sequence[str]) -> int:
        """Number of documents containing ``term`` at least once."""
        needle = _as_needle(term)
        if not needle:
            raise CorpusError("term must contain at least one token")
        return len({ordinal for ordinal, __ in self._occurrences(needle)})

    # -- the multi-term retrieval -------------------------------------------

    def occurrence_records(
        self,
        terms: Iterable[str],
        *,
        window: int = 10,
    ) -> dict[str, list[tuple[str, tuple[str, ...]]]]:
        """(doc_id, window) records of every term of ``terms``.

        Exactly reproduces
        :func:`repro.linkage.context.find_occurrence_records`: overlapping
        occurrences of different terms are all reported, but at any single
        start position only the longest matching term records an
        occurrence.
        """
        needles: dict[str, tuple[str, ...]] = {}
        for term in terms:
            tokens = _as_needle(term)
            if not tokens:
                continue
            needles[" ".join(tokens)] = tokens

        # Longest match wins at each start position.  Two distinct keys
        # cannot tie: equal-length matches at one position are the same
        # token sequence, hence the same key.
        best: dict[tuple[int, int], tuple[int, str]] = {}
        for key, needle in needles.items():
            span = len(needle)
            for occurrence in self._occurrences(needle):
                incumbent = best.get(occurrence)
                if incumbent is None or span > incumbent[0]:
                    best[occurrence] = (span, key)

        records: dict[str, list[tuple[str, tuple[str, ...]]]] = {
            key: [] for key in needles
        }
        for (ordinal, start), (span, key) in sorted(best.items()):
            records[key].append(
                (
                    self._doc_ids[ordinal],
                    self._window(ordinal, start, span, window),
                )
            )
        return records


class ShardedCorpusIndex:
    """N single-shard :class:`CorpusIndex` partitions behind one query API.

    Documents are partitioned into ``n_shards`` contiguous, near-even
    ranges (shard *i* holds global ordinals ``[offsets[i],
    offsets[i+1])``), so every per-document computation — greedy
    matching, windows, longest-match arbitration — happens entirely
    inside one shard and global answers are ordered concatenations of
    shard answers.  All query methods return byte-identical results to a
    monolithic :class:`CorpusIndex` over the same documents, including
    :meth:`fingerprint`.

    Shard builds are independent, so ``n_workers > 1`` fans them out
    over a thread pool — and so are per-shard *query* traversals:
    every query method (:meth:`phrase_occurrences`,
    :meth:`contexts_for_term`, :meth:`term_frequency`,
    :meth:`document_frequency`, :meth:`token_frequency`,
    :meth:`occurrence_records`, :meth:`doc_lengths`) routes through
    :meth:`map_shards`, which reuses one lazily-created pool sized by
    the construction-time ``n_workers``.  Results are merged in shard
    order, so parallel answers are byte-identical to sequential ones.

    Parameters
    ----------
    documents:
        The documents to index (e.g. a :class:`~repro.corpus.corpus.Corpus`).
    n_shards:
        Number of partitions (>= 1).  Shards may be empty when there are
        fewer documents than shards.
    n_workers:
        Threads for the shard builds *and* the per-shard query fan-out
        (1 = sequential; answers are identical either way).
    parallel_query_min_tokens:
        Minimum indexed tokens before bulk queries fan out over the
        pool by default; ``None`` (default) reads the
        ``REPRO_PARALLEL_QUERY_MIN_TOKENS`` environment variable and
        falls back to :data:`PARALLEL_QUERY_MIN_TOKENS`.

    Example
    -------
    >>> from repro.corpus.corpus import Corpus
    >>> from repro.corpus.document import Document
    >>> corpus = Corpus([Document("d", [["corneal", "injury", "heals"]])])
    >>> ShardedCorpusIndex(corpus, n_shards=2).term_frequency("corneal injury")
    1
    """

    def __init__(
        self,
        documents: "Iterable[Document]" = (),
        *,
        n_shards: int = 2,
        n_workers: int = 1,
        parallel_query_min_tokens: int | None = None,
    ) -> None:
        if n_shards < 1:
            raise CorpusError(f"n_shards must be >= 1, got {n_shards}")
        if n_workers < 1:
            raise CorpusError(f"n_workers must be >= 1, got {n_workers}")
        documents = list(documents)
        base, remainder = divmod(len(documents), n_shards)
        chunks: list[list] = []
        start = 0
        for shard in range(n_shards):
            size = base + (1 if shard < remainder else 0)
            chunks.append(documents[start : start + size])
            start += size
        if n_workers > 1 and len(documents) > 1:
            with ThreadPoolExecutor(max_workers=n_workers) as pool:
                self._shards = list(pool.map(CorpusIndex, chunks))
        else:
            self._shards = [CorpusIndex(chunk) for chunk in chunks]
        self._fingerprint = EMPTY_FINGERPRINT
        for shard in self._shards:
            self._fingerprint = shard.extend_fingerprint(self._fingerprint)
        self._n_workers = n_workers
        self._parallel_min_tokens = _resolve_parallel_query_min_tokens(
            parallel_query_min_tokens
        )
        self._doc_lengths: dict[str, int] | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._pool_guard = threading.Lock()

    @classmethod
    def from_shards(
        cls,
        shards: "Sequence[CorpusIndex]",
        *,
        fingerprint: str,
        n_workers: int = 1,
        parallel_query_min_tokens: int | None = None,
    ) -> "ShardedCorpusIndex":
        """Wrap prebuilt single-shard indexes without re-indexing.

        The store's reopen path (:mod:`repro.corpus.index_store`)
        composes mmap-backed shards this way: the shards already exist,
        and ``fingerprint`` — the whole-corpus chain a monolithic build
        would compute — is recorded in the store manifest, so nothing
        is re-hashed here.  Shards must cover contiguous global
        document ranges in the given order, exactly as a fresh build
        partitions them.
        """
        if not shards:
            raise CorpusError("from_shards requires at least one shard")
        if n_workers < 1:
            raise CorpusError(f"n_workers must be >= 1, got {n_workers}")
        index = cls.__new__(cls)
        index._shards = list(shards)
        index._fingerprint = fingerprint
        index._n_workers = n_workers
        index._parallel_min_tokens = _resolve_parallel_query_min_tokens(
            parallel_query_min_tokens
        )
        index._doc_lengths = None
        index._pool = None
        index._pool_guard = threading.Lock()
        return index

    # -- pickling (process workers ship the index; pools don't pickle) -----

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_pool"] = None
        state["_pool_guard"] = None
        # Derived cache; dropping it keeps process-pool pickles small.
        state["_doc_lengths"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._pool = None
        self._pool_guard = threading.Lock()

    # -- shard plumbing ------------------------------------------------------

    @property
    def n_shards(self) -> int:
        """Number of partitions."""
        return len(self._shards)

    def shards(self) -> tuple[CorpusIndex, ...]:
        """The underlying single-shard indexes, in global document order."""
        return tuple(self._shards)

    def shard_offsets(self) -> tuple[int, ...]:
        """Global ordinal of each shard's first document."""
        offsets: list[int] = []
        total = 0
        for shard in self._shards:
            offsets.append(total)
            total += shard.n_documents()
        return tuple(offsets)

    def map_shards(self, fn, *, n_workers: int | None = None) -> list:
        """``[fn(shard) for shard in shards]``, optionally over threads.

        ``n_workers`` defaults to the construction-time worker count,
        so an index built with ``n_workers > 1`` answers bulk queries
        in parallel without every call site re-plumbing the knob — but
        only once the corpus passes
        :data:`PARALLEL_QUERY_MIN_TOKENS`, below which dispatch
        overhead beats the traversal win (pass ``n_workers`` explicitly
        to force either mode).  The pool is created lazily on first
        parallel use and reused for the index's lifetime (it is sized
        by the *first* parallel call and never pickled — process-pool
        clones rebuild their own).  The per-shard results come back in
        shard (= global document) order regardless of worker
        scheduling, so order-dependent merges stay deterministic.
        """
        workers = self._default_query_workers() if n_workers is None \
            else n_workers
        if workers > 1 and len(self._shards) > 1:
            return list(self._executor(workers).map(fn, self._shards))
        return [fn(shard) for shard in self._shards]

    def _default_query_workers(self) -> int:
        if self._n_workers <= 1:
            return 1
        if self.n_tokens() < self._parallel_min_tokens:
            return 1
        return self._n_workers

    def _executor(self, workers: int) -> ThreadPoolExecutor:
        with self._pool_guard:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=workers,
                    thread_name_prefix="repro-shard-query",
                )
            return self._pool

    def add_documents(self, documents: "Iterable[Document]") -> None:
        """Append ``documents`` to the last shard in O(their tokens).

        Contiguity of the shard ranges is preserved (new documents take
        the highest global ordinals), so query parity with a monolithic
        index over the same sequence is maintained, and the global
        fingerprint chain is extended exactly as a fresh build would
        compute it.

        Like :meth:`CorpusIndex.add_documents`, the batch is
        all-or-nothing: every document id is validated against *every*
        shard (and within the batch) before any shard is touched, so a
        rejected add leaves no shard partially extended and the global
        fingerprint chain unmoved.
        """
        documents = list(documents)
        batch_ids: set[str] = set()
        for doc in documents:
            if doc.doc_id in batch_ids:
                raise CorpusError(
                    f"duplicate document id {doc.doc_id!r}"
                )
            batch_ids.add(doc.doc_id)
            for shard in self._shards:
                if doc.doc_id in shard._ordinals:
                    raise CorpusError(
                        f"duplicate document id {doc.doc_id!r}"
                    )
        target = self._shards[-1]
        before = target.n_documents()
        target.add_documents(documents)
        with self._pool_guard:
            if documents:
                self._doc_lengths = None
            for doc_id, tokens in zip(
                target._doc_ids[before:],
                target._doc_tokens[before:],
                strict=True,
            ):
                self._fingerprint = _extend_fingerprint(
                    self._fingerprint, doc_id, tokens
                )

    # -- corpus-level statistics --------------------------------------------

    def fingerprint(self) -> str:
        """The whole-corpus content hash (equals the monolithic one)."""
        return self._fingerprint

    def n_documents(self) -> int:
        """Number of indexed documents across all shards."""
        return sum(shard.n_documents() for shard in self._shards)

    def n_tokens(self) -> int:
        """Total token count across all shards."""
        return sum(shard.n_tokens() for shard in self._shards)

    def vocabulary_size(self) -> int:
        """Number of distinct tokens across all shards."""
        vocabulary: set[str] = set()
        for shard in self._shards:
            vocabulary.update(shard._postings)
        return len(vocabulary)

    def doc_lengths(self) -> dict[str, int]:
        """``doc_id → token count`` over all indexed documents.

        Merged once and cached (invalidated by :meth:`add_documents`);
        treat the returned dict as read-only shared storage.
        """
        if self._doc_lengths is None:
            # Merge outside the guard: map_shards may take _pool_guard
            # itself to lazily build the executor.
            lengths: dict[str, int] = {}
            for shard_lengths in self.map_shards(
                lambda shard: shard.doc_lengths()
            ):
                lengths.update(shard_lengths)
            with self._pool_guard:
                self._doc_lengths = lengths
        return self._doc_lengths

    def token_documents(self) -> list[list[str]]:
        """The cached flat token list of every document, in corpus order.

        As with :meth:`CorpusIndex.token_documents`, the lists are
        shared storage — treat them as read-only.
        """
        return [
            tokens for shard in self._shards for tokens in shard._doc_tokens
        ]

    def token_frequency(self, token: str) -> int:
        """Occurrences of a single ``token`` (0 when unseen)."""
        return sum(
            self.map_shards(lambda shard: shard.token_frequency(token))
        )

    # -- phrase lookup -------------------------------------------------------

    def phrase_occurrences(
        self, term: str | Sequence[str]
    ) -> list[tuple[int, int]]:
        """Every ``(global doc ordinal, start position)`` of ``term``.

        Shard answers are already sorted and shards cover increasing
        ordinal ranges, so offset-shifted concatenation (in shard
        order) is the global sorted result.
        """
        needle = _as_needle(term)
        if not needle:
            raise CorpusError("term must contain at least one token")
        out: list[tuple[int, int]] = []
        per_shard = self.map_shards(lambda shard: shard._occurrences(needle))
        for offset, occurrences in zip(self.shard_offsets(), per_shard, strict=True):
            out.extend(
                (offset + ordinal, position)
                for ordinal, position in occurrences
            )
        return out

    def contexts_for_term(
        self,
        term: str | Sequence[str],
        *,
        window: int = 10,
    ) -> list[TermContext]:
        """Token windows around each occurrence of ``term``.

        Greedy matching never crosses a document, and documents never
        cross a shard, so per-shard retrieval concatenated in shard
        order is byte-identical to the monolithic retrieval.
        """
        per_shard = self.map_shards(
            lambda shard: shard.contexts_for_term(term, window=window)
        )
        return [context for contexts in per_shard for context in contexts]

    def term_frequency(self, term: str | Sequence[str]) -> int:
        """Number of (non-overlapping) occurrences of ``term``."""
        return sum(
            self.map_shards(lambda shard: shard.term_frequency(term))
        )

    def document_frequency(self, term: str | Sequence[str]) -> int:
        """Number of documents containing ``term`` at least once."""
        return sum(
            self.map_shards(lambda shard: shard.document_frequency(term))
        )

    # -- the multi-term retrieval -------------------------------------------

    def occurrence_records(
        self,
        terms: Iterable[str],
        *,
        window: int = 10,
    ) -> dict[str, list[tuple[str, tuple[str, ...]]]]:
        """(doc_id, window) records of every term of ``terms``.

        Longest-match arbitration happens at single start positions
        (inside one document, hence one shard), so merging per-shard
        records in shard order reproduces the monolithic output exactly.
        """
        terms = list(terms)
        merged: dict[str, list[tuple[str, tuple[str, ...]]]] = {}
        for records in self.map_shards(
            lambda shard: shard.occurrence_records(terms, window=window)
        ):
            for key, rows in records.items():
                merged.setdefault(key, []).extend(rows)
        return merged
