"""HTTP clients of the cache/enrichment service.

:class:`RemoteCacheStore` is the served counterpart of
:class:`~repro.polysemy.cache_store.DiskCacheStore`: it implements the
same :class:`~repro.polysemy.cache_store.CacheStore` protocol, but every
``get``/``put`` is an HTTP round trip to a long-lived
``repro serve`` process, so warm Step II vectors are shared across
*machines*, not just across processes on one host.

Design constraints (they shape everything below):

* **The pipeline must never block on the service.**  Every network
  failure — connection refused, timeout, a mid-response disconnect, a
  malformed payload — degrades to a clean cache miss (``get`` returns
  None, ``put`` is dropped) and bumps the ``remote_errors`` counter;
  nothing ever raises into the enrichment run.  A dead cache service
  costs recomputation, never correctness or uptime.
* **Connection reuse.**  One persistent ``http.client.HTTPConnection``
  per store (guarded by a lock), re-established transparently when the
  server closes it; a stale keep-alive connection gets one silent
  retry on a fresh connection before the operation counts as failed.
* **Batched round trips.**  :meth:`RemoteCacheStore.get_many` /
  :meth:`~RemoteCacheStore.put_many` coalesce N keys into
  ``ceil(N / batch_size)`` framed ``/vectors/batch`` requests (see the
  batch codec in :mod:`repro.service.wire`), so a warm pipeline run
  costs O(batches) round trips instead of O(terms).  A server without
  the batch routes (a PR 5 deployment) is detected on the first
  unmarked 404 and the store silently falls back to per-key requests —
  callers never need to know which protocol is in use.
* **Process-pool friendly.**  The store pickles to its URL + timeout
  (like :class:`DiskCacheStore` pickles to its directory), so
  ``worker_backend="process"`` workers reopen their own connection and
  read the service directly.

:class:`ServiceClient` is the JSON-level companion for everything that
is not a vector: stats, cache layout (``repro cache-info``), and the
submit/poll/fetch lifecycle of server-side enrichment jobs.
"""

from __future__ import annotations

import contextlib
import http.client
import json
import socket
import threading
import time
from urllib.parse import urlsplit

import numpy as np

from repro.errors import ValidationError
from repro.polysemy.cache_store import CacheKey
from repro.service.wire import (
    HEADER_CRC,
    HEADER_DTYPE,
    HEADER_MISS,
    HEADER_SHAPE,
    MAX_BATCH_ITEMS,
    decode_vector,
    decode_vector_batch,
    encode_key,
    encode_key_batch,
    encode_vector,
    encode_vector_batch,
)

#: Default per-request network timeout (seconds).
DEFAULT_TIMEOUT = 5.0

#: Default keys per batched round trip.  Large enough that a warm
#: pipeline run is a handful of requests, small enough that one frame
#: stays well under the server's body cap even for wide vectors.
DEFAULT_BATCH_SIZE = 256

#: Exceptions that mean "the network/service failed", never the caller.
_NETWORK_ERRORS = (OSError, http.client.HTTPException)


class _NoDelayHTTPConnection(http.client.HTTPConnection):
    """HTTPConnection with Nagle disabled.

    Cache traffic is many small request/response pairs on one
    keep-alive connection; leaving Nagle on lets it interact with
    delayed ACKs into ~40ms stalls per round trip — orders of
    magnitude over the actual localhost/LAN cost.
    """

    def connect(self) -> None:
        super().connect()
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


class ServiceError(ValidationError):
    """A service request failed where the caller asked for strictness.

    Only raised by :class:`ServiceClient` (the operator-facing JSON
    client); :class:`RemoteCacheStore` never raises it.
    """


def _parse_base_url(base_url: str) -> tuple[str, int, str]:
    """``(host, port, path_prefix)`` of a service base URL."""
    parsed = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
    if parsed.scheme not in ("", "http"):
        raise ValidationError(
            f"cache service URL must be http://, got {base_url!r}"
        )
    if not parsed.hostname:
        raise ValidationError(f"cache service URL has no host: {base_url!r}")
    try:
        port = parsed.port  # urlsplit raises here on a bad/oob port
    except ValueError as exc:
        raise ValidationError(
            f"cache service URL has an invalid port: {base_url!r} ({exc})"
        ) from None
    return (
        parsed.hostname,
        port or 80,
        parsed.path.rstrip("/"),
    )


class _HttpChannel:
    """One lock-guarded, reused HTTP connection with stale-retry."""

    def __init__(self, base_url: str, timeout: float) -> None:
        if timeout <= 0:
            raise ValidationError(f"timeout must be > 0, got {timeout}")
        self.base_url = base_url
        self.timeout = timeout
        self._host, self._port, self._prefix = _parse_base_url(base_url)
        self._lock = threading.Lock()
        self._conn: http.client.HTTPConnection | None = None

    def close(self) -> None:
        with self._lock:
            self._close_locked()

    def _close_locked(self) -> None:
        if self._conn is not None:
            # Narrow on purpose: close() can only fail with a
            # socket-layer OSError (already-reset peer, EBADF); anything
            # else would be a programming error worth surfacing.
            with contextlib.suppress(OSError):
                self._conn.close()
            self._conn = None

    def request(
        self,
        method: str,
        path: str,
        *,
        body: bytes | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes] | None:
        """``(status, headers, body)`` of one request, None on failure.

        The response is fully read (keep-alive hygiene).  A failure on
        a *reused* connection gets one retry on a fresh connection —
        the server may simply have closed an idle socket.
        """
        with self._lock:
            for attempt in (0, 1):
                fresh = self._conn is None
                if fresh:
                    self._conn = _NoDelayHTTPConnection(
                        self._host, self._port, timeout=self.timeout
                    )
                try:
                    self._conn.request(
                        method,
                        self._prefix + path,
                        body=body,
                        headers=headers or {},
                    )
                    response = self._conn.getresponse()
                    payload = response.read()
                    return (
                        response.status,
                        {k.lower(): v for k, v in response.getheaders()},
                        payload,
                    )
                # Justification: the channel returns None and every caller
                # (RemoteCacheStore) counts that None as one remote_errors
                # increment; counting here too would double-count.
                except _NETWORK_ERRORS:  # repro-lint: disable=RL002
                    self._close_locked()
                    if fresh or attempt:
                        return None
            return None  # pragma: no cover - loop always returns


class RemoteCacheStore:
    """:class:`~repro.polysemy.cache_store.CacheStore` over HTTP.

    Parameters
    ----------
    base_url:
        Where ``repro serve`` listens, e.g. ``http://cache-host:8750``
        (a bare ``host:port`` is accepted).
    timeout:
        Per-request network timeout in seconds.  Keep it small: the
        worst case is paid per candidate on an unresponsive server,
        and a timeout is just a miss.
    batch_size:
        Keys per batched ``/vectors/batch`` round trip (see
        :meth:`get_many` / :meth:`put_many`).  ``1`` disables batching
        entirely — every lookup is a single-vector request, byte for
        byte the PR 5 protocol (kept as an explicit compatibility and
        benchmarking mode).

    Example
    -------
    >>> store = RemoteCacheStore("http://127.0.0.1:1")  # nothing there
    >>> store.get(("fp", "heart attack", "cfg")) is None  # clean miss
    True
    >>> store.stats()["remote_errors"]
    1
    """

    #: Worker store-hits merged back by the pipeline land on this
    #: counter (see :meth:`repro.polysemy.cache.FeatureCache.stats`).
    WORKER_HIT_KEY = "remote_hits"

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = DEFAULT_TIMEOUT,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        if not 1 <= batch_size <= MAX_BATCH_ITEMS:
            raise ValidationError(
                f"batch_size must be in [1, {MAX_BATCH_ITEMS}], "
                f"got {batch_size}"
            )
        self._channel = _HttpChannel(base_url, timeout)
        self._batch_size = batch_size
        # None = untested; False = server answered an unmarked 404 on
        # the batch route (a pre-batch deployment) → per-key fallback.
        self._batch_supported: bool | None = None if batch_size > 1 else False
        self._counter_lock = threading.Lock()
        self._remote_hits = 0
        self._remote_errors = 0

    # -- pickling (process workers reopen their own connection) -----------

    def __getstate__(self) -> dict:
        return {
            "base_url": self._channel.base_url,
            "timeout": self._channel.timeout,
            "batch_size": self._batch_size,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(
            state["base_url"],
            timeout=state["timeout"],
            batch_size=state.get("batch_size", DEFAULT_BATCH_SIZE),
        )

    @property
    def base_url(self) -> str:
        """The configured service URL."""
        return self._channel.base_url

    @property
    def timeout(self) -> float:
        """The per-request network timeout (seconds)."""
        return self._channel.timeout

    @property
    def batch_size(self) -> int:
        """Keys coalesced per batched round trip (1 = per-key mode)."""
        return self._batch_size

    def close(self) -> None:
        """Drop the persistent connection (reopened on next use)."""
        self._channel.close()

    @property
    def error_count(self) -> int:
        """Local failed-operation count — no network round trip.

        The pipeline reads this around worker batches to ship each
        process-pool worker's failures back to the parent's report.
        """
        with self._counter_lock:
            return self._remote_errors

    def _error(self) -> None:
        with self._counter_lock:
            self._remote_errors += 1

    # -- CacheStore protocol ----------------------------------------------

    def get(self, key: CacheKey) -> np.ndarray | None:
        result = self._channel.request(
            "GET", "/cache/vector?" + encode_key(key)
        )
        if result is None:
            self._error()
            return None
        status, headers, body = result
        if status == 404 and headers.get(HEADER_MISS.lower()) == "1":
            return None  # an honest miss from the service, not a failure
        if status != 200:
            # Including unmarked 404s: those come from the wrong server
            # or a wrong path prefix, and counting them as plain misses
            # would hide the misconfiguration behind a cold cache.
            self._error()
            return None
        vector = decode_vector(
            headers.get(HEADER_DTYPE.lower()),
            headers.get(HEADER_SHAPE.lower()),
            headers.get(HEADER_CRC.lower()),
            body,
        )
        if vector is None:
            self._error()
            return None
        with self._counter_lock:
            self._remote_hits += 1
        return vector

    def put(self, key: CacheKey, vector: np.ndarray) -> None:
        headers, body = encode_vector(np.asarray(vector))
        result = self._channel.request(
            "PUT",
            "/cache/vector?" + encode_key(key),
            body=body,
            headers=headers,
        )
        if result is None or result[0] not in (200, 204):
            self._error()

    # -- batched round trips ----------------------------------------------

    def _batch_unsupported(self, result) -> bool:
        """True when the response says "no such route" (old server).

        An *unmarked* 404 from the batch route means the server predates
        the batch protocol (the modern server marks its real responses);
        remember that and fall back to per-key requests transparently —
        unlike the single-vector route, where an unmarked 404 is a
        misrouted URL, here it is an expected deployment state.
        """
        if result is None or result[0] != 404:
            return False
        _, headers, _ = result
        return headers.get(HEADER_MISS.lower()) != "1"

    def get_many(
        self, keys: list[CacheKey]
    ) -> dict[CacheKey, np.ndarray]:
        """Fetch many keys in O(batches) round trips; absent keys omitted.

        Every batch that fails — network fault, malformed frame, an
        unexpected status — counts **one** failure and degrades all of
        its keys to clean misses; a server without the batch route
        flips the store into per-key mode for its lifetime.
        """
        found: dict[CacheKey, np.ndarray] = {}
        batch_hits = 0
        pending = list(keys)
        if self._batch_supported is not False:
            remaining: list[CacheKey] = []
            for start in range(0, len(pending), self._batch_size):
                chunk = pending[start : start + self._batch_size]
                result = self._channel.request(
                    "POST",
                    "/vectors/batch",
                    body=encode_key_batch(chunk),
                    headers={"Content-Type": "application/octet-stream"},
                )
                if self._batch_unsupported(result):
                    with self._counter_lock:
                        self._batch_supported = False
                    remaining.extend(pending[start:])
                    break
                if result is None or result[0] != 200:
                    self._error()
                    continue
                entries = decode_vector_batch(result[2])
                if entries is None:
                    self._error()
                    continue
                with self._counter_lock:
                    self._batch_supported = True
                for key, vector in entries:
                    if vector is not None:
                        found[key] = vector
                        batch_hits += 1
            else:
                remaining = []
            pending = remaining
        if batch_hits:
            with self._counter_lock:
                self._remote_hits += batch_hits
        for key in pending:  # per-key fallback (old server / batch_size=1)
            vector = self.get(key)  # counts its own hits/errors
            if vector is not None:
                found[key] = vector
        return found

    def put_many(
        self, entries: list[tuple[CacheKey, np.ndarray]]
    ) -> None:
        """Store many vectors in O(batches) round trips.

        Failure semantics mirror :meth:`put`: a failed batch drops its
        writes silently and counts one failure.
        """
        pending = list(entries)
        if self._batch_supported is not False:
            remaining: list[tuple[CacheKey, np.ndarray]] = []
            for start in range(0, len(pending), self._batch_size):
                chunk = pending[start : start + self._batch_size]
                result = self._channel.request(
                    "PUT",
                    "/vectors/batch",
                    body=encode_vector_batch(
                        [(key, np.asarray(vec)) for key, vec in chunk]
                    ),
                    headers={"Content-Type": "application/octet-stream"},
                )
                if self._batch_unsupported(result):
                    with self._counter_lock:
                        self._batch_supported = False
                    remaining.extend(pending[start:])
                    break
                if result is None or result[0] not in (200, 204):
                    self._error()
                    continue
                with self._counter_lock:
                    self._batch_supported = True
            else:
                remaining = []
            pending = remaining
        for key, vector in pending:  # per-key fallback
            self.put(key, vector)

    def __len__(self) -> int:
        stats = self._fetch_json("/stats")
        if stats is None:
            return 0
        try:
            return int(stats["entries"])
        except (KeyError, TypeError, ValueError):
            return 0

    def clear(self) -> None:
        result = self._channel.request("POST", "/cache/clear")
        if result is None or result[0] not in (200, 204):
            # The server's entries are still there: keep the local
            # counters (including the failure just recorded) honest.
            self._error()
            return
        with self._counter_lock:
            self._remote_hits = 0
            self._remote_errors = 0

    def stats(self) -> dict[str, int]:
        """Client-local counters plus the server's absolute store size.

        ``remote_hits``/``remote_errors`` are this handle's traffic;
        ``store_bytes``/``entries`` come from the server (0 when it is
        unreachable — stats polling never counts as a failure);
        ``disk_hits``/``evictions`` are server-side notions other
        clients share, so they are reported as 0 here to keep the
        report's per-run deltas client-local.
        """
        remote = self._fetch_json("/stats") or {}
        with self._counter_lock:
            return {
                "disk_hits": 0,
                "evictions": 0,
                "store_bytes": int(remote.get("store_bytes", 0) or 0),
                "remote_hits": self._remote_hits,
                "remote_errors": self._remote_errors,
            }

    # -- shared JSON plumbing ---------------------------------------------

    def _fetch_json(self, path: str) -> dict | None:
        result = self._channel.request("GET", path)
        if result is None or result[0] != 200:
            return None
        try:
            payload = json.loads(result[2].decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None


class ServiceClient:
    """JSON client for the service's operational surface.

    Unlike :class:`RemoteCacheStore` this client is *strict*: operators
    asking for stats or submitting a job want the error, not a silent
    miss, so failures raise :class:`ServiceError`.
    """

    def __init__(
        self, base_url: str, *, timeout: float = DEFAULT_TIMEOUT
    ) -> None:
        self._channel = _HttpChannel(base_url, timeout)

    @property
    def base_url(self) -> str:
        """The configured service URL."""
        return self._channel.base_url

    def close(self) -> None:
        """Drop the persistent connection."""
        self._channel.close()

    def _json(
        self,
        method: str,
        path: str,
        *,
        payload: dict | None = None,
        expect: tuple[int, ...] = (200,),
        headers: dict[str, str] | None = None,
    ) -> dict:
        body = None
        headers = dict(headers or {})
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        result = self._channel.request(
            method, path, body=body, headers=headers
        )
        if result is None:
            raise ServiceError(
                f"cache service unreachable at {self.base_url}"
            )
        status, _, data = result
        try:
            decoded = json.loads(data.decode("utf-8")) if data else {}
        except (UnicodeDecodeError, ValueError):
            decoded = {}
        if status not in expect:
            detail = decoded.get("error") if isinstance(decoded, dict) else None
            raise ServiceError(
                f"{method} {path} failed with HTTP {status}"
                + (f": {detail}" if detail else "")
            )
        if not isinstance(decoded, dict):
            raise ServiceError(f"{method} {path} returned non-object JSON")
        return decoded

    # -- operational surface ----------------------------------------------

    def healthz(self) -> dict:
        """The service liveness document."""
        return self._json("GET", "/healthz")

    def stats(self) -> dict:
        """Server-side cache counters (entries, store_bytes, ...)."""
        return self._json("GET", "/stats")

    def stats_conditional(
        self, etag: str | None = None
    ) -> tuple[dict | None, str | None]:
        """Conditional stats poll: ``(document, etag)``.

        Pass the etag of the previous poll; an unchanged document
        answers ``304 Not Modified`` with an empty body and this
        returns ``(None, etag)`` — the poller keeps its cached copy
        without the server re-serialising (or the client re-parsing)
        anything.
        """
        headers = {"If-None-Match": etag} if etag else {}
        result = self._channel.request("GET", "/stats", headers=headers)
        if result is None:
            raise ServiceError(
                f"cache service unreachable at {self.base_url}"
            )
        status, response_headers, body = result
        new_etag = response_headers.get("etag")
        if status == 304:
            return None, new_etag or etag
        if status != 200:
            raise ServiceError(f"GET /stats failed with HTTP {status}")
        try:
            document = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServiceError(f"GET /stats returned non-JSON: {exc}") from exc
        return document, new_etag

    def metrics(self) -> str:
        """The raw Prometheus text exposition of ``GET /metrics``."""
        result = self._channel.request("GET", "/metrics")
        if result is None:
            raise ServiceError(
                f"cache service unreachable at {self.base_url}"
            )
        status, _, body = result
        if status != 200:
            raise ServiceError(f"GET /metrics failed with HTTP {status}")
        return body.decode("utf-8", errors="replace")

    def cache_info(self) -> dict:
        """The store's generation/shard layout (``repro cache-info``)."""
        return self._json("GET", "/cache/info")

    def corpora(self) -> list[str]:
        """Names of the corpora registered for server-side enrichment."""
        return list(self._json("GET", "/corpora").get("corpora", []))

    def submit_job(
        self,
        corpus: str,
        *,
        config: dict | None = None,
        idempotency_key: str | None = None,
    ) -> str:
        """Submit an enrichment job; returns its job id.

        With ``idempotency_key`` set, resubmitting the same key (after
        a timeout, a crashed client, a retrying queue) returns the
        *original* job's id instead of enqueueing a duplicate run; the
        same key with a different corpus/config is a conflict and
        raises.  See :meth:`submit_job_detailed` to observe whether the
        submission was replayed.
        """
        job_id, _ = self.submit_job_detailed(
            corpus, config=config, idempotency_key=idempotency_key
        )
        return job_id

    def submit_job_detailed(
        self,
        corpus: str,
        *,
        config: dict | None = None,
        idempotency_key: str | None = None,
    ) -> tuple[str, bool]:
        """``(job_id, replayed)`` of one (possibly deduplicated) submit."""
        headers = {}
        if idempotency_key is not None:
            headers["Idempotency-Key"] = idempotency_key
        response = self._json(
            "POST",
            "/jobs",
            payload={"corpus": corpus, "config": config or {}},
            expect=(200, 202),  # 202 = accepted, 200 = idempotent replay
            headers=headers,
        )
        return str(response["job"]), bool(response.get("replayed"))

    def job(self, job_id: str) -> dict:
        """The current status document of one job."""
        return self._json("GET", f"/jobs/{job_id}")

    def wait_for_job(
        self, job_id: str, *, timeout: float = 120.0, poll: float = 0.1
    ) -> dict:
        """Poll until the job leaves the queue; returns its final doc.

        Raises :class:`ServiceError` when ``timeout`` elapses first or
        the job failed server-side.
        """
        deadline = time.monotonic() + timeout
        while True:
            document = self.job(job_id)
            status = document.get("status")
            if status == "done":
                return document
            if status == "failed":
                raise ServiceError(
                    f"job {job_id} failed: {document.get('error')}"
                )
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {status!r} after {timeout}s"
                )
            time.sleep(poll)

    # -- ontology recommendation --------------------------------------------

    def recommend(
        self,
        *,
        text: str | None = None,
        corpus: str | None = None,
        ontologies: list[str] | None = None,
        acceptance_corpus: str | None = None,
        config: dict | None = None,
        mode: str | None = None,
        idempotency_key: str | None = None,
    ) -> dict:
        """``POST /recommend``: rank the served ontologies.

        Exactly one of ``text`` / ``corpus`` (a registered scenario
        name) is required.  Small text is answered synchronously — the
        returned dict is the full
        :meth:`~repro.recommend.report.RecommendationReport.to_dict`
        document; corpus input and oversized text return a queued job
        document (``{"job": id, "replayed": bool}``) to poll with
        :meth:`wait_for_job` (the report arrives under its ``report``
        key).  ``mode`` forces the routing (``"sync"`` / ``"job"``).
        """
        payload: dict = {}
        if text is not None:
            payload["text"] = text
        if corpus is not None:
            payload["corpus"] = corpus
        if ontologies is not None:
            payload["ontologies"] = list(ontologies)
        if acceptance_corpus is not None:
            payload["acceptance_corpus"] = acceptance_corpus
        if config is not None:
            payload["config"] = config
        if mode is not None:
            payload["mode"] = mode
        headers = {}
        if idempotency_key is not None:
            headers["Idempotency-Key"] = idempotency_key
        return self._json(
            "POST",
            "/recommend",
            payload=payload,
            expect=(200, 202),  # 200 = sync report / replay, 202 = queued
            headers=headers,
        )

    # -- streaming deltas ---------------------------------------------------

    def post_documents(
        self,
        scenario: str,
        documents: list[dict],
        *,
        idempotency_key: str | None = None,
    ) -> tuple[str, bool]:
        """Stream ``documents`` into ``scenario``: ``(job_id, replayed)``.

        ``documents`` use the corpus JSONL wire shape — dicts with a
        ``doc_id`` plus ``sentences`` (token lists) or ``text`` (raw,
        tokenised server-side).  The server queues a delta
        re-enrichment job; poll it with :meth:`wait_for_job` (its
        report is the :class:`~repro.workflow.streaming.ReportDiff`
        document) or read the scenario's history via :meth:`deltas`.
        """
        headers = {}
        if idempotency_key is not None:
            headers["Idempotency-Key"] = idempotency_key
        response = self._json(
            "POST",
            f"/scenarios/{scenario}/documents",
            payload={"documents": documents},
            expect=(200, 202),  # 202 = accepted, 200 = idempotent replay
            headers=headers,
        )
        return str(response["job"]), bool(response.get("replayed"))

    def deltas(self, scenario: str, *, since: int = 0) -> list[dict]:
        """The scenario's delta diff documents with ``seq > since``."""
        path = f"/scenarios/{scenario}/deltas"
        if since:
            path += f"?since={since}"
        response = self._json("GET", path)
        return list(response.get("deltas", []))
