"""Server-side enrichment jobs: submit, poll, fetch.

The service is not just a vector cache — it *runs* enrichment too, the
Aber-OWL deployment shape: corpora registered at startup, clients
submitting jobs over HTTP and polling for the finished
:class:`~repro.workflow.report.EnrichmentReport`.

A job names a registered corpus and may override a whitelisted subset
of :class:`~repro.workflow.config.EnrichmentConfig` fields (anything
structural — cache wiring — is forced server-side so every job shares
the service's one store).  Jobs run on a small worker pool
(``job_workers``, default 1 so the single-writer discipline of the
shared :class:`~repro.polysemy.cache_store.DiskCacheStore` matches the
pipeline's); loaded corpora/ontologies are cached per name, so the
second job against a corpus skips the parse *and* starts with a warm
feature cache.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, fields
from pathlib import Path

from repro.corpus.corpus import Corpus
from repro.corpus.document import Document
from repro.corpus.io import read_corpus_jsonl
from repro.errors import ValidationError
from repro.ontology.io import read_ontology_json
from repro.ontology.model import Ontology
from repro.corpus.index import CorpusIndex
from repro.polysemy.cache_store import DiskCacheStore
from repro.recommend.config import RecommendConfig
from repro.recommend.engine import Recommender
from repro.recommend.registry import OntologyRegistry
from repro.service.metrics import ServiceMetrics
from repro.workflow.config import EnrichmentConfig
from repro.workflow.pipeline import OntologyEnricher
from repro.workflow.streaming import StreamingEnricher

#: Config fields a job may NOT override: the service owns cache wiring
#: (every job must share the server's store) and worker plumbing (a
#: remote client must not control server-side process fan-out; jobs
#: parallelise across each other via ``job_workers`` instead).
_LOCKED_CONFIG_FIELDS = frozenset(
    {
        "cache_dir",
        "cache_max_bytes",
        "cache_url",
        "feature_cache",
        "worker_backend",
        "n_workers",
        "index_dir",
    }
)

#: Finished/failed jobs kept for polling before the oldest are dropped
#: (the server is long-lived; unbounded retention would leak reports).
DEFAULT_MAX_FINISHED_JOBS = 256

#: Delta diff documents retained per scenario for ``GET .../deltas``
#: (sequence numbers stay monotonic across the drop, so a poller that
#: fell behind sees the gap instead of silently missing diffs).
DEFAULT_MAX_DELTAS = 256

#: Longest accepted ``Idempotency-Key`` (these are client-chosen opaque
#: tokens, typically UUIDs; anything longer is a confused client).
MAX_IDEMPOTENCY_KEY_LENGTH = 200


class IdempotencyConflictError(ValidationError):
    """The same ``Idempotency-Key`` arrived with a *different* payload.

    Replaying a submission is safe only when it is byte-for-byte the
    same request; a reused key on different work is a client bug the
    server must surface (HTTP 409), never silently resolve either way.
    """


@dataclass
class Job:
    """One enrichment job's lifecycle record.

    ``kind`` distinguishes full enrichment runs (``"enrich"``) from
    streaming delta re-enrichments (``"delta"``, whose ``report`` is a
    :meth:`~repro.workflow.streaming.ReportDiff.to_dict` document).
    """

    job_id: str
    corpus: str
    overrides: dict
    kind: str = "enrich"
    status: str = "queued"  # queued | running | done | failed
    error: str | None = None
    report: dict | None = None
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    idempotency_key: str | None = None

    def to_dict(self) -> dict:
        """JSON document served by ``GET /jobs/<id>``."""
        document = {
            "job": self.job_id,
            "corpus": self.corpus,
            "overrides": self.overrides,
            "kind": self.kind,
            "status": self.status,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.error is not None:
            document["error"] = self.error
        if self.report is not None:
            document["report"] = self.report
        if self.idempotency_key is not None:
            document["idempotency_key"] = self.idempotency_key
        return document


class JobManager:
    """Run enrichment jobs against named corpora on a shared store.

    Parameters
    ----------
    corpora:
        ``name -> (ontology_json_path, corpus_jsonl_path)`` of the
        corpora clients may enrich (the ``repro generate`` layout).
    store:
        The service's shared cache store; jobs are forced onto it so
        their Step II vectors land where every other client reads.
    job_workers:
        Concurrent enrichment jobs (default 1: jobs queue behind each
        other, matching the store's single-writer discipline).
    index_dir:
        Optional :class:`~repro.corpus.index_store.IndexStore` root:
        registered corpora's indexes persist there, so the first job
        against a corpus builds (and saves) its index and every later
        job — and every restart of the service — mmap-reopens it in
        O(1).  Like the cache wiring, the field is service-owned and
        cannot be overridden per job.
    max_finished_jobs:
        Finished/failed job documents retained for polling; submitting
        past the cap drops the oldest finished ones (queued and running
        jobs are never dropped).
    metrics:
        Optional :class:`~repro.service.metrics.ServiceMetrics`; when
        given, submissions and completions land in the job counters and
        the job-latency histogram served by ``/metrics``.
    registry:
        Optional :class:`~repro.recommend.registry.OntologyRegistry`
        (``repro serve --ontology NAME=PATH``): the candidate
        ontologies of ``POST /recommend``.  Recommendation against a
        registered *corpus* queries that corpus's
        :class:`~repro.corpus.index.CorpusIndex`, built lazily once per
        scenario and shared with every later recommendation.
    """

    def __init__(
        self,
        corpora: dict[str, tuple[str | Path, str | Path]] | None = None,
        *,
        store: DiskCacheStore | None = None,
        job_workers: int = 1,
        max_finished_jobs: int = DEFAULT_MAX_FINISHED_JOBS,
        index_dir: str | Path | None = None,
        metrics: ServiceMetrics | None = None,
        registry: OntologyRegistry | None = None,
    ) -> None:
        if job_workers < 1:
            raise ValidationError(
                f"job_workers must be >= 1, got {job_workers}"
            )
        if max_finished_jobs < 1:
            raise ValidationError(
                f"max_finished_jobs must be >= 1, got {max_finished_jobs}"
            )
        self._max_finished_jobs = max_finished_jobs
        self._corpora = {
            name: (Path(ontology), Path(corpus))
            for name, (ontology, corpus) in (corpora or {}).items()
        }
        self._store = store
        self._index_dir = Path(index_dir) if index_dir is not None else None
        self._metrics = metrics
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        #: ``Idempotency-Key -> (job_id, payload fingerprint)``.  The
        #: fingerprint detects key reuse across *different* payloads;
        #: mappings live exactly as long as their job record does.
        self._idempotency: dict[str, tuple[str, str]] = {}
        self._loaded: dict[str, tuple[Ontology, Corpus]] = {}
        self._ids = itertools.count(1)
        #: Streaming state per scenario: the enricher that owns the
        #: growing corpus, a lock serialising its deltas (the pool may
        #: run several workers, but one scenario's corpus must grow one
        #: batch at a time), and the bounded diff history.
        self.registry = registry if registry is not None else OntologyRegistry()
        #: Scenario name -> CorpusIndex for /recommend corpus inputs,
        #: built on first use from the shared loaded corpus.
        self._recommend_indexes: dict[str, CorpusIndex] = {}
        self._streamers: dict[str, StreamingEnricher] = {}
        self._scenario_locks: dict[str, threading.Lock] = {}
        self._delta_history: dict[str, list[dict]] = {}
        self._delta_seq: dict[str, int] = {}
        self._pool = ThreadPoolExecutor(
            max_workers=job_workers, thread_name_prefix="repro-job"
        )

    def corpora(self) -> list[str]:
        """Registered corpus names, sorted."""
        return sorted(self._corpora)

    def jobs(self) -> list[dict]:
        """Status documents of every job, newest first."""
        with self._lock:
            # job_id breaks submitted_at ties (ids are zero-padded and
            # monotonic, so lexicographic order is submission order).
            records = sorted(
                self._jobs.values(),
                key=lambda job: (job.submitted_at, job.job_id),
                reverse=True,
            )
            return [job.to_dict() for job in records]

    def job(self, job_id: str) -> dict | None:
        """One job's status document, or None for an unknown id."""
        with self._lock:
            job = self._jobs.get(job_id)
            return job.to_dict() if job is not None else None

    def submit(
        self,
        corpus: str,
        overrides: dict | None = None,
        *,
        idempotency_key: str | None = None,
    ) -> str:
        """Queue one enrichment run; returns the (new or replayed) job id.

        Raises :class:`~repro.errors.ValidationError` for an unknown
        corpus or a rejected override (unknown field, or one of the
        cache/worker fields the service owns).
        """
        job_id, _ = self.submit_detailed(
            corpus, overrides, idempotency_key=idempotency_key
        )
        return job_id

    def submit_detailed(
        self,
        corpus: str,
        overrides: dict | None = None,
        *,
        idempotency_key: str | None = None,
    ) -> tuple[str, bool]:
        """:meth:`submit` returning ``(job_id, replayed)``.

        ``replayed`` is True when ``idempotency_key`` matched an earlier
        submission with the identical payload: no new job is queued and
        the original id is returned.  The same key on a *different*
        payload raises :class:`IdempotencyConflictError` (HTTP 409 at
        the route).
        """
        overrides = dict(overrides or {})
        if corpus not in self._corpora:
            raise ValidationError(
                f"unknown corpus {corpus!r}; registered: {self.corpora()}"
            )
        allowed = {f.name for f in fields(EnrichmentConfig)}
        for name in overrides:
            if name in _LOCKED_CONFIG_FIELDS:
                raise ValidationError(
                    f"config field {name!r} is owned by the service"
                )
            if name not in allowed:
                raise ValidationError(f"unknown config field {name!r}")
        if idempotency_key is not None:
            if not idempotency_key:
                raise ValidationError("Idempotency-Key must be non-empty")
            if len(idempotency_key) > MAX_IDEMPOTENCY_KEY_LENGTH:
                raise ValidationError(
                    "Idempotency-Key exceeds "
                    f"{MAX_IDEMPOTENCY_KEY_LENGTH} characters"
                )
        fingerprint = json.dumps(
            {"corpus": corpus, "overrides": overrides}, sort_keys=True
        )
        with self._lock:
            if idempotency_key is not None:
                known = self._idempotency.get(idempotency_key)
                if known is not None:
                    known_id, known_fingerprint = known
                    if known_fingerprint != fingerprint:
                        raise IdempotencyConflictError(
                            f"Idempotency-Key {idempotency_key!r} was "
                            "already used for a different submission"
                        )
                    if self._metrics is not None:
                        self._metrics.job_submitted(corpus, replayed=True)
                    return known_id, True
            job = Job(
                job_id=f"job-{next(self._ids):06d}",
                corpus=corpus,
                overrides=overrides,
                idempotency_key=idempotency_key,
            )
            self._jobs[job.job_id] = job
            if idempotency_key is not None:
                self._idempotency[idempotency_key] = (
                    job.job_id,
                    fingerprint,
                )
            self._prune_finished_locked()
        if self._metrics is not None:
            self._metrics.job_submitted(corpus, replayed=False)
        self._pool.submit(self._run, job)
        return job.job_id, False

    # -- streaming deltas --------------------------------------------------

    def submit_documents(
        self,
        corpus: str,
        documents: list[dict],
        *,
        idempotency_key: str | None = None,
    ) -> tuple[str, bool]:
        """Queue a streaming delta: add ``documents``, re-enrich, diff.

        ``documents`` is the corpus JSONL wire shape — dicts with a
        ``doc_id`` plus either ``sentences`` (token lists) or ``text``
        (raw, tokenised server-side).  The delta runs as an ordinary
        job (``kind="delta"``): poll ``GET /jobs/<id>`` for the
        :class:`~repro.workflow.streaming.ReportDiff` document, which
        also lands in the scenario's :meth:`deltas` history.  Returns
        ``(job_id, replayed)`` with the same ``Idempotency-Key``
        semantics as :meth:`submit_detailed` — replaying a document
        batch must not grow the corpus twice.
        """
        if corpus not in self._corpora:
            raise ValidationError(
                f"unknown corpus {corpus!r}; registered: {self.corpora()}"
            )
        parsed = self._parse_documents(documents)
        if idempotency_key is not None:
            if not idempotency_key:
                raise ValidationError("Idempotency-Key must be non-empty")
            if len(idempotency_key) > MAX_IDEMPOTENCY_KEY_LENGTH:
                raise ValidationError(
                    "Idempotency-Key exceeds "
                    f"{MAX_IDEMPOTENCY_KEY_LENGTH} characters"
                )
        fingerprint = json.dumps(
            {"corpus": corpus, "documents": documents}, sort_keys=True
        )
        with self._lock:
            if idempotency_key is not None:
                known = self._idempotency.get(idempotency_key)
                if known is not None:
                    known_id, known_fingerprint = known
                    if known_fingerprint != fingerprint:
                        raise IdempotencyConflictError(
                            f"Idempotency-Key {idempotency_key!r} was "
                            "already used for a different submission"
                        )
                    if self._metrics is not None:
                        self._metrics.job_submitted(corpus, replayed=True)
                    return known_id, True
            job = Job(
                job_id=f"job-{next(self._ids):06d}",
                corpus=corpus,
                overrides={"documents": [doc.doc_id for doc in parsed]},
                kind="delta",
                idempotency_key=idempotency_key,
            )
            self._jobs[job.job_id] = job
            if idempotency_key is not None:
                self._idempotency[idempotency_key] = (
                    job.job_id,
                    fingerprint,
                )
            self._prune_finished_locked()
        if self._metrics is not None:
            self._metrics.job_submitted(corpus, replayed=False)
        self._pool.submit(self._run_delta, job, parsed)
        return job.job_id, False

    def deltas(
        self, corpus: str, *, since: int = 0
    ) -> list[dict] | None:
        """The scenario's diff history (``seq > since``), oldest first.

        ``None`` for an unregistered corpus (the route's 404); an empty
        list for a registered scenario with no deltas yet.
        """
        if corpus not in self._corpora:
            return None
        with self._lock:
            history = self._delta_history.get(corpus, [])
            return [delta for delta in history if delta["seq"] > since]

    # -- ontology recommendation -------------------------------------------

    def run_recommend(self, payload: dict) -> dict:
        """Execute one recommendation request; returns the wire document.

        ``payload`` is the validated ``POST /recommend`` body: ``text``
        (raw input) or ``corpus`` (a registered scenario, annotated
        through its index), optional ``ontologies`` (a subset of
        registered names), ``acceptance_corpus`` (a registered scenario
        backing the acceptance criterion for text input), and
        ``config`` (:class:`~repro.recommend.config.RecommendConfig`
        field overrides).  Shared by the synchronous route and the job
        runner, so both produce the identical document.
        """
        config = self._recommend_config(payload.get("config"))
        recommender = Recommender(self.registry, config)
        ontologies = payload.get("ontologies")
        if payload.get("corpus") is not None:
            index = self._recommend_index(str(payload["corpus"]))
            report = recommender.recommend_index(
                index, ontologies=ontologies
            )
        else:
            acceptance = payload.get("acceptance_corpus")
            acceptance_index = (
                self._recommend_index(str(acceptance))
                if acceptance is not None
                else None
            )
            report = recommender.recommend_text(
                str(payload.get("text", "")),
                ontologies=ontologies,
                acceptance_index=acceptance_index,
                acceptance_source=(
                    "corpus" if acceptance_index is not None else None
                ),
            )
        return report.to_dict()

    def submit_recommend(
        self,
        payload: dict,
        *,
        idempotency_key: str | None = None,
    ) -> tuple[str, bool]:
        """Queue a recommendation job (``kind="recommend"``).

        Used by ``POST /recommend`` for corpus inputs and oversized
        text, where running in the handler thread would stall the
        keep-alive connection.  Same ``Idempotency-Key`` contract as
        :meth:`submit_detailed`; poll ``GET /jobs/<id>`` for the
        :meth:`~repro.recommend.report.RecommendationReport.to_dict`
        document.
        """
        # Fail fast on an unknown config field or unknown names; a job
        # that can only fail must be rejected at submit time (400), not
        # discovered by the poller.
        self._recommend_config(payload.get("config"))
        corpus_label = (
            str(payload["corpus"])
            if payload.get("corpus") is not None
            else "text"
        )
        if idempotency_key is not None:
            if not idempotency_key:
                raise ValidationError("Idempotency-Key must be non-empty")
            if len(idempotency_key) > MAX_IDEMPOTENCY_KEY_LENGTH:
                raise ValidationError(
                    "Idempotency-Key exceeds "
                    f"{MAX_IDEMPOTENCY_KEY_LENGTH} characters"
                )
        fingerprint = json.dumps({"recommend": payload}, sort_keys=True)
        # The job document shows the request minus the (possibly large)
        # text body, which is summarised by its size instead.
        overrides = {k: v for k, v in payload.items() if k != "text"}
        if "text" in payload:
            overrides["text_bytes"] = len(
                str(payload["text"]).encode("utf-8")
            )
        with self._lock:
            if idempotency_key is not None:
                known = self._idempotency.get(idempotency_key)
                if known is not None:
                    known_id, known_fingerprint = known
                    if known_fingerprint != fingerprint:
                        raise IdempotencyConflictError(
                            f"Idempotency-Key {idempotency_key!r} was "
                            "already used for a different submission"
                        )
                    if self._metrics is not None:
                        self._metrics.job_submitted(
                            corpus_label, replayed=True
                        )
                    return known_id, True
            job = Job(
                job_id=f"job-{next(self._ids):06d}",
                corpus=corpus_label,
                overrides=overrides,
                kind="recommend",
                idempotency_key=idempotency_key,
            )
            self._jobs[job.job_id] = job
            if idempotency_key is not None:
                self._idempotency[idempotency_key] = (
                    job.job_id,
                    fingerprint,
                )
            self._prune_finished_locked()
        if self._metrics is not None:
            self._metrics.job_submitted(corpus_label, replayed=False)
        self._pool.submit(self._run_recommend, job, payload)
        return job.job_id, False

    def _run_recommend(self, job: Job, payload: dict) -> None:
        with self._lock:
            job.status = "running"
            job.started_at = time.time()
        try:
            document = self.run_recommend(payload)
            with self._lock:
                job.report = document
                job.status = "done"
                job.finished_at = time.time()
            if self._metrics is not None:
                ranking = document.get("ranking", [])
                self._metrics.recommend_finished(
                    mode="job",
                    seconds=(job.finished_at or 0.0)
                    - (job.started_at or 0.0),
                    top_scores=ranking[0]["scores"] if ranking else {},
                )
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            # Same boundary as _run: a failed recommendation answers
            # its poll with status="failed" instead of killing the
            # worker thread.
            with self._lock:
                job.error = f"{type(exc).__name__}: {exc}"
                job.status = "failed"
                job.finished_at = time.time()
        if self._metrics is not None:
            self._metrics.job_finished(
                job.corpus,
                status=job.status,
                seconds=(job.finished_at or 0.0) - (job.started_at or 0.0),
            )

    @staticmethod
    def _recommend_config(overrides: dict | None) -> RecommendConfig:
        """Build the request's config; unknown fields are a 400."""
        overrides = dict(overrides or {})
        allowed = {f.name for f in fields(RecommendConfig)}
        for name in overrides:
            if name not in allowed:
                raise ValidationError(
                    f"unknown recommend config field {name!r}"
                )
        return RecommendConfig(**overrides)

    def _recommend_index(self, name: str) -> CorpusIndex:
        """The scenario's corpus index, built once and shared."""
        if name not in self._corpora:
            raise ValidationError(
                f"unknown corpus {name!r}; registered: {self.corpora()}"
            )
        with self._lock:
            index = self._recommend_indexes.get(name)
        if index is not None:
            return index
        _, corpus = self._load(name)
        index = CorpusIndex(corpus)
        with self._lock:
            # Lost-race duplicates: first one in wins (both were built
            # from the same loaded corpus).
            index = self._recommend_indexes.setdefault(name, index)
        return index

    @staticmethod
    def _parse_documents(documents) -> list[Document]:
        """Validate the POSTed batch and build :class:`Document` rows."""
        if not isinstance(documents, list) or not documents:
            raise ValidationError(
                '"documents" must be a non-empty list of objects'
            )
        parsed: list[Document] = []
        for position, payload in enumerate(documents):
            if not isinstance(payload, dict) or "doc_id" not in payload:
                raise ValidationError(
                    f'document #{position} must be an object with a "doc_id"'
                )
            doc_id = str(payload["doc_id"])
            if "sentences" in payload:
                sentences = payload["sentences"]
                if not isinstance(sentences, list) or not all(
                    isinstance(sentence, list)
                    and all(isinstance(token, str) for token in sentence)
                    for sentence in sentences
                ):
                    raise ValidationError(
                        f'document {doc_id!r}: "sentences" must be a list '
                        "of token lists"
                    )
                parsed.append(
                    Document(
                        doc_id=doc_id,
                        sentences=[
                            [token.lower() for token in sentence]
                            for sentence in sentences
                        ],
                    )
                )
            elif "text" in payload:
                parsed.append(
                    Document.from_text(doc_id, str(payload["text"]))
                )
            else:
                raise ValidationError(
                    f'document {doc_id!r} needs "sentences" or "text"'
                )
        return parsed

    def _streamer(self, name: str) -> StreamingEnricher:
        """The scenario's streaming enricher (created on first delta).

        The streamer wraps the *shared* loaded corpus, so a full
        enrichment job submitted after a delta sees the grown corpus —
        and the shared feature cache keeps it warm.
        """
        with self._lock:
            streamer = self._streamers.get(name)
        if streamer is not None:
            return streamer
        ontology, corpus = self._load(name)
        enricher = OntologyEnricher(ontology, config=self._config({}))
        streamer = StreamingEnricher(ontology, corpus, enricher=enricher)
        with self._lock:
            # Lost-race duplicates: first one in wins (its corpus object
            # is the shared loaded one either way).
            streamer = self._streamers.setdefault(name, streamer)
        return streamer

    def _scenario_lock(self, name: str) -> threading.Lock:
        with self._lock:
            return self._scenario_locks.setdefault(name, threading.Lock())

    def _run_delta(self, job: Job, documents: list[Document]) -> None:
        with self._lock:
            job.status = "running"
            job.started_at = time.time()
        try:
            with self._scenario_lock(job.corpus):
                streamer = self._streamer(job.corpus)
                diff = streamer.add_documents(documents)
                document = diff.to_dict()
                with self._lock:
                    seq = self._delta_seq.get(job.corpus, 0) + 1
                    self._delta_seq[job.corpus] = seq
                    document["seq"] = seq
                    document["job"] = job.job_id
                    history = self._delta_history.setdefault(job.corpus, [])
                    history.append(document)
                    del history[:-DEFAULT_MAX_DELTAS]
            with self._lock:
                job.report = document
                job.status = "done"
                job.finished_at = time.time()
            if self._metrics is not None:
                self._metrics.delta_finished(
                    job.corpus,
                    seconds=document["timings"].get("delta_total", 0.0),
                    terms_recomputed=document["n_recomputed"],
                )
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            # Same isolation boundary as _run: a failed delta answers
            # its poll with status="failed" instead of killing the
            # worker thread (duplicate doc ids land here, for example).
            with self._lock:
                job.error = f"{type(exc).__name__}: {exc}"
                job.status = "failed"
                job.finished_at = time.time()
        if self._metrics is not None:
            self._metrics.job_finished(
                job.corpus,
                status=job.status,
                seconds=(job.finished_at or 0.0) - (job.started_at or 0.0),
            )

    def _prune_finished_locked(self) -> None:
        """Drop the oldest finished jobs beyond the retention cap."""
        finished = [
            job
            for job in self._jobs.values()
            if job.status in ("done", "failed")
        ]
        excess = len(finished) - self._max_finished_jobs
        if excess <= 0:
            return
        finished.sort(key=lambda job: (job.submitted_at, job.job_id))
        for job in finished[:excess]:
            del self._jobs[job.job_id]
            if job.idempotency_key is not None:
                # The mapping's job is gone; a replay of that key would
                # point at a 404, so retire the key with the record.
                self._idempotency.pop(job.idempotency_key, None)

    def shutdown(self, *, wait: bool = False) -> None:
        """Stop accepting work and (optionally) wait for running jobs."""
        self._pool.shutdown(wait=wait, cancel_futures=True)

    # -- internals ---------------------------------------------------------

    def _load(self, name: str) -> tuple[Ontology, Corpus]:
        with self._lock:
            loaded = self._loaded.get(name)
        if loaded is not None:
            return loaded
        ontology_path, corpus_path = self._corpora[name]
        loaded = (
            read_ontology_json(ontology_path),
            read_corpus_jsonl(corpus_path),
        )
        with self._lock:
            # Lost-race duplicates are harmless: both loads are
            # identical, last one wins.
            self._loaded[name] = loaded
        return loaded

    def _config(self, overrides: dict) -> EnrichmentConfig:
        forced: dict = {"feature_cache": True}
        if self._store is not None:
            forced["cache_dir"] = str(self._store.cache_dir)
            forced["cache_max_bytes"] = self._store.max_bytes
        if self._index_dir is not None:
            forced["index_dir"] = str(self._index_dir)
        return EnrichmentConfig(**{**overrides, **forced})

    def _run(self, job: Job) -> None:
        with self._lock:
            job.status = "running"
            job.started_at = time.time()
        try:
            ontology, corpus = self._load(job.corpus)
            config = self._config(job.overrides)
            enricher = OntologyEnricher(ontology, config=config)
            report = enricher.enrich(corpus)
            with self._lock:
                job.report = report.to_dict()
                job.status = "done"
                job.finished_at = time.time()
        except Exception as exc:  # noqa: BLE001 - job isolation boundary:
            # Deliberately broad: this is the service's last line of
            # defence around arbitrary workflow code.  A failed job must
            # answer its poll with status="failed" and the error string,
            # not kill the worker thread — narrowing here would turn an
            # unanticipated exception type into a silently-hung job.
            # The failure *is* accounted: job.error carries it to the
            # poller and job_finished() counts it in /metrics.
            with self._lock:
                job.error = f"{type(exc).__name__}: {exc}"
                job.status = "failed"
                job.finished_at = time.time()
        if self._metrics is not None:
            self._metrics.job_finished(
                job.corpus,
                status=job.status,
                seconds=(job.finished_at or 0.0) - (job.started_at or 0.0),
            )
