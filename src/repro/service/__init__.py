"""``repro.service`` — the served deployment of the enrichment system.

One long-lived ``repro serve`` process owns a
:class:`~repro.polysemy.cache_store.DiskCacheStore` and exposes it (plus
submit/poll/fetch enrichment jobs) over plain stdlib HTTP; any number
of pipeline runs on any machine share its warm Step II vectors through
:class:`RemoteCacheStore` (``EnrichmentConfig(cache_url=...)`` / CLI
``--cache-url``).

Public surface:

* :class:`RemoteCacheStore` — the ``CacheStore`` protocol over HTTP
  (every network failure degrades to a clean cache miss), with
  batched ``get_many``/``put_many`` over ``/vectors/batch``;
* :class:`ServiceClient` — strict JSON client (stats, cache layout,
  job lifecycle, conditional stats, ``/metrics`` scrape);
* :class:`CacheServiceServer` / :func:`serve` — the server;
* :class:`JobManager` — server-side enrichment job execution
  (idempotent submission via ``Idempotency-Key``);
* :class:`ServiceMetrics` / :class:`MetricsRegistry` — the zero-dep
  Prometheus-style instruments behind ``GET /metrics``;
* :func:`run_load` / :class:`LoadReport` — the many-client load
  generator (``repro loadbench``);
* the wire-format helpers of :mod:`repro.service.wire`, including the
  ``RBK1``/``RBV1`` batch frame codec.

Exports resolve lazily (PEP 562): the *client* side imports no
workflow code, so ``repro.workflow.pipeline`` can depend on
:class:`RemoteCacheStore` while the *server* side depends on the
pipeline — without an import cycle.
"""

from __future__ import annotations

_EXPORTS = {
    "RemoteCacheStore": "repro.service.client",
    "ServiceClient": "repro.service.client",
    "ServiceError": "repro.service.client",
    "DEFAULT_TIMEOUT": "repro.service.client",
    "CacheService": "repro.service.server",
    "CacheServiceServer": "repro.service.server",
    "serve": "repro.service.server",
    "Job": "repro.service.jobs",
    "JobManager": "repro.service.jobs",
    "IdempotencyConflictError": "repro.service.jobs",
    "DirectoryWatcher": "repro.service.watcher",
    "Counter": "repro.service.metrics",
    "Gauge": "repro.service.metrics",
    "Histogram": "repro.service.metrics",
    "MetricsRegistry": "repro.service.metrics",
    "ServiceMetrics": "repro.service.metrics",
    "LoadReport": "repro.service.loadgen",
    "run_load": "repro.service.loadgen",
    "encode_vector": "repro.service.wire",
    "decode_vector": "repro.service.wire",
    "encode_key": "repro.service.wire",
    "decode_key": "repro.service.wire",
    "encode_key_batch": "repro.service.wire",
    "decode_key_batch": "repro.service.wire",
    "encode_vector_batch": "repro.service.wire",
    "decode_vector_batch": "repro.service.wire",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
