"""Watched-directory ingestion for the streaming enrichment daemon.

``repro serve --watch NAME=DIR`` points a :class:`DirectoryWatcher` at a
drop directory: every ``*.jsonl`` file that appears there (the corpus
wire shape of :mod:`repro.corpus.io` — one JSON document per line) is
parsed and submitted to the scenario's
``POST /scenarios/<name>/documents`` path, i.e. straight into
:meth:`repro.service.jobs.JobManager.submit_documents`.  This is the
zero-client ingestion mode: an upstream fetcher only has to drop files.

Each file is submitted with an ``Idempotency-Key`` derived from the
scenario and the file *content*, so a re-dropped (or re-scanned) file
replays its original job instead of growing the corpus twice — the same
guarantee HTTP clients get.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from pathlib import Path

from repro.errors import ValidationError
from repro.service.jobs import JobManager

__all__ = ["DirectoryWatcher"]

#: Parse/submit failures retained for inspection (oldest dropped).
MAX_ERRORS = 100


class DirectoryWatcher:
    """Poll a directory and feed new document files to a scenario.

    Parameters
    ----------
    manager:
        The serving :class:`~repro.service.jobs.JobManager`.
    scenario:
        Registered scenario (corpus) name the documents feed.
    directory:
        Directory to poll; created if missing.
    poll_seconds:
        Sleep between scans of the background thread.

    A file is picked up when its ``(mtime, size)`` is new — touching a
    file re-submits it, which the content-derived ``Idempotency-Key``
    turns into a no-op replay unless the content actually changed.
    """

    def __init__(
        self,
        manager: JobManager,
        scenario: str,
        directory: str | Path,
        *,
        poll_seconds: float = 1.0,
    ) -> None:
        if poll_seconds <= 0:
            raise ValidationError(
                f"poll_seconds must be > 0, got {poll_seconds}"
            )
        self._manager = manager
        self.scenario = scenario
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.poll_seconds = poll_seconds
        self._seen: dict[str, tuple[float, int]] = {}
        self.errors: list[str] = []
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def scan_once(self) -> list[str]:
        """One scan: submit every new/changed ``*.jsonl`` file.

        Returns the submitted job ids (replays included).  Unreadable
        or malformed files land in :attr:`errors` and are retried on
        the next scan only if they change again.
        """
        submitted: list[str] = []
        for path in sorted(self.directory.glob("*.jsonl")):
            try:
                stat = path.stat()
            except OSError:
                continue  # vanished between glob and stat
            signature = (stat.st_mtime, stat.st_size)
            if self._seen.get(path.name) == signature:
                continue
            self._seen[path.name] = signature
            try:
                content = path.read_bytes()
                documents = _parse_document_lines(content)
                key = "watch:{}:{}".format(
                    self.scenario, hashlib.sha1(content).hexdigest()
                )
                job_id, __ = self._manager.submit_documents(
                    self.scenario, documents, idempotency_key=key
                )
                submitted.append(job_id)
            except (OSError, ValidationError, ValueError) as exc:
                self._record_error(
                    f"{path.name}: {type(exc).__name__}: {exc}"
                )
        return submitted

    def start(self) -> None:
        """Poll on a background thread until :meth:`stop`."""
        if self._thread is not None:
            raise ValidationError("watcher already started")
        self._thread = threading.Thread(
            target=self._loop,
            name=f"repro-watch-{self.scenario}",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the background thread (idempotent)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._stop.clear()

    # -- internals ---------------------------------------------------------

    def _loop(self) -> None:
        while not self._stop.is_set():
            started = time.monotonic()
            try:
                self.scan_once()
            except Exception as exc:  # noqa: BLE001 - keep the thread alive
                self._record_error(f"scan failed: {type(exc).__name__}: {exc}")
            elapsed = time.monotonic() - started
            self._stop.wait(max(0.0, self.poll_seconds - elapsed))

    def _record_error(self, message: str) -> None:
        self.errors.append(message)
        del self.errors[:-MAX_ERRORS]


def _parse_document_lines(content: bytes) -> list[dict]:
    """Decode a dropped JSONL file into the submit-documents payload."""
    documents: list[dict] = []
    for line_no, line in enumerate(content.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValidationError(f"bad JSON on line {line_no}: {exc}") from exc
        if not isinstance(payload, dict):
            raise ValidationError(f"line {line_no} is not a JSON object")
        documents.append(payload)
    if not documents:
        raise ValidationError("file contains no documents")
    return documents
