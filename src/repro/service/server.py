"""The stdlib HTTP service: shared feature cache + enrichment jobs.

``repro serve`` turns the single-host
:class:`~repro.polysemy.cache_store.DiskCacheStore` into an Aber-OWL
style *served* deployment: one long-lived process owns the store, and
any number of pipeline runs — on any machine — point
``EnrichmentConfig(cache_url=...)`` at it to share warm Step II
vectors.  The server is pure standard library
(:class:`http.server.ThreadingHTTPServer`), so serving adds **zero**
runtime dependencies.

Routes
------
===========================  ==========================================
``GET  /healthz``            liveness document
``GET  /stats``              store counters (``ETag``/304 aware)
``GET  /metrics``            Prometheus text exposition
``GET  /cache/info``         generation/shard layout (``repro cache-info``)
``GET  /cache/vector?...``   one vector, binary (404 = miss)
``PUT  /cache/vector?...``   store one vector, binary body
``POST /vectors/batch``      batched lookup (key frame in, vector frame out)
``PUT  /vectors/batch``      batched store (vector frame in)
``POST /cache/clear``        drop every entry
``GET  /corpora``            corpus names registered for jobs
``POST /jobs``               submit a job (202 + id; ``Idempotency-Key``
                             replays return 200 + the original id)
``GET  /jobs``               every job's status document
``GET  /jobs/<id>``          one job's status/result document
``POST /scenarios/<name>/documents``  stream documents in: queues a
                             delta re-enrichment job (same 202/200 +
                             ``Idempotency-Key`` contract as ``/jobs``)
``GET  /scenarios/<name>/deltas``     the scenario's diff history
                             (``?since=<seq>`` for incremental polls)
``POST /recommend``          rank registered ontologies against text
                             or a registered corpus: small text answers
                             200 with the report synchronously; corpus
                             input and oversized text queue a job (202,
                             ``Idempotency-Key`` honoured)
===========================  ==========================================

Vector payloads use the raw-binary wire format of
:mod:`repro.service.wire` (batch routes carry its ``RBK1``/``RBV1``
frames); everything else is JSON.  Concurrency: the threading server
handles each connection on its own thread, and :class:`DiskCacheStore`
serialises writers internally (thread lock + cross-process flock), so N
concurrent clients behave exactly like N concurrent pipeline processes
on one cache directory — a layout the store's concurrency suite already
hammers.

Observability: every request lands in the
:class:`~repro.service.metrics.ServiceMetrics` instruments behind
``GET /metrics`` (latency histograms per route, cache op counters, an
in-flight gauge) and, when configured, one structured JSON line per
request in the access log.  ``/stats`` and ``/metrics`` polls do *not*
bump the traffic counters — monitoring must not perturb the document it
monitors (it is also what lets ``/stats`` serve a stable ``ETag``).
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import signal
import socket
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from time import perf_counter
from urllib.parse import parse_qsl, urlsplit

from repro.errors import ValidationError
from repro.polysemy.cache_store import DiskCacheStore
from repro.recommend.registry import OntologyRegistry
from repro.service.jobs import (
    IdempotencyConflictError,
    JobManager,
)
from repro.service.metrics import (
    CONTENT_TYPE as METRICS_CONTENT_TYPE,
    ServiceMetrics,
)
from repro.service.wire import (
    HEADER_CRC,
    HEADER_DTYPE,
    HEADER_MISS,
    HEADER_SHAPE,
    decode_key,
    decode_key_batch,
    decode_vector,
    decode_vector_batch,
    encode_vector,
    encode_vector_batch,
)

#: Largest accepted PUT body (a feature vector is ~a few hundred bytes;
#: this bound just keeps a confused client from streaming gigabytes —
#: even a full 4096-entry batch frame stays far below it).
MAX_VECTOR_BYTES = 64 << 20

#: ``POST /recommend`` text at most this large runs synchronously in
#: the handler thread (annotation over a trie is fast); anything bigger
#: — and every corpus input — goes through the job queue so a slow
#: recommendation cannot stall its keep-alive connection.
SYNC_MAX_TEXT_BYTES = 64 << 10

#: Routes worth an individual metrics label; anything else aggregates
#: under ``other`` so hostile/typo'd paths cannot mint unbounded label
#: sets, and job polls share one ``/jobs/{id}`` series.
_METRIC_ROUTES = frozenset(
    {
        "/healthz",
        "/stats",
        "/metrics",
        "/cache/info",
        "/cache/vector",
        "/cache/clear",
        "/vectors/batch",
        "/corpora",
        "/jobs",
        "/recommend",
    }
)


def _metric_route(route: str) -> str:
    if route in _METRIC_ROUTES:
        return route
    if route.startswith("/jobs/"):
        return "/jobs/{id}"
    if route.startswith("/scenarios/"):
        # Scenario names are operator-registered (bounded), but keep the
        # label set independent of them anyway; only the two known
        # endpoints get a series.
        if route.endswith("/documents"):
            return "/scenarios/{name}/documents"
        if route.endswith("/deltas"):
            return "/scenarios/{name}/deltas"
    return "other"


class CacheService:
    """The served state: one store, one job manager, request counters.

    ``metrics`` (a :class:`ServiceMetrics`, created when not given) is
    shared with the job manager so job submissions/durations land next
    to the HTTP instruments.  ``access_log`` is an optional callable
    receiving one dict per finished request (the structured JSON access
    log; :func:`serve` wires it to a file or stderr).
    """

    def __init__(
        self,
        store: DiskCacheStore,
        *,
        corpora: dict[str, tuple[str | Path, str | Path]] | None = None,
        job_workers: int = 1,
        index_dir: str | Path | None = None,
        metrics: ServiceMetrics | None = None,
        access_log=None,
        ontologies: dict[str, str | Path] | None = None,
    ) -> None:
        self.store = store
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self._access_log = access_log
        # Built before the first request and read-only afterwards, so
        # /recommend handlers share it without locking.
        self.registry = OntologyRegistry()
        for name, path in sorted((ontologies or {}).items()):
            self.registry.register_path(name, path)
        self.jobs = JobManager(
            corpora, store=store, job_workers=job_workers,
            index_dir=index_dir, metrics=self.metrics,
            registry=self.registry,
        )
        self._lock = threading.Lock()
        self._requests = 0
        self._vector_gets = 0
        self._vector_puts = 0
        self._vector_hits = 0
        #: Bumped by every counted request; keys the serialized-/stats-
        #: body cache below, so an unchanged document is served (and
        #: 304'd) without re-walking the store or re-serializing.
        self._stats_version = 0
        self._stats_cache: tuple[int, bytes, str] | None = None

    def count_request(self, *, get=0, put=0, hit=0) -> None:
        """Bump the traffic counters: one request, N vector ops.

        The single-vector routes pass booleans (one op per request);
        the batch routes pass per-key totals — ``requests`` then counts
        *round trips*, which is exactly what the batching bench
        measures server-side.
        """
        with self._lock:
            self._requests += 1
            self._vector_gets += int(get)
            self._vector_puts += int(put)
            self._vector_hits += int(hit)
            self._stats_version += 1

    def stats(self) -> dict:
        """The ``GET /stats`` document: store + traffic counters."""
        with self._lock:
            traffic = {
                "requests": self._requests,
                "vector_gets": self._vector_gets,
                "vector_puts": self._vector_puts,
                "vector_hits": self._vector_hits,
            }
        return {
            "entries": len(self.store),
            **self.store.stats(),
            **traffic,
        }

    def stats_payload(self) -> tuple[bytes, str]:
        """``(serialized /stats body, ETag)``, cached per version.

        Stats polls themselves are uncounted, so back-to-back polls see
        the same version and are served from the cache — the ETag holds
        still and a conditional GET gets its 304.  (Store mutations all
        arrive through counted requests — vector traffic directly, job
        side effects via their counted submit/poll cycle — so a stale
        window closes at the next counted request.)
        """
        with self._lock:
            version = self._stats_version
            cached = self._stats_cache
        if cached is not None and cached[0] == version:
            return cached[1], cached[2]
        body = json.dumps(self.stats(), sort_keys=True).encode("utf-8")
        etag = '"' + hashlib.sha1(body).hexdigest() + '"'
        with self._lock:
            if self._stats_version == version:
                self._stats_cache = (version, body, etag)
        return body, etag

    def log_access(self, record: dict) -> None:
        """Hand one finished request's record to the access log."""
        if self._access_log is not None:
            self._access_log(record)

    def shutdown(self) -> None:
        """Stop the job pool (running jobs are abandoned)."""
        self.jobs.shutdown(wait=False)


class _ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that hands the service to its handlers.

    Open keep-alive connections are tracked so a graceful shutdown can
    actually sever them — without this, an idle client connection would
    keep being served by its handler thread after ``shutdown()``, and a
    "stopped" in-process server would behave nothing like a killed one.
    """

    daemon_threads = True

    def __init__(self, address, service: CacheService) -> None:
        self.service = service
        self._open_connections: set[socket.socket] = set()
        self._connections_guard = threading.Lock()
        super().__init__(address, _ServiceHandler)

    def track_connection(self, connection: socket.socket) -> None:
        with self._connections_guard:
            self._open_connections.add(connection)

    def untrack_connection(self, connection: socket.socket) -> None:
        with self._connections_guard:
            self._open_connections.discard(connection)

    def handle_error(self, request, client_address) -> None:
        exc = sys.exc_info()[1]
        if isinstance(exc, (ConnectionError, TimeoutError)):
            return  # clients vanish mid-request; that is not our error
        super().handle_error(request, client_address)

    def close_connections(self) -> None:
        """Sever every live client connection (used at shutdown)."""
        with self._connections_guard:
            connections = list(self._open_connections)
            self._open_connections.clear()
        for connection in connections:
            with contextlib.suppress(OSError):
                connection.shutdown(socket.SHUT_RDWR)  # may close on its own
            with contextlib.suppress(OSError):
                connection.close()


class _ServiceHandler(BaseHTTPRequestHandler):
    server_version = "repro-service/1.0"
    #: Keep-alive so RemoteCacheStore's connection reuse actually reuses.
    protocol_version = "HTTP/1.1"
    #: TCP_NODELAY on accepted sockets: cache traffic is many small
    #: request/response pairs, and Nagle + delayed-ACK would add ~40ms
    #: to every round trip.
    disable_nagle_algorithm = True

    @property
    def service(self) -> CacheService:
        return self.server.service

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging is the operator's proxy's job, not ours

    def setup(self) -> None:
        super().setup()
        self.server.track_connection(self.connection)

    def finish(self) -> None:
        try:
            super().finish()
        finally:
            self.server.untrack_connection(self.connection)

    # -- response helpers ---------------------------------------------------

    def _send(
        self, status: int, body: bytes, *, headers: dict[str, str]
    ) -> None:
        self._sent_status = status
        self.send_response(status)
        for name, value in headers.items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if body:
            self.wfile.write(body)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send(
            status, body, headers={"Content-Type": "application/json"}
        )

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_body(self) -> bytes | None:
        """The request body, or None when the declared length is bad.

        A body we refuse to read leaves unread bytes on the keep-alive
        stream — the next "request line" would be vector bytes — so the
        None path also marks the connection for closure.
        """
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = -1
        if length < 0 or length > MAX_VECTOR_BYTES:
            self.close_connection = True
            return None
        return self.rfile.read(length) if length else b""

    def _drain_body(self) -> None:
        """Consume a request body we are about to error out on.

        Error responses that skip ``rfile.read`` would desynchronise
        the HTTP/1.1 keep-alive stream (the unread body bytes become
        the "next request"); draining keeps the connection usable.
        """
        self._read_body()

    # -- routing ------------------------------------------------------------

    def _instrumented(self, method: str, handler) -> None:
        """Run one route handler inside the observability envelope.

        Whatever the handler does (including raising — the client may
        have vanished mid-response), the request lands in the latency
        histogram, the per-route/status counter, the in-flight gauge,
        and the access log.
        """
        metrics = self.service.metrics
        self._sent_status = 0
        metrics.inflight.inc()
        started = perf_counter()
        try:
            handler()
        finally:
            seconds = perf_counter() - started
            metrics.inflight.dec()
            route = _metric_route(
                urlsplit(self.path).path.rstrip("/") or "/"
            )
            # A handler that died before responding wrote no status
            # line; record it as the 500 the client effectively saw.
            status = self._sent_status or 500
            metrics.observe_request(
                method=method, route=route, status=status, seconds=seconds
            )
            self.service.log_access(
                {
                    "ts": round(time.time(), 6),
                    "client": self.client_address[0],
                    "method": method,
                    "path": self.path,
                    "route": route,
                    "status": status,
                    "duration_seconds": round(seconds, 6),
                }
            )

    def do_GET(self) -> None:  # noqa: N802 - stdlib dispatch name
        self._instrumented("GET", self._route_get)

    def do_PUT(self) -> None:  # noqa: N802 - stdlib dispatch name
        self._instrumented("PUT", self._route_put)

    def do_POST(self) -> None:  # noqa: N802 - stdlib dispatch name
        self._instrumented("POST", self._route_post)

    def _route_get(self) -> None:
        parsed = urlsplit(self.path)
        route = parsed.path.rstrip("/") or "/"
        if route == "/healthz":
            self.service.count_request()
            self._send_json(
                200, {"status": "ok", "service": self.server_version}
            )
        elif route == "/stats":
            # Deliberately uncounted (see stats_payload): polling stats
            # must not change the stats.
            self._get_stats()
        elif route == "/metrics":
            self._send(
                200,
                self.service.metrics.render().encode("utf-8"),
                headers={"Content-Type": METRICS_CONTENT_TYPE},
            )
        elif route == "/cache/info":
            self.service.count_request()
            self._send_json(200, self.service.store.describe())
        elif route == "/cache/vector":
            self._get_vector(parsed.query)
        elif route == "/corpora":
            self.service.count_request()
            self._send_json(200, {"corpora": self.service.jobs.corpora()})
        elif route == "/jobs":
            self.service.count_request()
            self._send_json(200, {"jobs": self.service.jobs.jobs()})
        elif route.startswith("/jobs/"):
            self.service.count_request()
            document = self.service.jobs.job(route[len("/jobs/"):])
            if document is None:
                self._send_error_json(404, "unknown job id")
            else:
                self._send_json(200, document)
        elif route.startswith("/scenarios/") and route.endswith("/deltas"):
            self._get_deltas(route, parsed.query)
        else:
            self._send_error_json(404, f"unknown route {route!r}")

    def _route_put(self) -> None:
        parsed = urlsplit(self.path)
        route = parsed.path.rstrip("/")
        if route == "/cache/vector":
            self._put_vector(parsed.query)
        elif route == "/vectors/batch":
            self._put_vector_batch()
        else:
            self._drain_body()
            self._send_error_json(404, f"unknown route {parsed.path!r}")

    def _route_post(self) -> None:
        route = urlsplit(self.path).path.rstrip("/")
        if route == "/cache/clear":
            self._drain_body()
            self.service.count_request()
            self.service.store.clear()
            self._send(204, b"", headers={})
        elif route == "/vectors/batch":
            self._get_vector_batch()
        elif route == "/jobs":
            self._submit_job()
        elif route == "/recommend":
            self._post_recommend()
        elif route.startswith("/scenarios/") and route.endswith("/documents"):
            self._post_documents(route)
        else:
            self._drain_body()
            self._send_error_json(404, f"unknown route {route!r}")

    # -- stats endpoint -------------------------------------------------------

    def _get_stats(self) -> None:
        body, etag = self.service.stats_payload()
        if_none_match = self.headers.get("If-None-Match")
        if if_none_match is not None and etag in (
            tag.strip() for tag in if_none_match.split(",")
        ):
            self._send(304, b"", headers={"ETag": etag})
            return
        self._send(
            200,
            body,
            headers={"Content-Type": "application/json", "ETag": etag},
        )

    # -- vector endpoints -----------------------------------------------------

    def _get_vector(self, query: str) -> None:
        key = decode_key(query)
        if key is None:
            self.service.count_request(get=True)
            self.service.metrics.count_cache_op("get", "error")
            self._send_error_json(
                400, "corpus, term, and config query params required"
            )
            return
        vector = self.service.store.get(key)
        self.service.count_request(get=True, hit=vector is not None)
        self.service.metrics.count_cache_op(
            "get", "hit" if vector is not None else "miss"
        )
        if vector is None:
            # The miss marker distinguishes "this service, entry absent"
            # from any other 404 (misrouted URL), which clients count as
            # a failure.
            body = json.dumps({"error": "miss"}).encode("utf-8")
            self._send(
                404,
                body,
                headers={
                    "Content-Type": "application/json",
                    HEADER_MISS: "1",
                },
            )
            return
        headers, body = encode_vector(vector)
        headers["Content-Type"] = "application/octet-stream"
        self._send(200, body, headers=headers)

    def _put_vector(self, query: str) -> None:
        self.service.count_request(put=True)
        # Read the body before any validation verdict: an error response
        # with the body left unread would desynchronise keep-alive.
        body = self._read_body()
        key = decode_key(query)
        if key is None:
            self._send_error_json(
                400, "corpus, term, and config query params required"
            )
            return
        if body is None:
            self._send_error_json(400, "bad Content-Length")
            return
        vector = decode_vector(
            self.headers.get(HEADER_DTYPE),
            self.headers.get(HEADER_SHAPE),
            self.headers.get(HEADER_CRC),
            body,
        )
        if vector is None:
            self.service.metrics.count_cache_op("put", "error")
            self._send_error_json(
                400, "malformed vector payload (dtype/shape/crc headers)"
            )
            return
        self.service.store.put(key, vector)
        self.service.metrics.count_cache_op("put", "stored")
        self._send(204, b"", headers={})

    # -- batch endpoints ------------------------------------------------------

    def _get_vector_batch(self) -> None:
        """``POST /vectors/batch``: key frame in, vector frame out.

        Every requested key gets exactly one response entry, in request
        order; a miss travels in-band as a present-flag-0 entry (the
        batch counterpart of the single route's marked 404).  Duplicate
        keys in one frame are answered from a per-request memo, so the
        store is probed once per distinct key.
        """
        metrics = self.service.metrics
        body = self._read_body()
        if body is None:
            self.service.count_request()
            self._send_error_json(400, "bad Content-Length")
            return
        keys = decode_key_batch(body)
        if keys is None:
            self.service.count_request()
            metrics.count_cache_op("batch_get", "error")
            self._send_error_json(400, "malformed key batch frame")
            return
        memo: dict = {}
        entries = []
        hits = 0
        for key in keys:
            if key not in memo:
                memo[key] = self.service.store.get(key)
            vector = memo[key]
            hits += int(vector is not None)
            entries.append((key, vector))
        self.service.count_request(get=len(keys), hit=hits)
        metrics.count_cache_op("batch_get", "hit", hits)
        metrics.count_cache_op("batch_get", "miss", len(keys) - hits)
        metrics.batch_vectors.inc(len(keys), op="get")
        self._send(
            200,
            encode_vector_batch(entries),
            headers={"Content-Type": "application/octet-stream"},
        )

    def _put_vector_batch(self) -> None:
        """``PUT /vectors/batch``: vector frame in, ``{"stored": n}`` out.

        Present entries are stored in frame order (duplicates: last one
        wins, matching N sequential single-vector PUTs); miss-flagged
        entries are skipped.  A malformed frame stores *nothing* — the
        decoder is all-or-nothing, so a torn upload can never
        half-apply.
        """
        metrics = self.service.metrics
        body = self._read_body()
        if body is None:
            self.service.count_request()
            self._send_error_json(400, "bad Content-Length")
            return
        entries = decode_vector_batch(body)
        if entries is None:
            self.service.count_request()
            metrics.count_cache_op("batch_put", "error")
            self._send_error_json(400, "malformed vector batch frame")
            return
        stored = 0
        for key, vector in entries:
            if vector is None:
                continue
            self.service.store.put(key, vector)
            stored += 1
        self.service.count_request(put=stored)
        metrics.count_cache_op("batch_put", "stored", stored)
        metrics.batch_vectors.inc(stored, op="put")
        self._send_json(200, {"stored": stored})

    # -- streaming endpoints --------------------------------------------------

    def _get_deltas(self, route: str, query: str) -> None:
        """``GET /scenarios/<name>/deltas``: the scenario's diff history."""
        self.service.count_request()
        name = route[len("/scenarios/"):-len("/deltas")]
        params = dict(parse_qsl(query))
        try:
            since = int(params.get("since", 0))
        except ValueError:
            self._send_error_json(400, '"since" must be an integer')
            return
        deltas = self.service.jobs.deltas(name, since=since)
        if deltas is None:
            self._send_error_json(404, f"unknown scenario {name!r}")
            return
        self._send_json(
            200, {"corpus": name, "since": since, "deltas": deltas}
        )

    def _post_documents(self, route: str) -> None:
        """``POST /scenarios/<name>/documents``: queue a delta job."""
        self.service.count_request()
        name = route[len("/scenarios/"):-len("/documents")]
        body = self._read_body()
        if body is None:
            self._send_error_json(400, "bad Content-Length")
            return
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, ValueError):
            self._send_error_json(400, "request body must be JSON")
            return
        if not isinstance(payload, dict) or "documents" not in payload:
            self._send_error_json(
                400, 'JSON body with a "documents" list required'
            )
            return
        if name not in self.service.jobs.corpora():
            self._send_error_json(404, f"unknown scenario {name!r}")
            return
        try:
            job_id, replayed = self.service.jobs.submit_documents(
                name,
                payload["documents"],
                idempotency_key=self.headers.get("Idempotency-Key"),
            )
        except IdempotencyConflictError as exc:
            self._send_error_json(409, str(exc))
            return
        except ValidationError as exc:
            self._send_error_json(400, str(exc))
            return
        if replayed:
            self._send_json(200, {"job": job_id, "replayed": True})
        else:
            self._send_json(202, {"job": job_id, "replayed": False})

    # -- recommendation endpoint ----------------------------------------------

    def _post_recommend(self) -> None:
        """``POST /recommend``: rank the registered ontologies.

        Small text inputs are answered synchronously (200 + the exact
        :meth:`~repro.recommend.report.RecommendationReport.to_dict`
        document — byte-identical to ``repro recommend --format
        json``); corpus inputs and oversized text queue a job with the
        usual 202/200 + ``Idempotency-Key`` contract.  ``mode`` in the
        payload (``"auto"``/``"sync"``/``"job"``) overrides the
        routing.
        """
        self.service.count_request()
        body = self._read_body()
        if body is None:
            self._send_error_json(400, "bad Content-Length")
            return
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, ValueError):
            self._send_error_json(400, "request body must be JSON")
            return
        if not isinstance(payload, dict):
            self._send_error_json(400, "request body must be a JSON object")
            return
        error = self._validate_recommend(payload)
        if error is not None:
            status, message = error
            self._send_error_json(status, message)
            return
        mode = str(payload.pop("mode", "auto"))
        run_sync = mode == "sync" or (
            mode == "auto"
            and "text" in payload
            and len(str(payload["text"]).encode("utf-8"))
            <= SYNC_MAX_TEXT_BYTES
        )
        if run_sync:
            started = perf_counter()
            try:
                document = self.service.jobs.run_recommend(payload)
            except ValidationError as exc:
                self._send_error_json(400, str(exc))
                return
            ranking = document.get("ranking", [])
            self.service.metrics.recommend_finished(
                mode="sync",
                seconds=perf_counter() - started,
                top_scores=ranking[0]["scores"] if ranking else {},
            )
            self._send_json(200, document)
            return
        try:
            job_id, replayed = self.service.jobs.submit_recommend(
                payload,
                idempotency_key=self.headers.get("Idempotency-Key"),
            )
        except IdempotencyConflictError as exc:
            self._send_error_json(409, str(exc))
            return
        except ValidationError as exc:
            self._send_error_json(400, str(exc))
            return
        if replayed:
            self._send_json(200, {"job": job_id, "replayed": True})
        else:
            self._send_json(202, {"job": job_id, "replayed": False})

    def _validate_recommend(
        self, payload: dict
    ) -> tuple[int, str] | None:
        """Shape and name checks: ``(status, message)`` or None when OK.

        Malformed structure is a 400; a *well-formed* request naming an
        unknown ontology or corpus is a 404 (the name is the resource).
        """
        has_text = "text" in payload
        has_corpus = "corpus" in payload
        if has_text == has_corpus:
            return 400, 'exactly one of "text" / "corpus" is required'
        if has_text and not isinstance(payload["text"], str):
            return 400, '"text" must be a string'
        if has_corpus and not isinstance(payload["corpus"], str):
            return 400, '"corpus" must be a string'
        ontologies = payload.get("ontologies")
        if ontologies is not None and (
            not isinstance(ontologies, list)
            or not ontologies
            or not all(isinstance(name, str) for name in ontologies)
        ):
            return 400, '"ontologies" must be a non-empty list of names'
        config = payload.get("config")
        if config is not None and not isinstance(config, dict):
            return 400, '"config" must be an object'
        if str(payload.get("mode", "auto")) not in ("auto", "sync", "job"):
            return 400, '"mode" must be "auto", "sync", or "job"'
        acceptance = payload.get("acceptance_corpus")
        if acceptance is not None:
            if not isinstance(acceptance, str):
                return 400, '"acceptance_corpus" must be a string'
            if has_corpus:
                return 400, (
                    'corpus input is its own acceptance source; drop '
                    '"acceptance_corpus"'
                )
        registry = self.service.registry
        if not len(registry):
            return 400, "no ontologies registered (repro serve --ontology)"
        for name in ontologies or []:
            if name not in registry:
                return 404, (
                    f"unknown ontology {name!r}; "
                    f"registered: {registry.names()}"
                )
        corpora = self.service.jobs.corpora()
        if has_corpus and payload["corpus"] not in corpora:
            return 404, (
                f"unknown corpus {payload['corpus']!r}; "
                f"registered: {corpora}"
            )
        if acceptance is not None and acceptance not in corpora:
            return 404, (
                f"unknown corpus {acceptance!r}; registered: {corpora}"
            )
        return None

    # -- job endpoints --------------------------------------------------------

    def _submit_job(self) -> None:
        self.service.count_request()
        body = self._read_body()
        if body is None:
            self._send_error_json(400, "bad Content-Length")
            return
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, ValueError):
            self._send_error_json(400, "request body must be JSON")
            return
        if not isinstance(payload, dict) or "corpus" not in payload:
            self._send_error_json(400, 'JSON body with a "corpus" required')
            return
        overrides = payload.get("config")
        if overrides is None:
            overrides = {}
        if not isinstance(overrides, dict):
            self._send_error_json(400, '"config" must be an object')
            return
        try:
            job_id, replayed = self.service.jobs.submit_detailed(
                str(payload["corpus"]),
                overrides,
                idempotency_key=self.headers.get("Idempotency-Key"),
            )
        except IdempotencyConflictError as exc:
            self._send_error_json(409, str(exc))
            return
        except ValidationError as exc:
            self._send_error_json(400, str(exc))
            return
        if replayed:
            # 200, not 202: nothing new was accepted — the client is
            # being handed the job its earlier submit already created.
            self._send_json(200, {"job": job_id, "replayed": True})
        else:
            self._send_json(202, {"job": job_id, "replayed": False})


class CacheServiceServer:
    """Lifecycle wrapper: bind, serve (foreground or background), stop.

    Parameters
    ----------
    store:
        The :class:`DiskCacheStore` to serve (its directory is the
        service's persistent state).
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (the bound
        port is available as :attr:`port` right after construction —
        handy for tests and benchmarks).
    corpora:
        Optional ``name -> (ontology_json, corpus_jsonl)`` registry for
        the enrichment-job endpoints.
    job_workers:
        Concurrent server-side enrichment jobs.
    index_dir:
        Optional on-disk corpus index store shared by the job runner
        (see :class:`~repro.corpus.index_store.IndexStore`): corpus
        indexes persist across jobs and service restarts.
    ontologies:
        Optional ``name -> path`` registry (ontology JSON or ``.obo``)
        of the candidate ontologies of ``POST /recommend``
        (``repro serve --ontology NAME=PATH``).

    Example
    -------
    >>> import tempfile
    >>> server = CacheServiceServer(
    ...     DiskCacheStore(tempfile.mkdtemp()), host="127.0.0.1", port=0)
    >>> server.start()
    >>> server.url.startswith("http://127.0.0.1:")
    True
    >>> server.stop()
    """

    def __init__(
        self,
        store: DiskCacheStore,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        corpora: dict[str, tuple[str | Path, str | Path]] | None = None,
        job_workers: int = 1,
        index_dir: str | Path | None = None,
        metrics: ServiceMetrics | None = None,
        access_log=None,
        ontologies: dict[str, str | Path] | None = None,
    ) -> None:
        self.service = CacheService(
            store, corpora=corpora, job_workers=job_workers,
            index_dir=index_dir, metrics=metrics, access_log=access_log,
            ontologies=ontologies,
        )
        self._httpd = _ServiceHTTPServer((host, port), self.service)
        self._thread: threading.Thread | None = None
        self._serving = False

    @property
    def host(self) -> str:
        """The bound host."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolved even when constructed with 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should use."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Serve on a background thread (returns immediately)."""
        if self._thread is not None:
            raise ValidationError("server already started")
        self._serving = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve",
            daemon=True,
        )
        self._thread.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` or an interrupt."""
        self._serving = True
        self._httpd.serve_forever()

    def stop(self) -> None:
        """Graceful shutdown: stop accepting, close sockets, stop jobs."""
        if self._serving:
            # shutdown() blocks until the serve loop acknowledges; only
            # safe when a serve loop ran (the event starts cleared).
            self._httpd.shutdown()
            self._serving = False
        self._httpd.close_connections()
        self._httpd.server_close()
        self.service.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


def _open_access_log(target: str | Path):
    """``(writer, closer)`` for an access-log target (``-`` = stderr).

    The writer serialises one record per line (JSON Lines) under a
    lock, so concurrent handler threads never interleave partial
    lines.
    """
    if str(target) == "-":
        stream, closer = sys.stderr, (lambda: None)
    else:
        stream = open(target, "a", encoding="utf-8")
        closer = stream.close
    lock = threading.Lock()

    def writer(record: dict) -> None:
        line = json.dumps(record, sort_keys=True)
        with lock, contextlib.suppress(ValueError):
            # ValueError: the stream was closed late in shutdown.
            stream.write(line + "\n")
            stream.flush()

    return writer, closer


def serve(
    *,
    cache_dir: str | Path,
    host: str = "127.0.0.1",
    port: int = 8750,
    cache_max_bytes: int | None = None,
    corpora: dict[str, tuple[str | Path, str | Path]] | None = None,
    job_workers: int = 1,
    index_dir: str | Path | None = None,
    access_log: str | Path | None = None,
    watch: dict[str, str | Path] | None = None,
    watch_poll_seconds: float = 1.0,
    ontologies: dict[str, str | Path] | None = None,
    ready: "threading.Event | None" = None,
) -> int:
    """Blocking entry point of ``repro serve``.

    Installs SIGTERM/SIGINT handlers for a graceful shutdown (stop
    accepting connections, close the listening socket, stop the job
    pool) and serves until one arrives.  ``ready`` (when given) is set
    once the socket is bound — tests use it to avoid sleeping.
    ``access_log`` turns on the structured JSON access log (a file
    path, or ``-`` for stderr).  ``watch`` maps registered scenario
    names to drop directories: a
    :class:`~repro.service.watcher.DirectoryWatcher` per entry feeds
    dropped ``*.jsonl`` document files into the scenario's delta path
    (``repro serve --watch NAME=DIR``).  ``ontologies`` maps names to
    ontology files (JSON or ``.obo``) registered for ``POST
    /recommend`` (``repro serve --ontology NAME=PATH``).
    """
    store = DiskCacheStore(cache_dir, max_bytes=cache_max_bytes)
    log_writer, log_closer = (None, lambda: None)
    if access_log is not None:
        log_writer, log_closer = _open_access_log(access_log)
    server = CacheServiceServer(
        store,
        host=host,
        port=port,
        corpora=corpora,
        job_workers=job_workers,
        index_dir=index_dir,
        access_log=log_writer,
        ontologies=ontologies,
    )
    watchers = []
    if watch:
        from repro.service.watcher import DirectoryWatcher

        registered = set(server.service.jobs.corpora())
        for name, directory in sorted(watch.items()):
            if name not in registered:
                raise ValidationError(
                    f"--watch names unregistered scenario {name!r}; "
                    f"registered: {sorted(registered)}"
                )
            watchers.append(
                DirectoryWatcher(
                    server.service.jobs,
                    name,
                    directory,
                    poll_seconds=watch_poll_seconds,
                )
            )

    def _interrupt(signum, frame):  # pragma: no cover - signal plumbing
        raise KeyboardInterrupt

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(ValueError):  # non-main thread
            previous[signum] = signal.signal(signum, _interrupt)
    print(f"repro service listening on {server.url} "
          f"(cache_dir={store.cache_dir})", flush=True)
    registered_ontologies = server.service.registry.names()
    if registered_ontologies:
        print(
            "ontologies registered for /recommend: "
            + ", ".join(registered_ontologies),
            flush=True,
        )
    for watcher in watchers:
        watcher.start()
        print(
            f"watching {watcher.directory} -> scenario "
            f"{watcher.scenario!r}",
            flush=True,
        )
    if ready is not None:
        ready.set()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        for watcher in watchers:
            watcher.stop()
        server.stop()
        log_closer()
        for signum, handler in previous.items():  # pragma: no cover
            signal.signal(signum, handler)
    print("repro service stopped", flush=True)
    return 0
