"""The stdlib HTTP service: shared feature cache + enrichment jobs.

``repro serve`` turns the single-host
:class:`~repro.polysemy.cache_store.DiskCacheStore` into an Aber-OWL
style *served* deployment: one long-lived process owns the store, and
any number of pipeline runs — on any machine — point
``EnrichmentConfig(cache_url=...)`` at it to share warm Step II
vectors.  The server is pure standard library
(:class:`http.server.ThreadingHTTPServer`), so serving adds **zero**
runtime dependencies.

Routes
------
===========================  ==========================================
``GET  /healthz``            liveness document
``GET  /stats``              store counters (entries, store_bytes, ...)
``GET  /cache/info``         generation/shard layout (``repro cache-info``)
``GET  /cache/vector?...``   one vector, binary (404 = miss)
``PUT  /cache/vector?...``   store one vector, binary body
``POST /cache/clear``        drop every entry
``GET  /corpora``            corpus names registered for jobs
``POST /jobs``               submit an enrichment job (202 + job id)
``GET  /jobs``               every job's status document
``GET  /jobs/<id>``          one job's status/result document
===========================  ==========================================

Vector payloads use the raw-binary wire format of
:mod:`repro.service.wire`; everything else is JSON.  Concurrency: the
threading server handles each connection on its own thread, and
:class:`DiskCacheStore` serialises writers internally (thread lock +
cross-process flock), so N concurrent clients behave exactly like N
concurrent pipeline processes on one cache directory — a layout the
store's concurrency suite already hammers.
"""

from __future__ import annotations

import json
import signal
import socket
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import urlsplit

from repro.errors import ValidationError
from repro.polysemy.cache_store import DiskCacheStore
from repro.service.jobs import JobManager
from repro.service.wire import (
    HEADER_CRC,
    HEADER_DTYPE,
    HEADER_MISS,
    HEADER_SHAPE,
    decode_key,
    decode_vector,
    encode_vector,
)

#: Largest accepted PUT body (a feature vector is ~a few hundred bytes;
#: this bound just keeps a confused client from streaming gigabytes).
MAX_VECTOR_BYTES = 64 << 20


class CacheService:
    """The served state: one store, one job manager, request counters."""

    def __init__(
        self,
        store: DiskCacheStore,
        *,
        corpora: dict[str, tuple[str | Path, str | Path]] | None = None,
        job_workers: int = 1,
        index_dir: str | Path | None = None,
    ) -> None:
        self.store = store
        self.jobs = JobManager(
            corpora, store=store, job_workers=job_workers,
            index_dir=index_dir,
        )
        self._lock = threading.Lock()
        self._requests = 0
        self._vector_gets = 0
        self._vector_puts = 0
        self._vector_hits = 0

    def count_request(self, *, get=False, put=False, hit=False) -> None:
        """Bump the service-level traffic counters."""
        with self._lock:
            self._requests += 1
            self._vector_gets += int(get)
            self._vector_puts += int(put)
            self._vector_hits += int(hit)

    def stats(self) -> dict:
        """The ``GET /stats`` document: store + traffic counters."""
        with self._lock:
            traffic = {
                "requests": self._requests,
                "vector_gets": self._vector_gets,
                "vector_puts": self._vector_puts,
                "vector_hits": self._vector_hits,
            }
        return {
            "entries": len(self.store),
            **self.store.stats(),
            **traffic,
        }

    def shutdown(self) -> None:
        """Stop the job pool (running jobs are abandoned)."""
        self.jobs.shutdown(wait=False)


class _ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that hands the service to its handlers.

    Open keep-alive connections are tracked so a graceful shutdown can
    actually sever them — without this, an idle client connection would
    keep being served by its handler thread after ``shutdown()``, and a
    "stopped" in-process server would behave nothing like a killed one.
    """

    daemon_threads = True

    def __init__(self, address, service: CacheService) -> None:
        self.service = service
        self._open_connections: set[socket.socket] = set()
        self._connections_guard = threading.Lock()
        super().__init__(address, _ServiceHandler)

    def track_connection(self, connection: socket.socket) -> None:
        with self._connections_guard:
            self._open_connections.add(connection)

    def untrack_connection(self, connection: socket.socket) -> None:
        with self._connections_guard:
            self._open_connections.discard(connection)

    def handle_error(self, request, client_address) -> None:
        exc = sys.exc_info()[1]
        if isinstance(exc, (ConnectionError, TimeoutError)):
            return  # clients vanish mid-request; that is not our error
        super().handle_error(request, client_address)

    def close_connections(self) -> None:
        """Sever every live client connection (used at shutdown)."""
        with self._connections_guard:
            connections = list(self._open_connections)
            self._open_connections.clear()
        for connection in connections:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass  # already closing on its own
            try:
                connection.close()
            except OSError:  # pragma: no cover - double close
                pass


class _ServiceHandler(BaseHTTPRequestHandler):
    server_version = "repro-service/1.0"
    #: Keep-alive so RemoteCacheStore's connection reuse actually reuses.
    protocol_version = "HTTP/1.1"
    #: TCP_NODELAY on accepted sockets: cache traffic is many small
    #: request/response pairs, and Nagle + delayed-ACK would add ~40ms
    #: to every round trip.
    disable_nagle_algorithm = True

    @property
    def service(self) -> CacheService:
        return self.server.service

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging is the operator's proxy's job, not ours

    def setup(self) -> None:
        super().setup()
        self.server.track_connection(self.connection)

    def finish(self) -> None:
        try:
            super().finish()
        finally:
            self.server.untrack_connection(self.connection)

    # -- response helpers ---------------------------------------------------

    def _send(
        self, status: int, body: bytes, *, headers: dict[str, str]
    ) -> None:
        self.send_response(status)
        for name, value in headers.items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if body:
            self.wfile.write(body)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send(
            status, body, headers={"Content-Type": "application/json"}
        )

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_body(self) -> bytes | None:
        """The request body, or None when the declared length is bad.

        A body we refuse to read leaves unread bytes on the keep-alive
        stream — the next "request line" would be vector bytes — so the
        None path also marks the connection for closure.
        """
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = -1
        if length < 0 or length > MAX_VECTOR_BYTES:
            self.close_connection = True
            return None
        return self.rfile.read(length) if length else b""

    def _drain_body(self) -> None:
        """Consume a request body we are about to error out on.

        Error responses that skip ``rfile.read`` would desynchronise
        the HTTP/1.1 keep-alive stream (the unread body bytes become
        the "next request"); draining keeps the connection usable.
        """
        self._read_body()

    # -- routing ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib dispatch name
        parsed = urlsplit(self.path)
        route = parsed.path.rstrip("/") or "/"
        if route == "/healthz":
            self.service.count_request()
            self._send_json(
                200, {"status": "ok", "service": self.server_version}
            )
        elif route == "/stats":
            self.service.count_request()
            self._send_json(200, self.service.stats())
        elif route == "/cache/info":
            self.service.count_request()
            self._send_json(200, self.service.store.describe())
        elif route == "/cache/vector":
            self._get_vector(parsed.query)
        elif route == "/corpora":
            self.service.count_request()
            self._send_json(200, {"corpora": self.service.jobs.corpora()})
        elif route == "/jobs":
            self.service.count_request()
            self._send_json(200, {"jobs": self.service.jobs.jobs()})
        elif route.startswith("/jobs/"):
            self.service.count_request()
            document = self.service.jobs.job(route[len("/jobs/"):])
            if document is None:
                self._send_error_json(404, "unknown job id")
            else:
                self._send_json(200, document)
        else:
            self._send_error_json(404, f"unknown route {route!r}")

    def do_PUT(self) -> None:  # noqa: N802 - stdlib dispatch name
        parsed = urlsplit(self.path)
        if parsed.path.rstrip("/") != "/cache/vector":
            self._drain_body()
            self._send_error_json(404, f"unknown route {parsed.path!r}")
            return
        self._put_vector(parsed.query)

    def do_POST(self) -> None:  # noqa: N802 - stdlib dispatch name
        route = urlsplit(self.path).path.rstrip("/")
        if route == "/cache/clear":
            self._drain_body()
            self.service.count_request()
            self.service.store.clear()
            self._send(204, b"", headers={})
        elif route == "/jobs":
            self._submit_job()
        else:
            self._drain_body()
            self._send_error_json(404, f"unknown route {route!r}")

    # -- vector endpoints -----------------------------------------------------

    def _get_vector(self, query: str) -> None:
        key = decode_key(query)
        if key is None:
            self.service.count_request(get=True)
            self._send_error_json(
                400, "corpus, term, and config query params required"
            )
            return
        vector = self.service.store.get(key)
        self.service.count_request(get=True, hit=vector is not None)
        if vector is None:
            # The miss marker distinguishes "this service, entry absent"
            # from any other 404 (misrouted URL), which clients count as
            # a failure.
            body = json.dumps({"error": "miss"}).encode("utf-8")
            self._send(
                404,
                body,
                headers={
                    "Content-Type": "application/json",
                    HEADER_MISS: "1",
                },
            )
            return
        headers, body = encode_vector(vector)
        headers["Content-Type"] = "application/octet-stream"
        self._send(200, body, headers=headers)

    def _put_vector(self, query: str) -> None:
        self.service.count_request(put=True)
        # Read the body before any validation verdict: an error response
        # with the body left unread would desynchronise keep-alive.
        body = self._read_body()
        key = decode_key(query)
        if key is None:
            self._send_error_json(
                400, "corpus, term, and config query params required"
            )
            return
        if body is None:
            self._send_error_json(400, "bad Content-Length")
            return
        vector = decode_vector(
            self.headers.get(HEADER_DTYPE),
            self.headers.get(HEADER_SHAPE),
            self.headers.get(HEADER_CRC),
            body,
        )
        if vector is None:
            self._send_error_json(
                400, "malformed vector payload (dtype/shape/crc headers)"
            )
            return
        self.service.store.put(key, vector)
        self._send(204, b"", headers={})

    # -- job endpoints --------------------------------------------------------

    def _submit_job(self) -> None:
        self.service.count_request()
        body = self._read_body()
        if body is None:
            self._send_error_json(400, "bad Content-Length")
            return
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, ValueError):
            self._send_error_json(400, "request body must be JSON")
            return
        if not isinstance(payload, dict) or "corpus" not in payload:
            self._send_error_json(400, 'JSON body with a "corpus" required')
            return
        overrides = payload.get("config")
        if overrides is None:
            overrides = {}
        if not isinstance(overrides, dict):
            self._send_error_json(400, '"config" must be an object')
            return
        try:
            job_id = self.service.jobs.submit(
                str(payload["corpus"]), overrides
            )
        except ValidationError as exc:
            self._send_error_json(400, str(exc))
            return
        self._send_json(202, {"job": job_id})


class CacheServiceServer:
    """Lifecycle wrapper: bind, serve (foreground or background), stop.

    Parameters
    ----------
    store:
        The :class:`DiskCacheStore` to serve (its directory is the
        service's persistent state).
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (the bound
        port is available as :attr:`port` right after construction —
        handy for tests and benchmarks).
    corpora:
        Optional ``name -> (ontology_json, corpus_jsonl)`` registry for
        the enrichment-job endpoints.
    job_workers:
        Concurrent server-side enrichment jobs.
    index_dir:
        Optional on-disk corpus index store shared by the job runner
        (see :class:`~repro.corpus.index_store.IndexStore`): corpus
        indexes persist across jobs and service restarts.

    Example
    -------
    >>> import tempfile
    >>> server = CacheServiceServer(
    ...     DiskCacheStore(tempfile.mkdtemp()), host="127.0.0.1", port=0)
    >>> server.start()
    >>> server.url.startswith("http://127.0.0.1:")
    True
    >>> server.stop()
    """

    def __init__(
        self,
        store: DiskCacheStore,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        corpora: dict[str, tuple[str | Path, str | Path]] | None = None,
        job_workers: int = 1,
        index_dir: str | Path | None = None,
    ) -> None:
        self.service = CacheService(
            store, corpora=corpora, job_workers=job_workers,
            index_dir=index_dir,
        )
        self._httpd = _ServiceHTTPServer((host, port), self.service)
        self._thread: threading.Thread | None = None
        self._serving = False

    @property
    def host(self) -> str:
        """The bound host."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolved even when constructed with 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should use."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Serve on a background thread (returns immediately)."""
        if self._thread is not None:
            raise ValidationError("server already started")
        self._serving = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve",
            daemon=True,
        )
        self._thread.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` or an interrupt."""
        self._serving = True
        self._httpd.serve_forever()

    def stop(self) -> None:
        """Graceful shutdown: stop accepting, close sockets, stop jobs."""
        if self._serving:
            # shutdown() blocks until the serve loop acknowledges; only
            # safe when a serve loop ran (the event starts cleared).
            self._httpd.shutdown()
            self._serving = False
        self._httpd.close_connections()
        self._httpd.server_close()
        self.service.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


def serve(
    *,
    cache_dir: str | Path,
    host: str = "127.0.0.1",
    port: int = 8750,
    cache_max_bytes: int | None = None,
    corpora: dict[str, tuple[str | Path, str | Path]] | None = None,
    job_workers: int = 1,
    index_dir: str | Path | None = None,
    ready: "threading.Event | None" = None,
) -> int:
    """Blocking entry point of ``repro serve``.

    Installs SIGTERM/SIGINT handlers for a graceful shutdown (stop
    accepting connections, close the listening socket, stop the job
    pool) and serves until one arrives.  ``ready`` (when given) is set
    once the socket is bound — tests use it to avoid sleeping.
    """
    store = DiskCacheStore(cache_dir, max_bytes=cache_max_bytes)
    server = CacheServiceServer(
        store,
        host=host,
        port=port,
        corpora=corpora,
        job_workers=job_workers,
        index_dir=index_dir,
    )

    def _interrupt(signum, frame):  # pragma: no cover - signal plumbing
        raise KeyboardInterrupt

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _interrupt)
        except ValueError:  # pragma: no cover - non-main thread
            pass
    print(f"repro service listening on {server.url} "
          f"(cache_dir={store.cache_dir})", flush=True)
    if ready is not None:
        ready.set()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        for signum, handler in previous.items():  # pragma: no cover
            signal.signal(signum, handler)
    print("repro service stopped", flush=True)
    return 0
