"""First-class observability for the served deployment: zero-dep metrics.

The serving layer needs to answer "is it healthy, is it fast, is the
cache working" *while under load from >1k concurrent clients* — which
rules out both external dependencies (the repo is stdlib+numpy only)
and naive shared counters (a single hot lock serialises every handler
thread).  This module provides the three Prometheus-style instrument
kinds the service exposes on ``GET /metrics``:

* :class:`Counter` — monotonically increasing, **lock-sharded**: each
  increment takes one of ``N_SHARDS`` stripe locks picked by thread
  identity, so concurrent handler threads rarely contend; reads sum
  the stripes under all locks, so a scrape always sees a value ≥ any
  previously scraped one (monotonicity is preserved exactly).
* :class:`Gauge` — a current-value instrument (in-flight requests).
* :class:`Histogram` — fixed-boundary latency buckets (no dynamic
  resizing, no quantile sketches: scrapers derive p50/p99 from the
  cumulative bucket counts, which is exactly Prometheus' model).

Instruments carry labels (``route``, ``status``, ``corpus``, ...);
each distinct label combination is one independent *child* created on
first use.  :class:`MetricsRegistry.render` serialises everything in
the Prometheus text exposition format (version 0.0.4), which is also
trivially greppable by humans and CI smoke checks.

:class:`ServiceMetrics` bundles the registry plus the concrete
instruments the HTTP server and job manager record into — one object
handed through :class:`~repro.service.server.CacheService`.
"""

from __future__ import annotations

import itertools
import threading
from bisect import bisect_left
from collections.abc import Iterable
from time import perf_counter
from types import TracebackType
from typing import Any, Generic, TypeVar

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ServiceMetrics",
    "DEFAULT_LATENCY_BUCKETS",
    "SCORE_BUCKETS",
    "CONTENT_TYPE",
]

#: The exposition Content-Type Prometheus scrapers expect.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Request/job latency boundaries in seconds: sub-millisecond cache
#: hits through multi-second enrichment jobs.  Buckets are cumulative
#: upper bounds (``le``), Prometheus convention.
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Recommendation-score boundaries: criterion scores live in [0, 1], so
#: ten equal buckets give the score distributions a stable shape.
SCORE_BUCKETS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)

#: Stripe count of the sharded counters.  8 covers the threading
#: server's realistic handler concurrency without bloating reads.
N_SHARDS = 8

# Each thread gets a stripe on first use, assigned round-robin.  (The
# obvious ``get_ident() % N_SHARDS`` is a trap: Linux thread idents are
# pointer-aligned, so the modulus would park every thread on stripe 0.)
_thread_shard = threading.local()
_shard_rr = itertools.count()


def _my_shard() -> int:
    shard: int | None = getattr(_thread_shard, "index", None)
    if shard is None:
        shard = next(_shard_rr) % N_SHARDS
        _thread_shard.index = shard
    return shard


def _escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    """Render a sample value (integers without a trailing ``.0``)."""
    if value == int(value):
        return str(int(value))
    return repr(value)


def _labels_text(names: tuple[str, ...], values: tuple[str, ...]) -> str:
    """``{k="v",...}`` (empty string for an unlabelled child)."""
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values, strict=True)
    )
    return "{" + pairs + "}"


class _ShardedCount:
    """One child counter: ``N_SHARDS`` independently locked stripes.

    ``inc`` touches a single stripe picked by the calling thread's
    identity, so two handler threads increment without contending
    (unless they hash to the same stripe).  ``value`` locks each
    stripe in turn — increments are never lost and never double
    counted, so scraped values are exactly monotone.
    """

    __slots__ = ("_values", "_locks")

    def __init__(self) -> None:
        self._values = [0.0] * N_SHARDS
        self._locks = [threading.Lock() for _ in range(N_SHARDS)]

    def inc(self, amount: float = 1.0) -> None:
        shard = _my_shard()
        with self._locks[shard]:
            self._values[shard] += amount

    def value(self) -> float:
        total = 0.0
        for shard in range(N_SHARDS):
            with self._locks[shard]:
                total += self._values[shard]
        return total


#: The per-label-set child type of a concrete instrument.
C = TypeVar("C")


class _Metric(Generic[C]):
    """Shared labelled-children plumbing of every instrument kind."""

    kind = "untyped"

    def __init__(
        self, name: str, help_text: str, label_names: tuple[str, ...] = ()
    ) -> None:
        self.name = name
        self.help_text = help_text
        self.label_names = tuple(label_names)
        self._children: dict[tuple[str, ...], C] = {}
        self._children_lock = threading.Lock()

    def _child(self, labels: dict[str, str]) -> C:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            with self._children_lock:
                child = self._children.setdefault(key, self._new_child())
        return child

    def _new_child(self) -> C:  # pragma: no cover - overridden
        raise NotImplementedError

    def samples(self) -> list[str]:  # pragma: no cover - overridden
        raise NotImplementedError

    def children(self) -> list[tuple[tuple[str, ...], C]]:
        """Stable (sorted) snapshot of the label-set → child mapping."""
        with self._children_lock:
            return sorted(self._children.items())


class Counter(_Metric[_ShardedCount]):
    """A monotonically increasing, lock-sharded counter.

    >>> c = Counter("repro_demo_total", "demo", ("kind",))
    >>> c.inc(kind="a"); c.inc(2, kind="a")
    >>> c.value(kind="a")
    3.0
    """

    kind = "counter"

    def _new_child(self) -> _ShardedCount:
        return _ShardedCount()

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self._child(labels).inc(amount)

    def value(self, **labels: str) -> float:
        return self._child(labels).value()

    def samples(self) -> list[str]:
        return [
            f"{self.name}{_labels_text(self.label_names, key)} "
            f"{_format_value(child.value())}"
            for key, child in self.children()
        ]


class _GaugeChild:
    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Metric[_GaugeChild]):
    """A current-value instrument (e.g. in-flight requests)."""

    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        self._child(labels).add(amount)

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self._child(labels).add(-amount)

    def set(self, value: float, **labels: str) -> None:
        self._child(labels).set(value)

    def value(self, **labels: str) -> float:
        return self._child(labels).value()

    def samples(self) -> list[str]:
        return [
            f"{self.name}{_labels_text(self.label_names, key)} "
            f"{_format_value(child.value())}"
            for key, child in self.children()
        ]


class _HistogramChild:
    """Bucket counts + sum + count behind one small lock.

    An observation is a bisect plus three additions — cheap enough
    that striping would buy nothing over the single lock.
    """

    __slots__ = ("_buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        self._buckets = buckets
        self._counts = [0] * (len(buckets) + 1)  # last = +Inf overflow
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        # ``le`` is an inclusive upper bound: a value equal to a
        # boundary lands in that boundary's bucket (bisect_left).
        index = bisect_left(self._buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> tuple[list[int], float, int]:
        """(cumulative bucket counts incl. +Inf, sum, count)."""
        with self._lock:
            counts = list(self._counts)
            total_sum = self._sum
            total_count = self._count
        cumulative = []
        running = 0
        for count in counts:
            running += count
            cumulative.append(running)
        return cumulative, total_sum, total_count


class Histogram(_Metric[_HistogramChild]):
    """Fixed-boundary histogram in the Prometheus cumulative model.

    >>> h = Histogram("repro_demo_seconds", "demo", buckets=(0.1, 1.0))
    >>> h.observe(0.1)  # boundary values are inclusive (le semantics)
    >>> h.snapshot()[0][:2]
    [1, 1]
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: tuple[str, ...] = (),
        *,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, label_names)
        boundaries = tuple(float(b) for b in buckets)
        if not boundaries or list(boundaries) != sorted(set(boundaries)):
            raise ValueError(
                f"buckets must be non-empty and strictly increasing, "
                f"got {buckets}"
            )
        self.buckets = boundaries

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float, **labels: str) -> None:
        self._child(labels).observe(value)

    def snapshot(self, **labels: str) -> tuple[list[int], float, int]:
        return self._child(labels).snapshot()

    def samples(self) -> list[str]:
        lines: list[str] = []
        for key, child in self.children():
            cumulative, total_sum, total_count = child.snapshot()
            # cumulative carries one extra entry (the +Inf overflow),
            # emitted separately below: truncation is the point.
            for boundary, running in zip(self.buckets, cumulative, strict=False):
                labels = _labels_text(
                    self.label_names + ("le",),
                    key + (_format_value(boundary),),
                )
                lines.append(f"{self.name}_bucket{labels} {running}")
            inf_labels = _labels_text(
                self.label_names + ("le",), key + ("+Inf",)
            )
            lines.append(f"{self.name}_bucket{inf_labels} {cumulative[-1]}")
            plain = _labels_text(self.label_names, key)
            lines.append(f"{self.name}_sum{plain} {repr(total_sum)}")
            lines.append(f"{self.name}_count{plain} {total_count}")
        return lines


#: Bound for :meth:`MetricsRegistry.register`'s pass-through typing.
M = TypeVar("M", bound=_Metric[Any])


class MetricsRegistry:
    """Named instruments + the text-format exposition of all of them."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric[Any]] = {}
        self._lock = threading.Lock()

    def register(self, metric: M) -> M:
        with self._lock:
            if metric.name in self._metrics:
                raise ValueError(f"metric {metric.name!r} already registered")
            self._metrics[metric.name] = metric
        return metric

    def counter(
        self, name: str, help_text: str, labels: Iterable[str] = ()
    ) -> Counter:
        return self.register(Counter(name, help_text, tuple(labels)))

    def gauge(
        self, name: str, help_text: str, labels: Iterable[str] = ()
    ) -> Gauge:
        return self.register(Gauge(name, help_text, tuple(labels)))

    def histogram(
        self, name: str, help_text: str, labels: Iterable[str] = (), *,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self.register(
            Histogram(name, help_text, tuple(labels), buckets=buckets)
        )

    def render(self) -> str:
        """The Prometheus text exposition of every registered metric."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        blocks: list[str] = []
        for metric in metrics:
            lines = [
                f"# HELP {metric.name} {metric.help_text}",
                f"# TYPE {metric.name} {metric.kind}",
            ]
            lines.extend(metric.samples())
            blocks.append("\n".join(lines))
        return "\n".join(blocks) + "\n"


class ServiceMetrics:
    """The served deployment's concrete instruments, ready to record.

    One instance lives on the
    :class:`~repro.service.server.CacheService`; the HTTP handler and
    the :class:`~repro.service.jobs.JobManager` record into it, and
    ``GET /metrics`` serves :meth:`render`.
    """

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.http_requests = self.registry.counter(
            "repro_http_requests_total",
            "HTTP requests served, by method, route, and status.",
            ("method", "route", "status"),
        )
        self.http_seconds = self.registry.histogram(
            "repro_http_request_seconds",
            "HTTP request latency by route.",
            ("route",),
        )
        self.inflight = self.registry.gauge(
            "repro_http_inflight_requests",
            "Requests currently being handled.",
        )
        self.cache_ops = self.registry.counter(
            "repro_cache_requests_total",
            "Vector cache operations by op (get/put/batch_get/batch_put) "
            "and outcome (hit/miss/stored/error).",
            ("op", "outcome"),
        )
        self.batch_vectors = self.registry.counter(
            "repro_batch_vectors_total",
            "Vectors carried inside batch frames, by op.",
            ("op",),
        )
        self.jobs = self.registry.counter(
            "repro_jobs_total",
            "Enrichment jobs by corpus and status "
            "(submitted/replayed/done/failed).",
            ("corpus", "status"),
        )
        self.job_seconds = self.registry.histogram(
            "repro_job_seconds",
            "Server-side enrichment job duration by corpus.",
            ("corpus",),
        )
        self.delta_seconds = self.registry.histogram(
            "repro_delta_seconds",
            "Streaming delta re-enrichment duration by corpus.",
            ("corpus",),
        )
        self.delta_terms = self.registry.counter(
            "repro_delta_terms_recomputed_total",
            "Terms re-featurised by streaming deltas, by corpus (terms "
            "with unchanged postings come warm from the cache instead).",
            ("corpus",),
        )
        self.recommend_seconds = self.registry.histogram(
            "repro_recommend_seconds",
            "Ontology recommendation duration, by mode (sync/job).",
            ("mode",),
        )
        self.recommend_scores = self.registry.histogram(
            "repro_recommend_score",
            "Top-ranked ontology's per-criterion recommendation scores.",
            ("criterion",),
            buckets=SCORE_BUCKETS,
        )

    def render(self) -> str:
        """The ``GET /metrics`` response body."""
        return self.registry.render()

    # -- recording helpers (keep call sites one-liners) --------------------

    def observe_request(
        self, *, method: str, route: str, status: int, seconds: float
    ) -> None:
        self.http_requests.inc(
            method=method, route=route, status=str(status)
        )
        self.http_seconds.observe(seconds, route=route)

    def count_cache_op(self, op: str, outcome: str, n: int = 1) -> None:
        if n:
            self.cache_ops.inc(n, op=op, outcome=outcome)

    def job_submitted(self, corpus: str, *, replayed: bool) -> None:
        self.jobs.inc(
            corpus=corpus, status="replayed" if replayed else "submitted"
        )

    def job_finished(
        self, corpus: str, *, status: str, seconds: float
    ) -> None:
        self.jobs.inc(corpus=corpus, status=status)
        self.job_seconds.observe(seconds, corpus=corpus)

    def delta_finished(
        self, corpus: str, *, seconds: float, terms_recomputed: int
    ) -> None:
        self.delta_seconds.observe(seconds, corpus=corpus)
        if terms_recomputed:
            self.delta_terms.inc(terms_recomputed, corpus=corpus)

    def recommend_finished(
        self, *, mode: str, seconds: float, top_scores: dict[str, float]
    ) -> None:
        """Record one finished recommendation.

        ``top_scores`` is the winning ontology's per-criterion score
        map (empty when nothing was ranked): the score histograms track
        what the *best available* ontology offers over time, which is
        the "is our registry still adequate" signal.
        """
        self.recommend_seconds.observe(seconds, mode=mode)
        for criterion, score in sorted(top_scores.items()):
            self.recommend_scores.observe(score, criterion=criterion)


class request_timer:
    """Tiny context helper: ``with request_timer() as t: ...; t.seconds``."""

    __slots__ = ("started", "seconds")

    started: float
    seconds: float

    def __enter__(self) -> "request_timer":
        self.started = perf_counter()
        self.seconds = 0.0
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.seconds = perf_counter() - self.started
