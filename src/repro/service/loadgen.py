"""Many-client load generator for the cache service (``repro loadbench``).

The serving layer's whole claim is "fine for >1k concurrent clients" —
a claim only a load generator can check.  :func:`run_load` drives the
service with N client threads, each owning its *own*
:class:`~repro.service.client.RemoteCacheStore` +
:class:`~repro.service.client.ServiceClient` (one keep-alive
connection per client, like real tenants), issuing a deterministic
seeded mix of operations:

* ``get`` / ``put`` — the single-vector routes,
* ``batch_get`` / ``batch_put`` — the framed ``/vectors/batch`` routes,
* ``stats`` — a conditional GET (so the 304 path is exercised under
  concurrency),
* optionally ``job`` — idempotent job submissions against a registered
  corpus.

Every operation's wall time lands in a per-op latency list; the report
(:class:`LoadReport`) carries sustained request/s, per-op p50/p99, and
a failure count assembled from caught
:class:`~repro.service.client.ServiceError`\\ s plus each store's
degraded-to-miss ``error_count``.  CI's ``service-load-smoke`` job
asserts the failure count is zero and that ``/metrics`` saw the
traffic; ``benchmarks/bench_service_load.py`` turns the report into
``BENCH_service_load.json``.

Determinism: thread interleaving is real (that is the point), but each
client's op sequence and payloads derive from ``seed + client index``,
so two runs issue the identical request multiset.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.service.client import (
    RemoteCacheStore,
    ServiceClient,
    ServiceError,
)

__all__ = ["LoadReport", "OpStats", "run_load", "DEFAULT_MIX"]

#: Relative op weights of the default traffic mix: read-heavy (the
#: realistic shape for a warm shared cache) with a steady trickle of
#: batches and stats polls.
DEFAULT_MIX: dict[str, float] = {
    "get": 4.0,
    "put": 2.0,
    "batch_get": 2.0,
    "batch_put": 1.0,
    "stats": 1.0,
}

#: Feature-vector length used for generated payloads (the real 23-dim
#: polysemy vectors are this order of magnitude).
_VECTOR_DIM = 23


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted sample (0.0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = min(
        len(sorted_values) - 1,
        max(0, int(round(fraction * (len(sorted_values) - 1)))),
    )
    return sorted_values[rank]


@dataclass
class OpStats:
    """One operation kind's latency profile."""

    count: int = 0
    p50_seconds: float = 0.0
    p99_seconds: float = 0.0
    mean_seconds: float = 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "p50_seconds": self.p50_seconds,
            "p99_seconds": self.p99_seconds,
            "mean_seconds": self.mean_seconds,
        }


@dataclass
class LoadReport:
    """What one load run measured (the ``BENCH_service_load`` payload)."""

    clients: int
    requests: int
    duration_seconds: float
    requests_per_second: float
    failed_requests: int
    p50_seconds: float
    p99_seconds: float
    per_op: dict[str, OpStats] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "clients": self.clients,
            "requests": self.requests,
            "duration_seconds": self.duration_seconds,
            "requests_per_second": self.requests_per_second,
            "failed_requests": self.failed_requests,
            "p50_seconds": self.p50_seconds,
            "p99_seconds": self.p99_seconds,
            "per_op": {
                name: stats.to_dict()
                for name, stats in sorted(self.per_op.items())
            },
        }


class _ClientWorker:
    """One simulated tenant: its own connections, ops, and latencies."""

    def __init__(
        self,
        base_url: str,
        *,
        index: int,
        ops: int,
        mix: dict[str, float],
        seed: int,
        batch_size: int,
        job_corpus: str | None,
        timeout: float,
    ) -> None:
        self._base_url = base_url
        self._index = index
        self._ops = ops
        self._rng = random.Random(seed + index)
        self._names = sorted(mix)
        self._weights = [mix[name] for name in self._names]
        self._batch_size = batch_size
        self._job_corpus = job_corpus
        self._timeout = timeout
        self.latencies: dict[str, list[float]] = {}
        self.failures = 0
        self._etag: str | None = None

    def _key(self, slot: int):
        # Client-striped key space: collisions across clients are
        # intentional (shared-cache traffic), collisions within a
        # client make warm gets plausible.
        return ("loadgen", f"client{self._index % 4}-term{slot}", "mix")

    def _vector(self, slot: int) -> np.ndarray:
        return np.full(_VECTOR_DIM, float(slot), dtype=np.float64)

    def run(self) -> None:
        store = RemoteCacheStore(
            self._base_url,
            timeout=self._timeout,
            batch_size=self._batch_size,
        )
        client = ServiceClient(self._base_url, timeout=self._timeout)
        errors_before = store.error_count
        try:
            for _ in range(self._ops):
                op = self._rng.choices(self._names, self._weights)[0]
                started = time.perf_counter()
                try:
                    self._issue(op, store, client)
                except ServiceError:
                    self.failures += 1
                self.latencies.setdefault(op, []).append(
                    time.perf_counter() - started
                )
        finally:
            # Degraded-to-miss network failures never raise; the store
            # counts them, and a load test must not launder them away.
            self.failures += store.error_count - errors_before
            store.close()
            client.close()

    def _issue(
        self, op: str, store: RemoteCacheStore, client: ServiceClient
    ) -> None:
        slot = self._rng.randrange(64)
        if op == "get":
            store.get(self._key(slot))
        elif op == "put":
            store.put(self._key(slot), self._vector(slot))
        elif op == "batch_get":
            store.get_many(
                [self._key((slot + i) % 64) for i in range(self._batch_size)]
            )
        elif op == "batch_put":
            store.put_many(
                [
                    (self._key((slot + i) % 64), self._vector(slot + i))
                    for i in range(self._batch_size)
                ]
            )
        elif op == "stats":
            document, etag = client.stats_conditional(self._etag)
            del document
            self._etag = etag
        elif op == "job":
            # Idempotent resubmission: every client reuses its own key,
            # so the server creates one job per client and replays it
            # for the rest of the run.
            client.submit_job(
                self._job_corpus,
                idempotency_key=f"loadgen-client-{self._index}",
            )
        else:  # pragma: no cover - guarded by run_load validation
            raise ValidationError(f"unknown op {op!r}")


def run_load(
    base_url: str,
    *,
    clients: int = 8,
    ops_per_client: int = 50,
    mix: dict[str, float] | None = None,
    batch_size: int = 32,
    job_corpus: str | None = None,
    seed: int = 0,
    timeout: float = 10.0,
) -> LoadReport:
    """Drive the service at ``base_url`` with concurrent clients.

    ``mix`` maps op name → relative weight (default
    :data:`DEFAULT_MIX`); pass ``job_corpus`` to add idempotent ``job``
    submissions to the mix (weight 1 unless the mix names it).  The
    call blocks until every client finishes and returns the assembled
    :class:`LoadReport`.
    """
    if clients < 1:
        raise ValidationError(f"clients must be >= 1, got {clients}")
    if ops_per_client < 1:
        raise ValidationError(
            f"ops_per_client must be >= 1, got {ops_per_client}"
        )
    mix = dict(mix if mix is not None else DEFAULT_MIX)
    if job_corpus is not None:
        mix.setdefault("job", 1.0)
    elif "job" in mix:
        raise ValidationError('op "job" in the mix requires job_corpus')
    known = {"get", "put", "batch_get", "batch_put", "stats", "job"}
    unknown = sorted(set(mix) - known)
    if unknown:
        raise ValidationError(
            f"unknown ops in mix: {unknown}; known: {sorted(known)}"
        )
    if not mix or any(weight <= 0 for weight in mix.values()):
        raise ValidationError("mix weights must be positive and non-empty")

    workers = [
        _ClientWorker(
            base_url,
            index=index,
            ops=ops_per_client,
            mix=mix,
            seed=seed,
            batch_size=batch_size,
            job_corpus=job_corpus,
            timeout=timeout,
        )
        for index in range(clients)
    ]
    threads = [
        threading.Thread(
            target=worker.run, name=f"loadgen-{index}", daemon=True
        )
        for index, worker in enumerate(workers)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - started

    merged: dict[str, list[float]] = {}
    failures = 0
    for worker in workers:
        failures += worker.failures
        for op, values in worker.latencies.items():
            merged.setdefault(op, []).extend(values)
    per_op: dict[str, OpStats] = {}
    everything: list[float] = []
    for op, values in merged.items():
        values.sort()
        everything.extend(values)
        per_op[op] = OpStats(
            count=len(values),
            p50_seconds=_percentile(values, 0.50),
            p99_seconds=_percentile(values, 0.99),
            mean_seconds=sum(values) / len(values),
        )
    everything.sort()
    total = clients * ops_per_client
    return LoadReport(
        clients=clients,
        requests=total,
        duration_seconds=duration,
        requests_per_second=total / duration if duration > 0 else 0.0,
        failed_requests=failures,
        p50_seconds=_percentile(everything, 0.50),
        p99_seconds=_percentile(everything, 0.99),
        per_op=per_op,
    )
