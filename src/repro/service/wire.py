"""Wire format shared by the cache service and its clients.

The service speaks two payload kinds:

* **JSON** for everything structural (stats, job submission/status,
  cache layout) — small, human-debuggable with ``curl``;
* **raw binary** for the feature vectors themselves — a vector travels
  as its C-contiguous buffer bytes in the HTTP body, described by three
  response/request headers (:data:`HEADER_DTYPE`, :data:`HEADER_SHAPE`,
  :data:`HEADER_CRC`), exactly mirroring the
  :class:`~repro.polysemy.cache_store.DiskCacheStore` shard record so
  nothing is re-encoded on the hot path (no JSON/base64 blow-up).

Cache keys (corpus fingerprint, term, config fingerprint) travel as
URL-encoded query parameters, so any unicode term round-trips.

Decoding is defensive in the same way disk reads are: a missing header,
a shape/length mismatch, or a CRC failure makes :func:`decode_vector`
return ``None`` — the caller treats it as a clean miss, never a crash
or a wrong vector.

Batch framing
-------------
The per-vector round trip above is fine for one vector; a warm pipeline
run needs *hundreds*, and paying a full HTTP request per vector is what
made PR 5's path O(terms) round trips.  The batch codec packs N keyed
vectors into **one** HTTP body:

* a **key frame** (:func:`encode_key_batch`) is the lookup request —
  ``RBK1 | u32 count | (u32 keylen | keybytes)*`` where each key is its
  URL-encoded :func:`encode_key` string, so arbitrary unicode terms
  reuse the proven single-vector escaping;
* a **vector frame** (:func:`encode_vector_batch`) carries the answers
  (and batch PUT payloads) — ``RBV1 | u32 count`` then per entry the
  key, a present/miss flag, and for present entries dtype, shape, raw
  vector bytes, and a CRC-32.  A miss entry is the in-band equivalent
  of the single-vector route's marked 404.

Batch decoding is all-or-nothing: both frames travel as one TCP body,
so a CRC or structural failure anywhere means the body cannot be
trusted — the decoder returns ``None`` and the caller degrades every
key in the batch to a clean miss (one counted failure, never a crash
or a half-applied batch).  :data:`MAX_BATCH_ITEMS` bounds the entry
count on both sides so an oversized frame is rejected before any
allocation is sized from attacker-controlled lengths.
"""

from __future__ import annotations

import struct
import zlib
from urllib.parse import parse_qs, urlencode

import numpy as np

from repro.polysemy.cache_store import CacheKey

#: numpy dtype string (e.g. ``<f8``) of the body bytes.
HEADER_DTYPE = "X-Repro-Dtype"
#: Comma-separated vector shape (empty string for a 0-d array).
HEADER_SHAPE = "X-Repro-Shape"
#: CRC-32 of the body bytes, decimal.
HEADER_CRC = "X-Repro-Crc"
#: Marks a vector 404 as an *honest* cache miss from this service.  A
#: 404 without it came from something else (wrong path prefix, wrong
#: server, a proxy) — the client counts that as a failure, so a
#: misconfigured ``cache_url`` surfaces in ``remote_errors`` instead of
#: masquerading as an eternally cold cache.
HEADER_MISS = "X-Repro-Miss"


def encode_vector(vector: np.ndarray) -> tuple[dict[str, str], bytes]:
    """``(headers, body)`` describing ``vector`` on the wire."""
    vector = np.asarray(vector)
    if not vector.flags["C_CONTIGUOUS"]:
        vector = np.ascontiguousarray(vector)
    body = vector.tobytes()
    headers = {
        HEADER_DTYPE: vector.dtype.str,
        HEADER_SHAPE: ",".join(str(n) for n in vector.shape),
        HEADER_CRC: str(zlib.crc32(body)),
    }
    return headers, body


def decode_vector(
    dtype_str: str | None,
    shape_str: str | None,
    crc_str: str | None,
    body: bytes,
) -> np.ndarray | None:
    """The vector the headers + body describe, or None when malformed.

    Every failure mode — absent headers, unknown dtype, a length that
    does not match the declared shape, a CRC mismatch — returns None
    so transport corruption degrades to a cache miss.
    """
    if dtype_str is None or shape_str is None or crc_str is None:
        return None
    try:
        dtype = np.dtype(dtype_str)
        shape = tuple(
            int(n) for n in shape_str.split(",") if n != ""
        )
        crc = int(crc_str)
    except (TypeError, ValueError):
        return None
    expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    if expected != len(body) or zlib.crc32(body) != crc:
        return None
    try:
        return np.frombuffer(body, dtype=dtype).reshape(shape)
    except ValueError:
        return None


def encode_key(key: CacheKey) -> str:
    """URL query string addressing one cache entry."""
    corpus_fp, term, config_fp = key
    return urlencode(
        {"corpus": corpus_fp, "term": term, "config": config_fp}
    )


def decode_key(query: str) -> CacheKey | None:
    """Parse :func:`encode_key`'s query string back (None if incomplete)."""
    params = parse_qs(query, keep_blank_values=True)
    try:
        return (
            params["corpus"][0],
            params["term"][0],
            params["config"][0],
        )
    except KeyError:
        return None


# -- batch framing ----------------------------------------------------------

#: Magic prefix of a key frame (batch lookup request body).
KEY_BATCH_MAGIC = b"RBK1"
#: Magic prefix of a vector frame (batch response / batch PUT body).
VECTOR_BATCH_MAGIC = b"RBV1"
#: Hard cap on entries per frame, enforced by encoder and decoder alike
#: (a confused or hostile client cannot make the server size anything
#: from an unbounded declared count).
MAX_BATCH_ITEMS = 4096

_U32 = struct.Struct("<I")
_U8 = struct.Struct("<B")


class _FrameReader:
    """Bounds-checked cursor over a frame body; raises ValueError when
    the frame lies about its own lengths (the decoders' single failure
    funnel)."""

    __slots__ = ("_data", "_offset")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._offset = 0

    def take(self, n: int) -> bytes:
        if n < 0 or self._offset + n > len(self._data):
            raise ValueError("frame truncated")
        chunk = self._data[self._offset : self._offset + n]
        self._offset += n
        return chunk

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def u8(self) -> int:
        return self.take(1)[0]

    def exhausted(self) -> bool:
        return self._offset == len(self._data)


def encode_key_batch(keys: list[CacheKey]) -> bytes:
    """One key frame holding every key, order preserved."""
    if len(keys) > MAX_BATCH_ITEMS:
        raise ValueError(
            f"batch of {len(keys)} keys exceeds MAX_BATCH_ITEMS "
            f"({MAX_BATCH_ITEMS})"
        )
    parts = [KEY_BATCH_MAGIC, _U32.pack(len(keys))]
    for key in keys:
        raw = encode_key(key).encode("utf-8")
        parts.append(_U32.pack(len(raw)))
        parts.append(raw)
    return b"".join(parts)


def decode_key_batch(data: bytes) -> list[CacheKey] | None:
    """The keys of a key frame, or None for any malformation."""
    reader = _FrameReader(data)
    try:
        if reader.take(4) != KEY_BATCH_MAGIC:
            return None
        count = reader.u32()
        if count > MAX_BATCH_ITEMS:
            return None
        keys: list[CacheKey] = []
        for _ in range(count):
            raw = reader.take(reader.u32())
            key = decode_key(raw.decode("utf-8"))
            if key is None:
                return None
            keys.append(key)
        if not reader.exhausted():
            return None  # trailing garbage: distrust the whole frame
        return keys
    except (ValueError, UnicodeDecodeError):
        return None


def encode_vector_batch(
    entries: list[tuple[CacheKey, np.ndarray | None]],
) -> bytes:
    """One vector frame: ``(key, vector-or-None)`` per entry, in order.

    ``None`` marks an in-band miss (the batch response counterpart of
    the single-vector route's marked 404).
    """
    if len(entries) > MAX_BATCH_ITEMS:
        raise ValueError(
            f"batch of {len(entries)} entries exceeds MAX_BATCH_ITEMS "
            f"({MAX_BATCH_ITEMS})"
        )
    parts = [VECTOR_BATCH_MAGIC, _U32.pack(len(entries))]
    for key, vector in entries:
        raw_key = encode_key(key).encode("utf-8")
        parts.append(_U32.pack(len(raw_key)))
        parts.append(raw_key)
        if vector is None:
            parts.append(_U8.pack(0))
            continue
        vector = np.asarray(vector)
        if not vector.flags["C_CONTIGUOUS"]:
            vector = np.ascontiguousarray(vector)
        body = vector.tobytes()
        dtype_raw = vector.dtype.str.encode("ascii")
        parts.append(_U8.pack(1))
        parts.append(_U8.pack(len(dtype_raw)))
        parts.append(dtype_raw)
        parts.append(_U8.pack(vector.ndim))
        for dim in vector.shape:
            parts.append(_U32.pack(dim))
        parts.append(_U32.pack(len(body)))
        parts.append(body)
        parts.append(_U32.pack(zlib.crc32(body)))
    return b"".join(parts)


def decode_vector_batch(
    data: bytes,
) -> list[tuple[CacheKey, np.ndarray | None]] | None:
    """The entries of a vector frame, or None for any malformation.

    All-or-nothing: a bad magic, a lying length, an unknown dtype, or a
    CRC mismatch *anywhere* distrusts the entire frame (it travelled as
    one body) and returns None — the caller counts one failure and
    treats every key as a clean miss.
    """
    reader = _FrameReader(data)
    try:
        if reader.take(4) != VECTOR_BATCH_MAGIC:
            return None
        count = reader.u32()
        if count > MAX_BATCH_ITEMS:
            return None
        entries: list[tuple[CacheKey, np.ndarray | None]] = []
        for _ in range(count):
            raw_key = reader.take(reader.u32())
            key = decode_key(raw_key.decode("utf-8"))
            if key is None:
                return None
            if reader.u8() == 0:
                entries.append((key, None))
                continue
            dtype = np.dtype(reader.take(reader.u8()).decode("ascii"))
            shape = tuple(reader.u32() for _ in range(reader.u8()))
            body = reader.take(reader.u32())
            crc = reader.u32()
            expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
            if expected != len(body) or zlib.crc32(body) != crc:
                return None
            entries.append(
                (key, np.frombuffer(body, dtype=dtype).reshape(shape))
            )
        if not reader.exhausted():
            return None
        return entries
    except (ValueError, TypeError, UnicodeDecodeError):
        return None
