"""Wire format shared by the cache service and its clients.

The service speaks two payload kinds:

* **JSON** for everything structural (stats, job submission/status,
  cache layout) — small, human-debuggable with ``curl``;
* **raw binary** for the feature vectors themselves — a vector travels
  as its C-contiguous buffer bytes in the HTTP body, described by three
  response/request headers (:data:`HEADER_DTYPE`, :data:`HEADER_SHAPE`,
  :data:`HEADER_CRC`), exactly mirroring the
  :class:`~repro.polysemy.cache_store.DiskCacheStore` shard record so
  nothing is re-encoded on the hot path (no JSON/base64 blow-up).

Cache keys (corpus fingerprint, term, config fingerprint) travel as
URL-encoded query parameters, so any unicode term round-trips.

Decoding is defensive in the same way disk reads are: a missing header,
a shape/length mismatch, or a CRC failure makes :func:`decode_vector`
return ``None`` — the caller treats it as a clean miss, never a crash
or a wrong vector.
"""

from __future__ import annotations

import zlib
from urllib.parse import parse_qs, urlencode

import numpy as np

from repro.polysemy.cache_store import CacheKey

#: numpy dtype string (e.g. ``<f8``) of the body bytes.
HEADER_DTYPE = "X-Repro-Dtype"
#: Comma-separated vector shape (empty string for a 0-d array).
HEADER_SHAPE = "X-Repro-Shape"
#: CRC-32 of the body bytes, decimal.
HEADER_CRC = "X-Repro-Crc"
#: Marks a vector 404 as an *honest* cache miss from this service.  A
#: 404 without it came from something else (wrong path prefix, wrong
#: server, a proxy) — the client counts that as a failure, so a
#: misconfigured ``cache_url`` surfaces in ``remote_errors`` instead of
#: masquerading as an eternally cold cache.
HEADER_MISS = "X-Repro-Miss"


def encode_vector(vector: np.ndarray) -> tuple[dict[str, str], bytes]:
    """``(headers, body)`` describing ``vector`` on the wire."""
    vector = np.asarray(vector)
    if not vector.flags["C_CONTIGUOUS"]:
        vector = np.ascontiguousarray(vector)
    body = vector.tobytes()
    headers = {
        HEADER_DTYPE: vector.dtype.str,
        HEADER_SHAPE: ",".join(str(n) for n in vector.shape),
        HEADER_CRC: str(zlib.crc32(body)),
    }
    return headers, body


def decode_vector(
    dtype_str: str | None,
    shape_str: str | None,
    crc_str: str | None,
    body: bytes,
) -> np.ndarray | None:
    """The vector the headers + body describe, or None when malformed.

    Every failure mode — absent headers, unknown dtype, a length that
    does not match the declared shape, a CRC mismatch — returns None
    so transport corruption degrades to a cache miss.
    """
    if dtype_str is None or shape_str is None or crc_str is None:
        return None
    try:
        dtype = np.dtype(dtype_str)
        shape = tuple(
            int(n) for n in shape_str.split(",") if n != ""
        )
        crc = int(crc_str)
    except (TypeError, ValueError):
        return None
    expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    if expected != len(body) or zlib.crc32(body) != crc:
        return None
    try:
        return np.frombuffer(body, dtype=dtype).reshape(shape)
    except ValueError:
        return None


def encode_key(key: CacheKey) -> str:
    """URL query string addressing one cache entry."""
    corpus_fp, term, config_fp = key
    return urlencode(
        {"corpus": corpus_fp, "term": term, "config": config_fp}
    )


def decode_key(query: str) -> CacheKey | None:
    """Parse :func:`encode_key`'s query string back (None if incomplete)."""
    params = parse_qs(query, keep_blank_values=True)
    try:
        return (
            params["corpus"][0],
            params["term"][0],
            params["config"][0],
        )
    except KeyError:
        return None
