"""Command-line interface.

Seven subcommands mirror how a downstream user drives the library:

* ``generate`` — produce a scenario (ontology JSON + corpus JSONL);
* ``enrich`` — run the four-step workflow over an ontology + corpus;
* ``link`` — position one candidate term (Table 3 style output);
* ``evaluate`` — run the Table 4 protocol over held-out terms;
* ``index`` — build (``index build``) or inspect (``index inspect``)
  an on-disk corpus index store (see :mod:`repro.corpus.index_store`);
* ``serve`` — run the HTTP enrichment & shared-cache service
  (see :mod:`repro.service`);
* ``recommend`` — rank candidate ontologies against input text or a
  scenario corpus (see :mod:`repro.recommend`);
* ``cache-info`` — inspect a feature-cache store's layout, on disk
  (``--cache-dir``) or through a live service (``--cache-url``);
* ``lint`` — run the project-invariant static analysis
  (see :mod:`repro.analysis`; nonzero exit on new findings).

Run ``python -m repro.cli <command> --help`` for options.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.clustering.community import COMMUNITY_BACKEND_NAMES
from repro.corpus.io import read_corpus_jsonl, write_corpus_jsonl
from repro.extraction.measures import MEASURE_NAMES
from repro.text.stopwords import SUPPORTED_LANGUAGES
from repro.linkage.evaluation import evaluate_linkage, gold_positions
from repro.linkage.linker import SemanticLinker
from repro.ontology.io import read_ontology_json, write_ontology_json
from repro.ontology.snapshot import held_out_terms
from repro.scenarios import make_enrichment_scenario
from repro.utils.tables import format_table
from repro.workflow.config import EnrichmentConfig
from repro.workflow.pipeline import OntologyEnricher


def _cmd_generate(args: argparse.Namespace) -> int:
    scenario = make_enrichment_scenario(
        seed=args.seed,
        n_concepts=args.concepts,
        docs_per_concept=args.docs_per_concept,
    )
    out = Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    write_ontology_json(scenario.ontology, out / "ontology.json")
    write_corpus_jsonl(scenario.corpus, out / "corpus.jsonl")
    print(f"wrote {out / 'ontology.json'} ({len(scenario.ontology)} concepts)")
    print(
        f"wrote {out / 'corpus.jsonl'} ({scenario.corpus.n_documents()} documents, "
        f"{scenario.corpus.n_tokens():,} tokens)"
    )
    return 0


def _cmd_enrich(args: argparse.Namespace) -> int:
    ontology = read_ontology_json(args.ontology)
    corpus = read_corpus_jsonl(args.corpus)
    config = EnrichmentConfig(
        language=args.language,
        extraction_measure=args.extraction_measure,
        n_candidates=args.candidates,
        min_term_length=args.min_term_length,
        min_contexts=args.min_contexts,
        polysemy_classifier=args.polysemy_classifier,
        sense_algorithm=args.sense_algorithm,
        sense_index=args.sense_index,
        sense_representation=args.sense_representation,
        context_window=args.context_window,
        top_k_positions=args.top_k,
        expand_hierarchy=not args.no_expand_hierarchy,
        seed=args.seed,
        skip_known_terms=not args.no_skip_known_terms,
        batch_size=args.batch_size,
        max_contexts_per_term=args.max_contexts,
        n_workers=args.workers,
        worker_backend=args.worker_backend,
        community_backend=args.community_backend,
        index_shards=args.index_shards,
        index_dir=args.index_dir,
        feature_cache=not args.no_feature_cache,
        cache_dir=args.cache_dir,
        cache_max_bytes=args.cache_max_bytes,
        cache_url=args.cache_url,
        cache_timeout=args.cache_timeout,
        cache_batch_size=args.cache_batch_size,
    )
    enricher = OntologyEnricher(ontology, config=config)
    report = enricher.enrich(corpus)
    print(report.to_table())
    for warning in report.warnings:
        print(f"warning: {warning}", file=sys.stderr)
    if args.timings:
        print()
        print(
            format_table(
                ["stage", "seconds"],
                [
                    [stage, f"{seconds:.3f}"]
                    for stage, seconds in report.timings.items()
                ],
                title="Stage timings",
            )
        )
        if report.cache:
            print()
            print(
                format_table(
                    ["counter", "value"],
                    [[k, v] for k, v in sorted(report.cache.items())],
                    title="Feature cache",
                )
            )
    return 0


def _cmd_link(args: argparse.Namespace) -> int:
    ontology = read_ontology_json(args.ontology)
    corpus = read_corpus_jsonl(args.corpus)
    linker = SemanticLinker(ontology, corpus, top_k=args.top_k)
    propositions = linker.propose(args.term)
    concept_ids = ontology.concepts_for_term(args.term)
    gold = (
        gold_positions(ontology, concept_ids[0], args.term)
        if concept_ids
        else set()
    )
    rows = [
        [p.rank, p.term, f"{p.cosine:.4f}", "*" if p.term in gold else ""]
        for p in propositions
    ]
    print(
        format_table(
            ["#", "where", "cosine", "correct"],
            rows,
            title=f"Propositions for {args.term!r}",
        )
    )
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    ontology = read_ontology_json(args.ontology)
    corpus = read_corpus_jsonl(args.corpus)
    held = held_out_terms(ontology, args.start_year, args.end_year)
    if args.max_terms:
        held = held[: args.max_terms]
    if not held:
        print("no held-out terms in the requested window", file=sys.stderr)
        return 1
    linker = SemanticLinker(ontology, corpus, top_k=10)
    evaluation = evaluate_linkage(linker, held)
    row = evaluation.as_row()
    print(
        format_table(
            ["Top 1", "Top 2", "Top 5", "Top 10"],
            [[f"{row[k]:.3f}" for k in (1, 2, 5, 10)]],
            title=f"Linkage precision over {evaluation.n_terms} held-out terms",
        )
    )
    return 0


def _cmd_index_build(args: argparse.Namespace) -> int:
    from repro.corpus.index_store import IndexStore

    corpus = read_corpus_jsonl(args.corpus)
    store = IndexStore(args.index_dir)
    started = time.perf_counter()
    index = store.load_or_build(
        corpus,
        n_shards=args.shards,
        n_workers=args.workers,
        build_backend=args.build_backend,
    )
    elapsed = time.perf_counter() - started
    fingerprint = index.fingerprint()
    stored = store.path_for(fingerprint).is_dir()
    print(
        format_table(
            ["property", "value"],
            [
                ["fingerprint", fingerprint],
                ["documents", index.n_documents()],
                ["tokens", index.n_tokens()],
                ["shards", getattr(index, "n_shards", 1)],
                ["stored", "yes" if stored else "no (store unwritable)"],
                ["seconds", f"{elapsed:.3f}"],
            ],
            title=f"Corpus index at {store.directory}",
        )
    )
    return 0


def _cmd_index_inspect(args: argparse.Namespace) -> int:
    from repro.corpus.index_store import IndexStore

    if not Path(args.index_dir).is_dir():
        # Inspection must not create the directory it was asked to look
        # at (IndexStore would, and a typo'd path would print an empty
        # store instead of the mistake).
        print(f"error: no index store at {args.index_dir}", file=sys.stderr)
        return 1
    info = IndexStore(args.index_dir).describe()
    print(
        format_table(
            ["property", "value"],
            [
                ["generations", info["n_generations"]],
                ["store bytes", info["store_bytes"]],
            ],
            title=f"Corpus index store at {info['index_dir']}",
        )
    )
    generations = info["generations"]
    if generations:
        print()
        print(
            format_table(
                ["fingerprint", "kind", "docs", "tokens", "shards", "bytes"],
                [
                    [
                        g["fingerprint"][:12],
                        g["kind"],
                        g.get("n_documents", "-"),
                        g.get("n_tokens", "-"),
                        g.get("n_shards", "-"),
                        g["bytes"],
                    ]
                    for g in generations
                ],
                title="Generations",
            )
        )
        for g in generations:
            if g["kind"] == "corrupt":
                print(
                    f"warning: {g['fingerprint'][:12]} is corrupt "
                    f"({g['error']}); the next build will replace it",
                    file=sys.stderr,
                )
    return 0


def _parse_scenario_specs(specs: list[str]) -> dict[str, tuple[Path, Path]]:
    """``NAME=DIR`` specs → corpus registry (``repro generate`` layout)."""
    corpora: dict[str, tuple[Path, Path]] = {}
    for spec in specs:
        name, sep, directory = spec.partition("=")
        if not sep or not name or not directory:
            raise SystemExit(
                f"--scenario must look like NAME=DIR, got {spec!r}"
            )
        root = Path(directory)
        corpora[name] = (root / "ontology.json", root / "corpus.jsonl")
    return corpora


def _parse_watch_specs(specs: list[str]) -> dict[str, Path]:
    """``NAME=DIR`` specs → watched drop directories per scenario."""
    watch: dict[str, Path] = {}
    for spec in specs:
        name, sep, directory = spec.partition("=")
        if not sep or not name or not directory:
            raise SystemExit(
                f"--watch must look like NAME=DIR, got {spec!r}"
            )
        watch[name] = Path(directory)
    return watch


def _parse_ontology_specs(specs: list[str]) -> dict[str, Path]:
    """``NAME=PATH`` specs → named ontology files (JSON or ``.obo``)."""
    ontologies: dict[str, Path] = {}
    for spec in specs:
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            raise SystemExit(
                f"--ontology must look like NAME=PATH, got {spec!r}"
            )
        ontologies[name] = Path(path)
    return ontologies


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import serve

    return serve(
        cache_dir=args.cache_dir,
        host=args.host,
        port=args.port,
        cache_max_bytes=args.cache_max_bytes,
        corpora=_parse_scenario_specs(args.scenario),
        job_workers=args.job_workers,
        index_dir=args.index_dir,
        access_log=args.access_log,
        watch=_parse_watch_specs(args.watch),
        watch_poll_seconds=args.watch_poll,
        ontologies=_parse_ontology_specs(args.ontology),
    )


def _cmd_recommend(args: argparse.Namespace) -> int:
    """Rank registered ontologies against text or a scenario corpus.

    ``--format json`` prints exactly the ``POST /recommend`` response
    body (``json.dumps(report.to_dict(), sort_keys=True)``), so the two
    surfaces are byte-identical for the same input.
    """
    import json as _json

    from repro.errors import ValidationError
    from repro.recommend import OntologyRegistry, RecommendConfig, Recommender

    if args.text is None and args.scenario is None:
        print(
            "error: --text and/or --scenario is required", file=sys.stderr
        )
        return 2
    try:
        config = RecommendConfig(
            coverage_weight=args.coverage_weight,
            acceptance_weight=args.acceptance_weight,
            detail_weight=args.detail_weight,
            specialization_weight=args.specialization_weight,
            synonym_factor=args.synonym_factor,
            multiword_factor=args.multiword_factor,
            max_set_size=args.max_set_size,
            min_coverage_gain=args.min_coverage_gain,
        )
        registry = OntologyRegistry()
        for name, path in _parse_ontology_specs(args.ontology).items():
            registry.register_path(name, path)
        recommender = Recommender(registry, config)
        index = None
        if args.scenario is not None:
            from repro.corpus.index import CorpusIndex

            index = CorpusIndex(
                read_corpus_jsonl(Path(args.scenario) / "corpus.jsonl")
            )
        if args.text is not None:
            text = (
                sys.stdin.read()
                if args.text == "-"
                else Path(args.text).read_text(encoding="utf-8")
            )
            report = recommender.recommend_text(
                text,
                acceptance_index=index,
                acceptance_source="corpus" if index is not None else None,
            )
        else:
            report = recommender.recommend_index(index)
    except (OSError, ValidationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(_json.dumps(report.to_dict(), sort_keys=True))
    else:
        print(report.to_table())
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    """Follow a scenario's delta stream: one summary line per diff."""
    import time as _time

    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    since = args.since
    try:
        while True:
            try:
                deltas = client.deltas(args.name, since=since)
            except ServiceError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            for delta in deltas:
                since = max(since, int(delta["seq"]))
                cache = delta.get("cache", {})
                print(
                    "delta #{seq} fp={fp} docs={docs} recomputed={rec} "
                    "added={added} rescored={rescored} dropped={dropped} "
                    "cache_hits={hits} cache_misses={misses} "
                    "({secs:.2f}s)".format(
                        seq=delta["seq"],
                        fp=str(delta.get("fingerprint", ""))[:12],
                        docs=len(delta.get("documents", [])),
                        rec=delta.get("n_recomputed", 0),
                        added=len(delta.get("added", [])),
                        rescored=len(delta.get("rescored", [])),
                        dropped=len(delta.get("dropped", [])),
                        hits=cache.get("hits", 0),
                        misses=cache.get("misses", 0),
                        secs=delta.get("timings", {}).get(
                            "delta_total", 0.0
                        ),
                    ),
                    flush=True,
                )
            if args.once:
                return 0
            _time.sleep(args.poll)
    except KeyboardInterrupt:
        return 0
    finally:
        client.close()


def _cmd_loadbench(args: argparse.Namespace) -> int:
    import json as _json

    from repro.errors import ValidationError
    from repro.service.loadgen import run_load

    try:
        report = run_load(
            args.url,
            clients=args.clients,
            ops_per_client=args.ops,
            batch_size=args.batch_size,
            job_corpus=args.job_corpus,
            seed=args.seed,
        )
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    document = report.to_dict()
    rows = [
        ["clients", document["clients"]],
        ["requests", document["requests"]],
        ["failed requests", document["failed_requests"]],
        ["duration (s)", f"{document['duration_seconds']:.3f}"],
        ["req/s", f"{document['requests_per_second']:.1f}"],
        ["p50 (ms)", f"{document['p50_seconds'] * 1e3:.2f}"],
        ["p99 (ms)", f"{document['p99_seconds'] * 1e3:.2f}"],
    ]
    print(format_table(["measure", "value"], rows, title="Service load"))
    print()
    print(
        format_table(
            ["op", "count", "p50 (ms)", "p99 (ms)"],
            [
                [
                    op,
                    stats["count"],
                    f"{stats['p50_seconds'] * 1e3:.2f}",
                    f"{stats['p99_seconds'] * 1e3:.2f}",
                ]
                for op, stats in document["per_op"].items()
            ],
            title="Per-operation latency",
        )
    )
    if args.json is not None:
        Path(args.json).write_text(
            _json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.json}")
    if report.failed_requests:
        print(
            f"error: {report.failed_requests} failed requests",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_cache_info(args: argparse.Namespace) -> int:
    if (args.cache_dir is None) == (args.cache_url is None):
        print(
            "error: exactly one of --cache-dir / --cache-url is required",
            file=sys.stderr,
        )
        return 2
    if args.cache_url is not None:
        from repro.service.client import ServiceClient, ServiceError

        try:
            info = ServiceClient(args.cache_url).cache_info()
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        source = args.cache_url
    else:
        from repro.polysemy.cache_store import DiskCacheStore

        if not Path(args.cache_dir).is_dir():
            # Inspection must not create the directory it was asked to
            # look at (DiskCacheStore would, and a typo'd path would
            # print an empty store instead of the mistake).
            print(
                f"error: no cache store at {args.cache_dir}",
                file=sys.stderr,
            )
            return 1
        info = DiskCacheStore(args.cache_dir).describe()
        source = info["cache_dir"]
    max_bytes = info.get("max_bytes")
    print(
        format_table(
            ["property", "value"],
            [
                ["entries", info.get("entries", 0)],
                ["store bytes", info.get("store_bytes", 0)],
                ["max bytes", max_bytes if max_bytes is not None else "-"],
                ["shard max bytes", info.get("shard_max_bytes", "-")],
                ["generations", info.get("n_generations", 0)],
                ["session disk hits", info.get("disk_hits", 0)],
                ["session evictions", info.get("evictions", 0)],
            ],
            title=f"Feature cache store at {source}",
        )
    )
    generations = info.get("generations", [])
    if generations:
        eviction_rank = {
            name: position + 1
            for position, name in enumerate(info.get("eviction_order", []))
        }
        now = time.time()
        print()
        print(
            format_table(
                ["generation", "entries", "shards", "bytes",
                 "idle (s)", "evict #"],
                [
                    [
                        g["name"],
                        g["entries"],
                        g["shards"],
                        g["bytes"],
                        f"{max(0.0, now - g['last_used']):.0f}",
                        eviction_rank.get(g["name"], "-"),
                    ]
                    for g in generations
                ],
                title="Generations (evict # = LRU eviction order)",
            )
        )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import (
        lint_project,
        load_baseline,
        render_json,
        render_text,
        save_baseline,
    )
    from repro.errors import ValidationError

    root = Path(args.root)
    try:
        baseline = (
            load_baseline(args.baseline)
            if args.baseline is not None
            else None
        )
        result = lint_project(root, baseline=baseline)
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline is not None:
        save_baseline(result.findings, args.write_baseline)
        print(
            f"wrote {len(result.findings)} finding(s) to "
            f"{args.write_baseline}"
        )
        return 0
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    return 0 if result.clean else 1


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Biomedical ontology enrichment (EDBT 2016 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a synthetic scenario")
    generate.add_argument("--output", required=True, help="output directory")
    generate.add_argument("--concepts", type=int, default=60)
    generate.add_argument("--docs-per-concept", type=int, default=6)
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(fn=_cmd_generate)

    enrich = sub.add_parser("enrich", help="run the four-step workflow")
    enrich.add_argument("--ontology", required=True, help="ontology JSON path")
    enrich.add_argument("--corpus", required=True, help="corpus JSONL path")
    enrich.add_argument(
        "--language", choices=SUPPORTED_LANGUAGES, default="en",
        help="corpus/ontology language",
    )
    enrich.add_argument(
        "--extraction-measure", choices=MEASURE_NAMES,
        default="lidf_value",
        help="Step I candidate ranking measure",
    )
    enrich.add_argument("--candidates", type=int, default=10)
    enrich.add_argument(
        "--min-term-length", type=int, default=2,
        help="minimum candidate length in tokens (2 = multi-word only)",
    )
    enrich.add_argument(
        "--min-contexts", type=int, default=4,
        help="candidates with fewer corpus contexts are skipped",
    )
    enrich.add_argument(
        "--polysemy-classifier", default="forest",
        help="Step II classifier registry name",
    )
    enrich.add_argument(
        "--sense-algorithm", default="rb",
        help="Step III clustering algorithm",
    )
    enrich.add_argument(
        "--sense-index", default="fk",
        help="Step III internal clustering index",
    )
    enrich.add_argument(
        "--sense-representation", default="bow",
        help="Step III context representation",
    )
    enrich.add_argument(
        "--context-window", type=int, default=10,
        help="tokens kept each side of a term occurrence",
    )
    enrich.add_argument("--top-k", type=int, default=10)
    enrich.add_argument(
        "--no-expand-hierarchy", action="store_true",
        help="disable Step IV.2 father/son neighbourhood expansion",
    )
    enrich.add_argument("--seed", type=int, default=0)
    enrich.add_argument(
        "--no-skip-known-terms", action="store_true",
        help="also push terms the ontology already knows through "
        "Steps II-IV",
    )
    enrich.add_argument(
        "--batch-size", type=int, default=8,
        help="candidates handed to a worker per task in Steps II-III",
    )
    enrich.add_argument(
        "--max-contexts", type=int, default=80,
        help="context cap per candidate (stride-subsampled above this)",
    )
    enrich.add_argument(
        "--workers", type=int, default=1,
        help="workers for the per-candidate Steps II-III",
    )
    enrich.add_argument(
        "--worker-backend", choices=("thread", "process"), default="thread",
        help="worker pool kind (process escapes the GIL)",
    )
    enrich.add_argument(
        "--community-backend", choices=COMMUNITY_BACKEND_NAMES,
        default=COMMUNITY_BACKEND_NAMES[0],
        help="Step II community detection (louvain = native fast path)",
    )
    enrich.add_argument(
        "--index-shards", type=int, default=1,
        help="corpus index partitions (>1 builds a sharded index; "
        "results are identical across shard counts)",
    )
    enrich.add_argument(
        "--index-dir", default=None,
        help="persist the corpus index here (repro.corpus.index_store); "
        "later runs mmap-reopen it in O(1) instead of rebuilding",
    )
    enrich.add_argument(
        "--no-feature-cache", action="store_true",
        help="disable Step II feature-vector memoisation",
    )
    enrich.add_argument(
        "--cache-dir", default=None,
        help="persist the feature cache on disk here, shared across "
        "runs and worker processes (see repro.polysemy.cache_store)",
    )
    enrich.add_argument(
        "--cache-max-bytes", type=int, default=None,
        help="size cap on the on-disk cache (LRU eviction above it; "
        "requires --cache-dir)",
    )
    enrich.add_argument(
        "--cache-url", default=None,
        help="base URL of a `repro serve` cache service backing the "
        "feature cache over HTTP (mutually exclusive with --cache-dir; "
        "network failures degrade to cache misses)",
    )
    enrich.add_argument(
        "--cache-timeout", type=float, default=5.0,
        help="per-request network timeout (seconds) for --cache-url",
    )
    enrich.add_argument(
        "--cache-batch-size", type=int, default=256,
        help="vectors per /vectors/batch round trip against --cache-url "
        "(1 = the per-vector protocol)",
    )
    enrich.add_argument(
        "--timings", action="store_true",
        help="print per-stage wall times after the report",
    )
    enrich.set_defaults(fn=_cmd_enrich)

    link = sub.add_parser("link", help="position one candidate term")
    link.add_argument("--ontology", required=True)
    link.add_argument("--corpus", required=True)
    link.add_argument("--term", required=True)
    link.add_argument("--top-k", type=int, default=10)
    link.set_defaults(fn=_cmd_link)

    evaluate = sub.add_parser("evaluate", help="run the Table 4 protocol")
    evaluate.add_argument("--ontology", required=True)
    evaluate.add_argument("--corpus", required=True)
    evaluate.add_argument("--start-year", type=int, default=2009)
    evaluate.add_argument("--end-year", type=int, default=2015)
    evaluate.add_argument("--max-terms", type=int, default=None)
    evaluate.set_defaults(fn=_cmd_evaluate)

    index = sub.add_parser(
        "index",
        help="build or inspect an on-disk corpus index store",
    )
    index_sub = index.add_subparsers(dest="index_command", required=True)
    index_build = index_sub.add_parser(
        "build",
        help="fingerprint a corpus and persist its index (idempotent: "
        "an existing generation is mmap-reopened, not rebuilt)",
    )
    index_build.add_argument("--corpus", required=True,
                             help="corpus JSONL path")
    index_build.add_argument("--index-dir", required=True,
                             help="index store root directory")
    index_build.add_argument(
        "--shards", type=int, default=1,
        help="index partitions (>1 persists a sharded index)",
    )
    index_build.add_argument(
        "--workers", type=int, default=1,
        help="workers for a sharded build",
    )
    index_build.add_argument(
        "--build-backend", choices=("thread", "process"), default="process",
        help="shard-build pool kind (process escapes the GIL)",
    )
    index_build.set_defaults(fn=_cmd_index_build)
    index_inspect = index_sub.add_parser(
        "inspect",
        help="summarise the store's generations (corrupt ones flagged)",
    )
    index_inspect.add_argument("--index-dir", required=True,
                               help="index store root directory")
    index_inspect.set_defaults(fn=_cmd_index_inspect)

    serve = sub.add_parser(
        "serve",
        help="run the HTTP enrichment & shared-cache service",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8750,
        help="listen port (0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--cache-dir", required=True,
        help="DiskCacheStore directory the service owns and serves",
    )
    serve.add_argument(
        "--cache-max-bytes", type=int, default=None,
        help="size cap on the served store (LRU eviction above it)",
    )
    serve.add_argument(
        "--scenario", action="append", default=[], metavar="NAME=DIR",
        help="register a corpus for server-side enrichment jobs; DIR "
        "holds ontology.json + corpus.jsonl (the `repro generate` "
        "layout); repeatable",
    )
    serve.add_argument(
        "--job-workers", type=int, default=1,
        help="concurrent server-side enrichment jobs",
    )
    serve.add_argument(
        "--index-dir", default=None,
        help="persist registered corpora's indexes in this index store "
        "(first job builds, later jobs and restarts mmap-reopen)",
    )
    serve.add_argument(
        "--access-log", default=None, metavar="PATH",
        help="write one JSON line per request to PATH ('-' = stderr)",
    )
    serve.add_argument(
        "--watch", action="append", default=[], metavar="NAME=DIR",
        help="poll DIR for dropped *.jsonl document files and stream "
        "them into registered scenario NAME as delta re-enrichments; "
        "repeatable",
    )
    serve.add_argument(
        "--watch-poll", type=float, default=1.0,
        help="seconds between scans of watched directories",
    )
    serve.add_argument(
        "--ontology", action="append", default=[], metavar="NAME=PATH",
        help="register an ontology (JSON or .obo) as a POST /recommend "
        "candidate; repeatable",
    )
    serve.set_defaults(fn=_cmd_serve)

    recommend = sub.add_parser(
        "recommend",
        help="rank ontologies against input text or a scenario corpus",
    )
    recommend.add_argument(
        "--ontology", action="append", required=True, metavar="NAME=PATH",
        help="register a candidate ontology (JSON or .obo); repeatable",
    )
    recommend.add_argument(
        "--text", default=None, metavar="PATH",
        help="input text file to annotate ('-' = stdin)",
    )
    recommend.add_argument(
        "--scenario", default=None, metavar="DIR",
        help="scenario directory (the `repro generate` layout): its "
        "corpus.jsonl is the input when --text is absent, and the "
        "acceptance reference when --text is given too",
    )
    recommend.add_argument(
        "--coverage-weight", type=float, default=0.55,
        help="weight of the coverage criterion",
    )
    recommend.add_argument(
        "--acceptance-weight", type=float, default=0.15,
        help="weight of the acceptance criterion",
    )
    recommend.add_argument(
        "--detail-weight", type=float, default=0.15,
        help="weight of the detail criterion",
    )
    recommend.add_argument(
        "--specialization-weight", type=float, default=0.15,
        help="weight of the specialization criterion",
    )
    recommend.add_argument(
        "--synonym-factor", type=float, default=0.8,
        help="coverage down-weight for synonym (non-preferred) matches",
    )
    recommend.add_argument(
        "--multiword-factor", type=float, default=2.0,
        help="coverage up-weight for multi-word label matches",
    )
    recommend.add_argument(
        "--max-set-size", type=int, default=3,
        help="maximum ontologies in the recommended set",
    )
    recommend.add_argument(
        "--min-coverage-gain", type=float, default=0.05,
        help="coverage a later set member must add to be admitted",
    )
    recommend.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json = the POST /recommend wire document)",
    )
    recommend.set_defaults(fn=_cmd_recommend)

    watch = sub.add_parser(
        "watch",
        help="follow a served scenario's streaming delta reports",
    )
    watch.add_argument(
        "--url", required=True,
        help="base URL of the `repro serve` service",
    )
    watch.add_argument(
        "name", help="registered scenario name to follow",
    )
    watch.add_argument(
        "--since", type=int, default=0,
        help="only show deltas with seq greater than this",
    )
    watch.add_argument(
        "--poll", type=float, default=2.0,
        help="seconds between polls",
    )
    watch.add_argument(
        "--once", action="store_true",
        help="print the current history once and exit (no follow loop)",
    )
    watch.set_defaults(fn=_cmd_watch)

    loadbench = sub.add_parser(
        "loadbench",
        help="drive a running service with concurrent mixed traffic",
    )
    loadbench.add_argument(
        "--url", required=True,
        help="base URL of the `repro serve` service under test",
    )
    loadbench.add_argument(
        "--clients", type=int, default=8,
        help="concurrent client threads (each owns its own connections)",
    )
    loadbench.add_argument(
        "--ops", type=int, default=50,
        help="operations issued per client",
    )
    loadbench.add_argument(
        "--batch-size", type=int, default=32,
        help="vectors per batch_get/batch_put operation",
    )
    loadbench.add_argument(
        "--job-corpus", default=None,
        help="registered corpus name to add idempotent job submissions "
        "to the mix",
    )
    loadbench.add_argument("--seed", type=int, default=0)
    loadbench.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the report as JSON to PATH",
    )
    loadbench.set_defaults(fn=_cmd_loadbench)

    info = sub.add_parser(
        "cache-info",
        help="inspect a feature-cache store's layout and usage",
    )
    info.add_argument(
        "--cache-dir", default=None,
        help="inspect this DiskCacheStore directory",
    )
    info.add_argument(
        "--cache-url", default=None,
        help="inspect the store behind a live `repro serve` service",
    )
    info.set_defaults(fn=_cmd_cache_info)

    lint = sub.add_parser(
        "lint",
        help="run the project-invariant static analysis over src/",
    )
    lint.add_argument(
        "--root", default=".",
        help="project root (must contain src/; default: cwd)",
    )
    lint.add_argument(
        "--baseline", default=None,
        help="baseline JSON of grandfathered findings to ignore",
    )
    lint.add_argument(
        "--write-baseline", default=None, metavar="PATH",
        help="write current findings as a baseline and exit 0",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    lint.set_defaults(fn=_cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
