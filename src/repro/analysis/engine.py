"""The lint engine: project model, pragmas, baseline, and the runner.

The engine is deliberately small: it loads every ``src/`` module (and
the ``tests/`` modules some rules cross-reference) into a
:class:`Project`, hands that to each :class:`Rule`, and post-processes
the raw findings through two suppression layers:

* **pragmas** — a ``# repro-lint: disable=RL001`` comment on the
  flagged line silences that rule there; anything after the rule ids
  is a free-form justification (and writing one is the convention);
* **baseline** — a JSON file of grandfathered findings matched by
  ``(rule, path, message)`` (line numbers are ignored so unrelated
  edits above a finding do not resurrect it).

Everything is stdlib-only (``ast`` + ``json``), so the linter runs in
every environment the library itself runs in.
"""

from __future__ import annotations

import ast
import json
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ValidationError

__all__ = [
    "Finding",
    "LintResult",
    "ModuleSource",
    "Project",
    "Rule",
    "default_rules",
    "lint_project",
    "load_baseline",
    "render_json",
    "render_text",
    "save_baseline",
]

#: ``# repro-lint: disable=RL001,RL002 - optional justification``
_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*)"
)

#: Rule id of a module that does not parse (every other rule needs the
#: AST, so a syntax error is itself a finding rather than a crash).
PARSE_ERROR_RULE = "RL000"

#: Directory names whose modules are never linted: rule fixtures are
#: *deliberately* in violation.
_EXCLUDED_DIR_NAMES = frozenset({"fixtures", "__pycache__"})


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str  #: repo-relative posix path
    line: int
    message: str
    hint: str = ""

    @property
    def baseline_key(self) -> tuple[str, str, str]:
        """Identity used for baseline matching (line numbers excluded)."""
        return (self.rule, self.path, self.message)

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (the ``--format json`` shape)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
        }


class ModuleSource:
    """One parsed source module: path, text, lines, AST, pragmas."""

    def __init__(self, path: Path, relpath: str, text: str) -> None:
        self.path = path
        self.relpath = relpath
        self.text = text
        self.lines: list[str] = text.splitlines()
        self.parse_error: SyntaxError | None = None
        try:
            self.tree: ast.Module = ast.parse(text)
        except SyntaxError as exc:
            self.parse_error = exc
            self.tree = ast.Module(body=[], type_ignores=[])
        self._pragmas: dict[int, frozenset[str]] | None = None

    def pragmas(self) -> dict[int, frozenset[str]]:
        """``line number -> rule ids disabled on that line`` (1-based)."""
        if self._pragmas is None:
            found: dict[int, frozenset[str]] = {}
            for number, line in enumerate(self.lines, start=1):
                match = _PRAGMA_RE.search(line)
                if match is not None:
                    rules = frozenset(
                        part.strip() for part in match.group(1).split(",")
                    )
                    found[number] = rules
            self._pragmas = found
        return self._pragmas

    def suppressed(self, rule: str, line: int) -> bool:
        """True when a pragma on ``line`` disables ``rule``."""
        return rule in self.pragmas().get(line, frozenset())


class Project:
    """The lintable universe: src modules, test modules, README text."""

    def __init__(
        self,
        root: Path,
        modules: Sequence[ModuleSource],
        test_modules: Sequence[ModuleSource] = (),
        readme_text: str | None = None,
    ) -> None:
        self.root = root
        self.modules = list(modules)
        self.test_modules = list(test_modules)
        self.readme_text = readme_text

    @classmethod
    def load(cls, root: str | Path) -> "Project":
        """Load ``root/src/**/*.py`` + ``root/tests/*.py`` + README.

        Anything under a ``fixtures`` directory is skipped on both
        sides: rule fixtures are deliberately in violation.
        """
        root = Path(root).resolve()
        src = root / "src"
        if not src.is_dir():
            raise ValidationError(f"no src/ directory under {root}")
        modules = [
            _read_module(root, path) for path in _python_files(src)
        ]
        tests_dir = root / "tests"
        test_modules = (
            [_read_module(root, path) for path in _python_files(tests_dir)]
            if tests_dir.is_dir()
            else []
        )
        readme = root / "README.md"
        readme_text = (
            readme.read_text(encoding="utf-8") if readme.is_file() else None
        )
        return cls(root, modules, test_modules, readme_text)

    def find_module(self, suffix: str) -> ModuleSource | None:
        """The unique src module whose relpath ends with ``suffix``."""
        matches = [
            module
            for module in self.modules
            if module.relpath.endswith(suffix)
        ]
        return matches[0] if len(matches) == 1 else None


def _python_files(directory: Path) -> list[Path]:
    # Exclusion is *relative to the scanned directory*: a project that
    # itself lives under a fixtures/ directory (the lint test fixtures
    # do) must still see its own modules.
    return sorted(
        path
        for path in directory.rglob("*.py")
        if not _EXCLUDED_DIR_NAMES.intersection(
            path.relative_to(directory).parts
        )
    )


def _read_module(root: Path, path: Path) -> ModuleSource:
    relpath = path.relative_to(root).as_posix()
    return ModuleSource(path, relpath, path.read_text(encoding="utf-8"))


class Rule:
    """Base class of every lint rule.

    Subclasses set :attr:`rule_id`/:attr:`title`/:attr:`hint` and
    implement :meth:`check`, yielding raw findings; pragma and baseline
    filtering happen in the engine, not in rules.
    """

    rule_id: str = "RL999"
    title: str = ""
    hint: str = ""

    def check(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ModuleSource, line: int, message: str,
        hint: str | None = None,
    ) -> Finding:
        """Construct a finding anchored in ``module``."""
        return Finding(
            rule=self.rule_id,
            path=module.relpath,
            line=line,
            message=message,
            hint=self.hint if hint is None else hint,
        )


@dataclass
class LintResult:
    """Outcome of one lint run after pragma/baseline filtering."""

    findings: list[Finding] = field(default_factory=list)  #: new findings
    suppressed: int = 0  #: pragma-silenced findings
    baselined: int = 0  #: grandfathered findings

    @property
    def clean(self) -> bool:
        """True when no *new* findings remain."""
        return not self.findings


def default_rules() -> list[Rule]:
    """Fresh instances of every shipped rule, id order."""
    # Imported here so ``engine`` stays import-cycle-free (rules import
    # the engine's base classes).
    from repro.analysis.rules_codec import CodecPairingRule
    from repro.analysis.rules_config import ConfigDriftRule
    from repro.analysis.rules_degrade import DegradeToMissRule
    from repro.analysis.rules_locks import LockDisciplineRule
    from repro.analysis.rules_pickle import PickleContractRule

    return [
        LockDisciplineRule(),
        DegradeToMissRule(),
        CodecPairingRule(),
        ConfigDriftRule(),
        PickleContractRule(),
    ]


def _parse_error_findings(project: Project) -> Iterator[Finding]:
    for module in project.modules:
        if module.parse_error is not None:
            yield Finding(
                rule=PARSE_ERROR_RULE,
                path=module.relpath,
                line=module.parse_error.lineno or 1,
                message=f"module does not parse: {module.parse_error.msg}",
                hint="fix the syntax error; every other rule needs the AST",
            )


def lint_project(
    root: str | Path,
    *,
    rules: Sequence[Rule] | None = None,
    baseline: set[tuple[str, str, str]] | None = None,
    project: Project | None = None,
) -> LintResult:
    """Run ``rules`` over the project at ``root``; filtered result.

    ``baseline`` holds grandfathered :attr:`Finding.baseline_key`
    identities (see :func:`load_baseline`); pass ``project`` to reuse
    an already-loaded tree (tests do).
    """
    if project is None:
        project = Project.load(root)
    if rules is None:
        rules = default_rules()
    modules_by_path = {module.relpath: module for module in project.modules}
    raw: list[Finding] = list(_parse_error_findings(project))
    for rule in rules:
        raw.extend(rule.check(project))
    raw.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    result = LintResult()
    for finding in raw:
        module = modules_by_path.get(finding.path)
        if module is not None and module.suppressed(
            finding.rule, finding.line
        ):
            result.suppressed += 1
        elif baseline and finding.baseline_key in baseline:
            result.baselined += 1
        else:
            result.findings.append(finding)
    return result


# -- baseline ---------------------------------------------------------------

_BASELINE_VERSION = 1


def load_baseline(path: str | Path) -> set[tuple[str, str, str]]:
    """The grandfathered finding identities stored at ``path``."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ValidationError(f"unreadable baseline {path}: {exc}") from exc
    if (
        not isinstance(document, dict)
        or document.get("version") != _BASELINE_VERSION
        or not isinstance(document.get("findings"), list)
    ):
        raise ValidationError(
            f"baseline {path} is not a version-{_BASELINE_VERSION} "
            "repro-lint baseline"
        )
    baseline: set[tuple[str, str, str]] = set()
    for entry in document["findings"]:
        if not isinstance(entry, dict):
            raise ValidationError(f"malformed baseline entry: {entry!r}")
        try:
            baseline.add(
                (
                    str(entry["rule"]),
                    str(entry["path"]),
                    str(entry["message"]),
                )
            )
        except KeyError as exc:
            raise ValidationError(
                f"baseline entry missing {exc}: {entry!r}"
            ) from exc
    return baseline


def save_baseline(findings: Iterable[Finding], path: str | Path) -> None:
    """Persist ``findings`` as a baseline file (sorted, stable)."""
    entries = sorted(
        {
            (f.rule, f.path, f.message)
            for f in findings
        }
    )
    document = {
        "version": _BASELINE_VERSION,
        "findings": [
            {"rule": rule, "path": relpath, "message": message}
            for rule, relpath, message in entries
        ],
    }
    Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


# -- output -----------------------------------------------------------------


def render_text(result: LintResult) -> str:
    """Human-readable report (the default ``repro lint`` output)."""
    lines: list[str] = []
    for finding in result.findings:
        lines.append(
            f"{finding.path}:{finding.line}: {finding.rule} "
            f"{finding.message}"
        )
        if finding.hint:
            lines.append(f"    hint: {finding.hint}")
    summary = (
        f"{len(result.findings)} finding(s), "
        f"{result.suppressed} suppressed by pragma, "
        f"{result.baselined} baselined"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (``repro lint --format json``)."""
    document = {
        "findings": [finding.to_dict() for finding in result.findings],
        "suppressed": result.suppressed,
        "baselined": result.baselined,
        "clean": result.clean,
    }
    return json.dumps(document, indent=2, sort_keys=True)
