"""RL005 — pickle contracts for process-pool work.

``worker_backend="process"`` ships objects across a pipe: everything
handed to a ``ProcessPoolExecutor`` — the callable, its arguments, the
initializer's ``initargs`` — must pickle.  Thread locks, pools,
sockets, and live connections do not; a class that grows one of those
attributes keeps working under the thread backend and every unit test,
then dies (or worse, silently re-initialises) the first time a
process worker unpickles it.  The picklable classes in this repo all
declare their contract explicitly: ``__getstate__`` (pickle to a
path/URL handle) or ``__reduce__``.

The rule flags classes that hold **unpicklable state** (an attribute
assigned from ``Lock``/``RLock``/``Condition``/``Event``/
``Semaphore``/``ThreadPoolExecutor``/``ProcessPoolExecutor``/
``socket``/``HTTPConnection``/``threading.local``) without defining
``__getstate__``/``__reduce__``/``__reduce_ex__``, when the class is
**process-shipped**:

* it is defined in a module that instantiates a
  ``ProcessPoolExecutor`` (the conservative net: everything in such a
  module is one refactor away from crossing the pipe), or
* an instance of it is resolvable at a dispatch site — an argument of
  ``pool.submit(...)``/``pool.map(...)`` on a pool created from
  ``ProcessPoolExecutor(...)`` in the same function, or an element of
  that executor's ``initargs=(...)`` tuple, resolved through direct
  ``ClassName(...)`` calls and local ``x = ClassName(...)``
  assignments.

Resolution is intentionally shallow (no interprocedural dataflow): a
class that reaches a pool through a parameter is not seen — the
defined-in-module net exists to cover exactly that case for the
modules where it matters.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import Finding, ModuleSource, Project, Rule

#: Callables whose result never survives a pickle round trip.
_UNPICKLABLE_FACTORIES = frozenset(
    {
        "Lock",
        "RLock",
        "Condition",
        "Event",
        "Semaphore",
        "BoundedSemaphore",
        "Barrier",
        "local",
        "ThreadPoolExecutor",
        "ProcessPoolExecutor",
        "socket",
        "HTTPConnection",
        "HTTPSConnection",
    }
)

_PICKLE_HOOKS = frozenset({"__getstate__", "__reduce__", "__reduce_ex__"})


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _holds_unpicklable(node: ast.ClassDef) -> list[tuple[str, int]]:
    """``(attr, line)`` of self-attributes assigned unpicklable values."""
    held: list[tuple[str, int]] = []
    for method in node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for stmt in ast.walk(method):
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            if not any(
                isinstance(child, ast.Call)
                and _call_name(child) in _UNPICKLABLE_FACTORIES
                for child in ast.walk(value)
            ):
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    held.append((target.attr, stmt.lineno))
    return held


def _defines_pickle_hook(node: ast.ClassDef) -> bool:
    return any(
        isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        and stmt.name in _PICKLE_HOOKS
        for stmt in node.body
    )


def _uses_process_pool(tree: ast.Module) -> bool:
    return any(
        isinstance(node, ast.Call)
        and _call_name(node) == "ProcessPoolExecutor"
        for node in ast.walk(tree)
    )


def _dispatched_class_names(module: ModuleSource) -> set[str]:
    """Class names resolvable at process-pool dispatch sites."""
    dispatched: set[str] = set()
    for scope in ast.walk(module.tree):
        if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        pool_vars: set[str] = set()
        local_classes: dict[str, str] = {}  # var -> ClassName
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                name = _call_name(node.value)
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        if name == "ProcessPoolExecutor":
                            pool_vars.add(target.id)
                        elif name and name[0].isupper():
                            local_classes[target.id] = name
            elif isinstance(node, ast.With):
                for item in node.items:
                    if (
                        isinstance(item.context_expr, ast.Call)
                        and _call_name(item.context_expr)
                        == "ProcessPoolExecutor"
                        and isinstance(item.optional_vars, ast.Name)
                    ):
                        pool_vars.add(item.optional_vars.id)

        def _resolve(expr: ast.expr) -> None:
            if isinstance(expr, ast.Call):
                name = _call_name(expr)
                if name and name[0].isupper():
                    dispatched.add(name)
            elif isinstance(expr, ast.Name) and expr.id in local_classes:
                dispatched.add(local_classes[expr.id])
            elif isinstance(expr, (ast.Tuple, ast.List)):
                for element in expr.elts:
                    _resolve(element)

        for node in ast.walk(scope):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name in ("submit", "map") and (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in pool_vars
            ):
                for arg in node.args:
                    _resolve(arg)
            elif name == "ProcessPoolExecutor":
                for keyword in node.keywords:
                    if keyword.arg == "initargs":
                        _resolve(keyword.value)
    return dispatched


class PickleContractRule(Rule):
    rule_id = "RL005"
    title = "pickle contract"
    hint = (
        "define __getstate__/__setstate__ (pickle to a reopenable "
        "handle: a path, a URL) or __reduce__, or keep the class out "
        "of process-pool dispatch"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        # Every class shipped by name anywhere in the project...
        dispatched: set[str] = set()
        for module in project.modules:
            dispatched.update(_dispatched_class_names(module))
        for module in project.modules:
            in_process_module = _uses_process_pool(module.tree)
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                if not in_process_module and node.name not in dispatched:
                    continue
                if _defines_pickle_hook(node):
                    continue
                held = _holds_unpicklable(node)
                if not held:
                    continue
                attrs = ", ".join(
                    sorted({f"self.{attr}" for attr, _ in held})
                )
                yield self.finding(
                    module,
                    node.lineno,
                    f"{node.name} is reachable by process-pool dispatch "
                    f"but holds unpicklable state ({attrs}) and defines "
                    "no __getstate__/__reduce__",
                )
