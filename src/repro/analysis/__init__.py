"""Project-invariant static analysis (``repro lint``).

The repo's riskiest invariants — lock discipline in the concurrent
service modules, degrade-to-miss error accounting at the network
boundary, encode/decode codec pairing on the wire, config/CLI/README
drift, and pickle contracts for process-pool workers — are enforced by
convention only; a regression in any of them passes the type checker
and usually the unit tests too.  This package closes that gap with a
small stdlib-``ast`` engine and five project-specific rules:

========  ==========================================================
RL001     lock discipline: attribute writes reachable from public
          methods of a lock-owning class must hold the lock
RL002     degrade-to-miss: network-boundary except handlers must
          account (error counter) or escalate (re-raise), never
          silently swallow
RL003     codec pairing: every ``encode_*`` has a ``decode_*`` in the
          same module and both are exercised by tests
RL004     config drift: ``EnrichmentConfig`` fields ↔ ``cli.py``
          flags ↔ README mentions stay in lockstep
RL005     pickle contract: classes shipped to a
          ``ProcessPoolExecutor`` must not carry thread/lock/pool/
          socket state without ``__getstate__``/``__reduce__``
========  ==========================================================

Findings can be suppressed per line with a justified pragma::

    risky_line()  # repro-lint: disable=RL002 - callers count the None

or grandfathered in a baseline file (``repro lint --baseline PATH``);
the CI gate runs with an **empty** baseline, so the repo itself must
stay clean.
"""

from repro.analysis.engine import (
    Finding,
    LintResult,
    ModuleSource,
    Project,
    default_rules,
    lint_project,
    load_baseline,
    render_json,
    render_text,
    save_baseline,
)

__all__ = [
    "Finding",
    "LintResult",
    "ModuleSource",
    "Project",
    "default_rules",
    "lint_project",
    "load_baseline",
    "render_json",
    "render_text",
    "save_baseline",
]
