"""RL003 — encode/decode codec pairing on the wire.

The wire layer lives and dies by symmetry: every ``encode_*`` has a
``decode_*`` that can read what it wrote, and a codec nobody tests is
a codec whose symmetry is one refactor away from silently breaking
(the decoder keeps accepting the *old* layout, every payload degrades
to a miss, and no test notices).

For every module-level ``encode_X``/``decode_X`` function in ``src/``:

* the **counterpart** must exist in the *same* module (pairing across
  modules is drift waiting to happen);
* both names must appear in at least one test module, so the pair is
  exercised together.

Names like ``encode`` alone (no suffix) are ignored — the rule targets
the paired-codec naming convention, not every serialiser.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.analysis.engine import Finding, ModuleSource, Project, Rule

_CODEC_RE = re.compile(r"^(encode|decode)_(\w+)$")


def _codec_functions(module: ModuleSource) -> dict[str, int]:
    """``name -> def line`` of module-level codec functions."""
    found: dict[str, int] = {}
    for node in module.tree.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if _CODEC_RE.match(node.name):
            found[node.name] = node.lineno
    return found


class CodecPairingRule(Rule):
    rule_id = "RL003"
    title = "codec pairing"
    hint = (
        "add the missing counterpart in the same module, and exercise "
        "both directions from a test module"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        test_text = "\n".join(
            module.text for module in project.test_modules
        )
        for module in project.modules:
            functions = _codec_functions(module)
            if not functions:
                continue
            for name, line in sorted(functions.items()):
                kind, _, suffix = name.partition("_")
                other_kind = "decode" if kind == "encode" else "encode"
                counterpart = f"{other_kind}_{suffix}"
                if counterpart not in functions:
                    yield self.finding(
                        module,
                        line,
                        f"{name} has no {counterpart} counterpart in "
                        "this module",
                    )
                if not re.search(rf"\b{re.escape(name)}\b", test_text):
                    yield self.finding(
                        module,
                        line,
                        f"codec function {name} is not exercised by any "
                        "test module",
                        hint=(
                            "reference it from a test (round-trip it "
                            "with its counterpart)"
                        ),
                    )
