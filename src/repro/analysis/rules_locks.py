"""RL001 — lock discipline in lock-owning classes.

A class that creates a ``threading.Lock``/``RLock`` (or a list of
them) owns mutable state that more than one thread touches; the whole
point of the lock is that **every** write to that state happens while
holding it.  The race regressions that bit the service layer (counter
writes outside the counter lock, cache invalidation outside the pool
guard) all had the same shape: an attribute write, lexically outside
any ``with self._lock:`` block, in a method a caller can reach without
the lock.

The rule reconstructs exactly that:

1. **Lock attributes** are ``self.X`` assignments whose value contains
   a ``Lock()``/``RLock()``/``Condition()`` call (a list comprehension
   of locks counts, covering lock-sharded designs).
2. **Writes** are assignments/augmented assignments to ``self.attr``
   or ``self.attr[...]`` in any method.  A write is *protected* when
   it is lexically inside a ``with`` statement whose context manager
   is one of the class's lock attributes (``self._lock`` or
   ``self._locks[i]``).
3. **Reachability**: public methods (and non-constructor dunders) are
   entry points that run without the lock.  A private helper "may run
   unlocked" only if some call site of it is itself unprotected inside
   a method that may run unlocked — computed as a fixpoint over the
   intra-class ``self.method()`` call graph, so helpers that are only
   ever invoked under the lock (``_maybe_evict`` called from a locked
   ``put``) are never false positives.

Escapes, in preference order: move the write under the lock; suffix
the helper ``_locked`` (the project convention for "caller holds the
lock" — such methods are trusted and skipped); or pragma the line with
a justification.

Constructor-phase methods (``__init__``, ``__new__``,
``__setstate__``, ``__post_init__``, ``__del__``) are exempt: no other
thread holds the object yet (or still).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.analysis.engine import Finding, ModuleSource, Project, Rule

#: Callables whose result is a lock-like synchronisation primitive.
_LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition"})

#: Methods that run before (or after) the object is shared between
#: threads; writes there need no lock, and calls *from* there do not
#: make a helper reachable-unlocked.
_CONSTRUCTOR_METHODS = frozenset(
    {"__init__", "__new__", "__setstate__", "__post_init__", "__del__"}
)


def _is_lock_factory_call(node: ast.AST) -> bool:
    """True when ``node`` contains a ``Lock()``-like call anywhere."""
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            func = child.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name in _LOCK_FACTORIES:
                return True
    return False


def _self_attribute(node: ast.AST) -> str | None:
    """``attr`` when ``node`` is ``self.attr``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _written_self_attrs(target: ast.AST) -> Iterator[tuple[str, int]]:
    """``(attr, line)`` for every self-attribute a target writes.

    Covers ``self.a = ...``, ``self.a, self.b = ...``,
    ``self.a[i] = ...`` (the container the lock protects is still
    ``self.a``), and starred targets.
    """
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _written_self_attrs(element)
        return
    if isinstance(target, ast.Starred):
        yield from _written_self_attrs(target.value)
        return
    attr = _self_attribute(target)
    if attr is not None:
        yield attr, target.lineno
        return
    if isinstance(target, ast.Subscript):
        attr = _self_attribute(target.value)
        if attr is not None:
            yield attr, target.lineno


@dataclass
class _MethodFacts:
    """What one method does, annotated with lock context."""

    name: str
    #: ``(attr, line, protected)`` per self-attribute write.
    writes: list[tuple[str, int, bool]] = field(default_factory=list)
    #: ``(callee, protected)`` per ``self.callee(...)`` call site.
    calls: list[tuple[str, bool]] = field(default_factory=list)


class _MethodScanner(ast.NodeVisitor):
    """Collect writes and intra-class calls with their lock context."""

    def __init__(self, lock_attrs: frozenset[str]) -> None:
        self._lock_attrs = lock_attrs
        self._depth = 0  # nesting depth of with-lock blocks
        self.facts: list[tuple[str, int, bool]] = []
        self.calls: list[tuple[str, bool]] = []

    def _locks_in_with(self, node: ast.With) -> bool:
        for item in node.items:
            expr = item.context_expr
            # ``with self._lock:`` / ``with self._locks[shard]:``
            attr = _self_attribute(expr)
            if attr is None and isinstance(expr, ast.Subscript):
                attr = _self_attribute(expr.value)
            if attr is not None and attr in self._lock_attrs:
                return True
        return False

    def visit_With(self, node: ast.With) -> None:
        if self._locks_in_with(node):
            self._depth += 1
            self.generic_visit(node)
            self._depth -= 1
        else:
            self.generic_visit(node)

    def _record_targets(self, targets: list[ast.AST]) -> None:
        protected = self._depth > 0
        for target in targets:
            for attr, line in _written_self_attrs(target):
                self.facts.append((attr, line, protected))

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_targets(list(node.targets))
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_targets([node.target])
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_targets([node.target])
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        callee = None
        if isinstance(node.func, ast.Attribute):
            callee = _self_attribute(node.func)
        if callee is not None:
            self.calls.append((callee, self._depth > 0))
        self.generic_visit(node)


def _class_methods(
    node: ast.ClassDef,
) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    return [
        stmt
        for stmt in node.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


class LockDisciplineRule(Rule):
    rule_id = "RL001"
    title = "lock discipline"
    hint = (
        "move the write inside 'with self.<lock>:', rename the helper "
        "with a _locked suffix if every caller already holds the lock, "
        "or pragma the line with a justification"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    yield from self._check_class(module, node)

    def _check_class(
        self, module: ModuleSource, node: ast.ClassDef
    ) -> Iterator[Finding]:
        methods = _class_methods(node)
        lock_attrs = frozenset(
            attr
            for method in methods
            for stmt in ast.walk(method)
            if isinstance(stmt, (ast.Assign, ast.AnnAssign))
            and stmt.value is not None
            and _is_lock_factory_call(stmt.value)
            for target in (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for attr, _ in _written_self_attrs(target)
        )
        if not lock_attrs:
            return

        facts: dict[str, _MethodFacts] = {}
        for method in methods:
            scanner = _MethodScanner(lock_attrs)
            for stmt in method.body:
                scanner.visit(stmt)
            facts[method.name] = _MethodFacts(
                name=method.name,
                writes=scanner.facts,
                calls=scanner.calls,
            )

        may_run_unlocked = {
            name
            for name in facts
            if name not in _CONSTRUCTOR_METHODS
            and not name.endswith("_locked")
            and (not name.startswith("_") or _is_dunder(name))
        }
        # Fixpoint: a private helper may run unlocked when an
        # unprotected call site of it lives in a method that itself may
        # run unlocked.
        changed = True
        while changed:
            changed = False
            for name in may_run_unlocked.copy():
                for callee, protected in facts[name].calls:
                    if (
                        not protected
                        and callee in facts
                        and callee not in may_run_unlocked
                        and callee not in _CONSTRUCTOR_METHODS
                        and not callee.endswith("_locked")
                    ):
                        may_run_unlocked.add(callee)
                        changed = True

        lock_names = " or ".join(
            f"self.{name}" for name in sorted(lock_attrs)
        )
        for name in sorted(may_run_unlocked):
            for attr, line, protected in facts[name].writes:
                if protected or attr in lock_attrs:
                    continue
                yield self.finding(
                    module,
                    line,
                    f"{node.name}.{name} writes self.{attr} without "
                    f"holding {lock_names} (reachable from a public "
                    "method)",
                )


def _is_dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")
