"""RL002 — degrade-to-miss error accounting at the network boundary.

The served cache's core contract is that a network failure degrades to
a clean cache miss **and is counted** (``remote_errors``), never
silently swallowed: an uncounted swallow is invisible in the report,
in ``/stats``, and in every test that only checks results — exactly
the failure :class:`~repro.service.client.RemoteCacheStore` must never
have.

Scope: modules that talk to the network directly (they import
``socket`` or ``http.client``).  In those modules, every ``except``
handler that can catch a network/OS error — ``OSError`` and its
connection subclasses, ``TimeoutError``, ``socket.*``,
``http.client.HTTPException``, a tuple named like ``_NETWORK_ERRORS``,
or a blanket ``Exception`` — must do at least one of:

* **escalate**: ``raise`` (bare or new) somewhere in the handler;
* **account**: call something whose name mentions ``error``/``fail``
  (``self._error()``, ``record_failure()``) or assign/augment an
  attribute or variable whose name does (``self.failures += 1``,
  ``job.error = ...``).

One structural exemption: a ``try`` block that only closes things
(every statement is a ``.close()``/``.shutdown()``/``.unlink()``
call) cannot *degrade* anything — teardown best-effort swallows are
fine.  Anything else needs the counter, the raise, or a pragma with a
written justification.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.analysis.engine import Finding, ModuleSource, Project, Rule

#: Exception names that mean "the network or the OS failed".
_NETWORK_EXCEPTION_NAMES = frozenset(
    {
        "Exception",
        "BaseException",
        "OSError",
        "IOError",
        "ConnectionError",
        "ConnectionResetError",
        "ConnectionRefusedError",
        "ConnectionAbortedError",
        "BrokenPipeError",
        "TimeoutError",
        "HTTPException",
        "timeout",
        "gaierror",
        "herror",
    }
)

_NETWORK_TUPLE_RE = re.compile(r"NETWORK", re.IGNORECASE)
_ACCOUNTING_NAME_RE = re.compile(r"error|fail", re.IGNORECASE)

#: Teardown calls whose failures cannot lose data or hide degradation.
_TEARDOWN_CALLS = frozenset({"close", "shutdown", "unlink", "terminate"})


def _imports_network(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in ("socket", "http.client"):
                    return True
        elif isinstance(node, ast.ImportFrom):
            if node.module == "http.client" or node.module == "socket":
                return True
            if node.module == "http" and any(
                alias.name == "client" for alias in node.names
            ):
                return True
    return False


def _exception_names(node: ast.expr | None) -> Iterator[str]:
    """Flat names of a handler's exception expression."""
    if node is None:
        yield "Exception"  # a bare except catches everything
        return
    if isinstance(node, ast.Tuple):
        for element in node.elts:
            yield from _exception_names(element)
        return
    if isinstance(node, ast.Name):
        yield node.id
    elif isinstance(node, ast.Attribute):
        yield node.attr


def _catches_network_error(handler: ast.ExceptHandler) -> bool:
    for name in _exception_names(handler.type):
        if name in _NETWORK_EXCEPTION_NAMES:
            return True
        if _NETWORK_TUPLE_RE.search(name):
            return True
    return False


def _accounts_or_escalates(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else ""
            )
            if _ACCOUNTING_NAME_RE.search(name):
                return True
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                name = (
                    target.attr
                    if isinstance(target, ast.Attribute)
                    else target.id if isinstance(target, ast.Name) else ""
                )
                if _ACCOUNTING_NAME_RE.search(name):
                    return True
    return False


def _teardown_only(try_node: ast.Try) -> bool:
    """True when the try body only closes/releases resources."""
    for stmt in try_node.body:
        if not isinstance(stmt, ast.Expr):
            return False
        call = stmt.value
        if not isinstance(call, ast.Call):
            return False
        func = call.func
        name = (
            func.attr
            if isinstance(func, ast.Attribute)
            else func.id if isinstance(func, ast.Name) else ""
        )
        if name not in _TEARDOWN_CALLS:
            return False
    return True


class DegradeToMissRule(Rule):
    rule_id = "RL002"
    title = "degrade-to-miss accounting"
    hint = (
        "bump an error counter (e.g. self._error()) or re-raise inside "
        "the handler; if the swallow is genuinely safe, pragma the "
        "'except' line with a justification"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if not _imports_network(module.tree):
                continue
            yield from self._check_module(module)

    def _check_module(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Try):
                continue
            if _teardown_only(node):
                continue
            for handler in node.handlers:
                if not _catches_network_error(handler):
                    continue
                if _accounts_or_escalates(handler):
                    continue
                caught = ", ".join(_exception_names(handler.type))
                yield self.finding(
                    module,
                    handler.lineno,
                    f"except handler for ({caught}) swallows a network/"
                    "OS failure without recording it: no error counter "
                    "is bumped and nothing is re-raised",
                )
