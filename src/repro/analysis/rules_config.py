"""RL004 — config drift between ``EnrichmentConfig``, the CLI, README.

Every :class:`~repro.workflow.config.EnrichmentConfig` field is a user
promise three times over: as a dataclass field, as a CLI flag, and as
documentation.  The three surfaces drift independently — a field added
without a flag is unreachable from the command line, a flag without a
field crashes at dispatch, and an undocumented knob may as well not
exist.  This rule pins them together:

* every config field must be settable from the ``enrich`` subparser
  (a flag of the same name, modulo the aliases below);
* every ``enrich`` flag (minus the I/O flags that are not config:
  ``--ontology``, ``--corpus``, ``--timings``) must map to a field;
* every field name must be mentioned in the README.

Flag → field matching: ``--foo-bar`` ↔ ``foo_bar``; ``--no-X`` ↔ ``X``
(boolean inverts); plus the project's historical aliases
(``--candidates`` ↔ ``n_candidates``, ``--workers`` ↔ ``n_workers``,
``--top-k`` ↔ ``top_k_positions``, ``--max-contexts`` ↔
``max_contexts_per_term``) — renaming those flags would break every
deployed script, so the linter knows them instead.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.analysis.engine import Finding, ModuleSource, Project, Rule

#: Historical flag names that predate their config field's spelling.
FLAG_ALIASES: dict[str, str] = {
    "candidates": "n_candidates",
    "top_k": "top_k_positions",
    "max_contexts": "max_contexts_per_term",
    "workers": "n_workers",
}

#: ``enrich`` flags that are I/O plumbing, not configuration.
NON_CONFIG_FLAGS = frozenset({"ontology", "corpus", "timings"})

#: The dataclass and subparser this rule pins together.
CONFIG_CLASS = "EnrichmentConfig"
SUBPARSER = "enrich"


def _config_fields(
    project: Project,
) -> tuple[ModuleSource, dict[str, int]] | None:
    """``(module, field -> line)`` of the config dataclass."""
    for module in project.modules:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.ClassDef)
                and node.name == CONFIG_CLASS
            ):
                fields = {
                    stmt.target.id: stmt.lineno
                    for stmt in node.body
                    if isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and not stmt.target.id.startswith("_")
                }
                return module, fields
    return None


def _enrich_flags(
    module: ModuleSource,
) -> dict[str, int]:
    """``normalised flag -> line`` of the enrich subparser's arguments.

    The subparser is recognised structurally: any variable assigned
    from ``<x>.add_parser("enrich", ...)`` collects the
    ``add_argument`` calls made on it.
    """
    parser_vars: set[str] = set()
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "add_parser"
            and value.args
            and isinstance(value.args[0], ast.Constant)
            and value.args[0].value == SUBPARSER
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    parser_vars.add(target.id)
    flags: dict[str, int] = {}
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "add_argument"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in parser_vars
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
            and node.args[0].value.startswith("--")
        ):
            flag = node.args[0].value.lstrip("-").replace("-", "_")
            flags[flag] = node.lineno
    return flags


def _flag_to_field(flag: str, fields: dict[str, int]) -> str | None:
    """The config field ``flag`` reaches, or None."""
    if flag in FLAG_ALIASES:
        return FLAG_ALIASES[flag]
    if flag in fields:
        return flag
    if flag.startswith("no_") and flag[3:] in fields:
        return flag[3:]  # --no-X inverts boolean field X
    return None


class ConfigDriftRule(Rule):
    rule_id = "RL004"
    title = "config drift"
    hint = (
        "keep EnrichmentConfig fields, the enrich subparser, and the "
        "README in lockstep: add the missing flag/field/mention (see "
        "FLAG_ALIASES in rules_config.py for historical spellings)"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        located = _config_fields(project)
        if located is None:
            return  # no config class in this project: nothing to pin
        config_module, fields = located
        cli_module = None
        for module in project.modules:
            if module.relpath.endswith("cli.py"):
                cli_module = module
                break
        if cli_module is None:
            yield self.finding(
                config_module,
                1,
                f"{CONFIG_CLASS} exists but no cli.py module does; "
                "fields are unreachable from any command line",
            )
            return
        flags = _enrich_flags(cli_module)
        reachable_fields = {
            _flag_to_field(flag, fields) for flag in flags
        }

        for name, line in sorted(fields.items()):
            if name not in reachable_fields:
                yield self.finding(
                    config_module,
                    line,
                    f"{CONFIG_CLASS}.{name} has no corresponding "
                    f"'{SUBPARSER}' CLI flag (field is unreachable "
                    "from the command line)",
                )
            readme = project.readme_text
            if readme is None or not re.search(
                rf"\b{re.escape(name)}\b", readme
            ):
                yield self.finding(
                    config_module,
                    line,
                    f"{CONFIG_CLASS}.{name} is not mentioned in "
                    "README.md",
                    hint="document the field (the README config table)",
                )

        for flag, line in sorted(flags.items()):
            if flag in NON_CONFIG_FLAGS:
                continue
            if _flag_to_field(flag, fields) is None:
                yield self.finding(
                    cli_module,
                    line,
                    f"'{SUBPARSER}' flag --{flag.replace('_', '-')} "
                    f"maps to no {CONFIG_CLASS} field",
                )
