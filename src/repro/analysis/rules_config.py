"""RL004 — config drift between config dataclasses, the CLI, README.

Every field of a user-facing config dataclass is a promise three times
over: as a dataclass field, as a CLI flag, and as documentation.  The
three surfaces drift independently — a field added without a flag is
unreachable from the command line, a flag without a field crashes at
dispatch, and an undocumented knob may as well not exist.  This rule
pins each (config class, subparser) pair together:

* every config field must be settable from its subparser (a flag of
  the same name, modulo the pin's aliases);
* every subparser flag (minus the pin's I/O flags that are not
  config) must map to a field;
* every field name must be mentioned in the README.

Flag → field matching: ``--foo-bar`` ↔ ``foo_bar``; ``--no-X`` ↔ ``X``
(boolean inverts); plus per-pin historical aliases (renaming a
deployed flag would break every script using it, so the linter knows
the old spellings instead).

The pinned pairs are listed in :data:`PINS`; a pin whose config class
does not exist in the project is skipped, so the rule ports to any
project shape.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.analysis.engine import Finding, ModuleSource, Project, Rule


@dataclass(frozen=True)
class ConfigPin:
    """One (config dataclass, CLI subparser) pair the rule keeps in sync."""

    config_class: str
    subparser: str
    #: Historical flag names that predate their field's spelling.
    flag_aliases: dict[str, str] = field(default_factory=dict)
    #: Subparser flags that are I/O plumbing, not configuration.
    non_config_flags: frozenset[str] = frozenset()


#: The ``enrich`` flags whose names predate their config field's spelling
#: (kept as a module constant: it documents the project's flag history).
FLAG_ALIASES: dict[str, str] = {
    "candidates": "n_candidates",
    "top_k": "top_k_positions",
    "max_contexts": "max_contexts_per_term",
    "workers": "n_workers",
}

#: The pinned (config class, subparser) pairs of this project.
PINS: tuple[ConfigPin, ...] = (
    ConfigPin(
        config_class="EnrichmentConfig",
        subparser="enrich",
        flag_aliases=FLAG_ALIASES,
        non_config_flags=frozenset({"ontology", "corpus", "timings"}),
    ),
    ConfigPin(
        config_class="RecommendConfig",
        subparser="recommend",
        non_config_flags=frozenset(
            {"ontology", "text", "scenario", "format"}
        ),
    ),
)


def _config_fields(
    project: Project, config_class: str
) -> tuple[ModuleSource, dict[str, int]] | None:
    """``(module, field -> line)`` of the pin's config dataclass."""
    for module in project.modules:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.ClassDef)
                and node.name == config_class
            ):
                fields = {
                    stmt.target.id: stmt.lineno
                    for stmt in node.body
                    if isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and not stmt.target.id.startswith("_")
                }
                return module, fields
    return None


def _subparser_flags(
    module: ModuleSource, subparser: str
) -> dict[str, int]:
    """``normalised flag -> line`` of the subparser's arguments.

    The subparser is recognised structurally: any variable assigned
    from ``<x>.add_parser("<subparser>", ...)`` collects the
    ``add_argument`` calls made on it.
    """
    parser_vars: set[str] = set()
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "add_parser"
            and value.args
            and isinstance(value.args[0], ast.Constant)
            and value.args[0].value == subparser
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    parser_vars.add(target.id)
    flags: dict[str, int] = {}
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "add_argument"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in parser_vars
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
            and node.args[0].value.startswith("--")
        ):
            flag = node.args[0].value.lstrip("-").replace("-", "_")
            flags[flag] = node.lineno
    return flags


def _flag_to_field(
    flag: str, fields: dict[str, int], pin: ConfigPin
) -> str | None:
    """The config field ``flag`` reaches, or None."""
    if flag in pin.flag_aliases:
        return pin.flag_aliases[flag]
    if flag in fields:
        return flag
    if flag.startswith("no_") and flag[3:] in fields:
        return flag[3:]  # --no-X inverts boolean field X
    return None


class ConfigDriftRule(Rule):
    rule_id = "RL004"
    title = "config drift"
    hint = (
        "keep config dataclass fields, their CLI subparser, and the "
        "README in lockstep: add the missing flag/field/mention (see "
        "PINS in rules_config.py for the pinned pairs and historical "
        "flag spellings)"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for pin in PINS:
            yield from self._check_pin(project, pin)

    def _check_pin(
        self, project: Project, pin: ConfigPin
    ) -> Iterator[Finding]:
        located = _config_fields(project, pin.config_class)
        if located is None:
            return  # pin's config class absent here: nothing to pin
        config_module, fields = located
        cli_module = None
        for module in project.modules:
            if module.relpath.endswith("cli.py"):
                cli_module = module
                break
        if cli_module is None:
            yield self.finding(
                config_module,
                1,
                f"{pin.config_class} exists but no cli.py module does; "
                "fields are unreachable from any command line",
            )
            return
        flags = _subparser_flags(cli_module, pin.subparser)
        reachable_fields = {
            _flag_to_field(flag, fields, pin) for flag in flags
        }

        for name, line in sorted(fields.items()):
            if name not in reachable_fields:
                yield self.finding(
                    config_module,
                    line,
                    f"{pin.config_class}.{name} has no corresponding "
                    f"'{pin.subparser}' CLI flag (field is unreachable "
                    "from the command line)",
                )
            readme = project.readme_text
            if readme is None or not re.search(
                rf"\b{re.escape(name)}\b", readme
            ):
                yield self.finding(
                    config_module,
                    line,
                    f"{pin.config_class}.{name} is not mentioned in "
                    "README.md",
                    hint="document the field (the README config table)",
                )

        for flag, line in sorted(flags.items()):
            if flag in pin.non_config_flags:
                continue
            if _flag_to_field(flag, fields, pin) is None:
                yield self.finding(
                    cli_module,
                    line,
                    f"'{pin.subparser}' flag --{flag.replace('_', '-')} "
                    f"maps to no {pin.config_class} field",
                )
