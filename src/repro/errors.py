"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming from this package with a single ``except`` clause
while still letting programming errors (``TypeError`` on wrong argument
types, for instance) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An argument value is outside its documented domain."""


class NotFittedError(ReproError, RuntimeError):
    """A model method requiring a fitted estimator was called before ``fit``."""


class ConvergenceWarning(UserWarning):
    """An iterative optimiser stopped at its iteration cap before converging."""


class LabelCollisionWarning(UserWarning):
    """Two spellings of one concept label collide after normalisation.

    The loaders keep the first spelling and drop the rest — lossy, so it
    warns instead of passing silently.
    """


class OntologyError(ReproError):
    """The ontology structure is inconsistent (unknown ids, cycles, ...)."""


class CorpusError(ReproError):
    """A corpus or document is malformed or empty where content is required."""


class ClusteringError(ReproError):
    """A clustering request cannot be satisfied (e.g. k larger than n)."""


class ExtractionError(ReproError):
    """Term extraction failed (empty corpus, unknown measure name, ...)."""


class LinkageError(ReproError):
    """Semantic linkage failed (candidate without context, empty ontology)."""
