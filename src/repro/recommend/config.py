"""Configuration of the ontology recommendation engine.

The four criterion weights follow NCBO Ontology Recommender 2.0's
defaults (coverage dominates; acceptance, detail, and specialization
refine the ranking among ontologies that cover the input comparably).
Weights are relative — they are normalised by their sum, so
``(55, 15, 15, 15)`` and ``(0.55, 0.15, 0.15, 0.15)`` are the same
configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError


@dataclass(frozen=True)
class RecommendConfig:
    """Knobs of the recommendation scoring model.

    Parameters
    ----------
    coverage_weight:
        Weight of the **coverage** criterion: how much of the input the
        ontology annotates (multi-word and preferred-term matches count
        more, per Recommender 2.0).
    acceptance_weight:
        Weight of the **acceptance** criterion: how established the
        matched labels are, proxied by their document frequencies in a
        reference corpus index (0 when no corpus is available).
    detail_weight:
        Weight of the **detail** criterion: synonym/relation/metadata
        density of the matched concepts.
    specialization_weight:
        Weight of the **specialization** criterion: how deep in the
        hierarchy the matched concepts sit (depth-weighted position).
    synonym_factor:
        Multiplier applied to a match through a synonym rather than a
        preferred term (< 1 favours ontologies whose canonical names
        match the input directly).
    multiword_factor:
        Multiplier applied per matched multi-word label occurrence —
        multi-word matches are far less likely to be accidental.
    max_set_size:
        Upper bound on the greedy ontology-set recommendation's size.
    min_coverage_gain:
        Coverage-gain pruning threshold of the set recommendation: the
        greedy loop stops when adding the best remaining ontology grows
        covered-token fraction by less than this.
    """

    coverage_weight: float = 0.55
    acceptance_weight: float = 0.15
    detail_weight: float = 0.15
    specialization_weight: float = 0.15
    synonym_factor: float = 0.8
    multiword_factor: float = 2.0
    max_set_size: int = 3
    min_coverage_gain: float = 0.05

    def __post_init__(self) -> None:
        for name in (
            "coverage_weight",
            "acceptance_weight",
            "detail_weight",
            "specialization_weight",
        ):
            value = getattr(self, name)
            if value < 0:
                raise ValidationError(f"{name} must be >= 0, got {value}")
        if self.weight_sum() <= 0:
            raise ValidationError("criterion weights must not all be zero")
        if self.synonym_factor <= 0:
            raise ValidationError(
                f"synonym_factor must be > 0, got {self.synonym_factor}"
            )
        if self.multiword_factor <= 0:
            raise ValidationError(
                f"multiword_factor must be > 0, got {self.multiword_factor}"
            )
        if self.max_set_size < 1:
            raise ValidationError(
                f"max_set_size must be >= 1, got {self.max_set_size}"
            )
        if not 0.0 <= self.min_coverage_gain <= 1.0:
            raise ValidationError(
                "min_coverage_gain must be in [0, 1], "
                f"got {self.min_coverage_gain}"
            )

    def weight_sum(self) -> float:
        """Sum of the four criterion weights (the normaliser)."""
        return (
            self.coverage_weight
            + self.acceptance_weight
            + self.detail_weight
            + self.specialization_weight
        )

    def to_dict(self) -> dict:
        """The config as a JSON-compatible dict (the report wire shape)."""
        return {
            "coverage_weight": self.coverage_weight,
            "acceptance_weight": self.acceptance_weight,
            "detail_weight": self.detail_weight,
            "specialization_weight": self.specialization_weight,
            "synonym_factor": self.synonym_factor,
            "multiword_factor": self.multiword_factor,
            "max_set_size": self.max_set_size,
            "min_coverage_gain": self.min_coverage_gain,
        }
