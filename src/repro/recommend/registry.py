"""The ontology registry: snapshots loaded once, annotation-ready.

A recommendation request scores *many* ontologies against one input, so
per-ontology work that does not depend on the input — label extraction,
the :class:`~repro.recommend.trie.LabelTrie`, concept depths, detail
densities — is computed exactly once, at registration time.  The
registry is **built at startup and read-only afterwards** (no locking
needed): ``repro serve --ontology NAME=PATH`` registers before the
server accepts a request, and the CLI registers before it recommends.

Registration reuses the ontology I/O and snapshot machinery:
:meth:`OntologyRegistry.register_path` reads the JSON/OBO formats of
:mod:`repro.ontology.io`, and ``cutoff_year`` registers the ontology
*as of an earlier release* via
:func:`repro.ontology.snapshot.snapshot_before` — the Aber-OWL shape of
serving several repository versions side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.errors import ValidationError
from repro.ontology.io import ontology_from_obo, read_ontology_json
from repro.ontology.model import Ontology
from repro.ontology.snapshot import snapshot_before
from repro.recommend.trie import LabelTrie


@dataclass(frozen=True)
class LabelInfo:
    """What the annotator needs to know about one (normalised) label."""

    label: str
    n_tokens: int
    concept_ids: tuple[str, ...]  # sorted: the deterministic winner order
    preferred: bool  # preferred term of at least one of its concepts


@dataclass(frozen=True)
class ConceptInfo:
    """Input-independent per-concept scores, computed at registration."""

    depth: int
    detail: float  # synonym/relation/metadata density in [0, 1]


class RegisteredOntology:
    """One ontology plus its precomputed annotation structures."""

    def __init__(self, name: str, ontology: Ontology) -> None:
        self.name = name
        self.ontology = ontology
        self.labels: dict[str, LabelInfo] = {}
        preferred_norms = {
            concept.all_terms()[0] for concept in ontology
        }
        for label in ontology.terms():
            self.labels[label] = LabelInfo(
                label=label,
                n_tokens=len(label.split()),
                concept_ids=tuple(ontology.concepts_for_term(label)),
                preferred=label in preferred_norms,
            )
        self.trie = LabelTrie(self.labels)
        self.concepts: dict[str, ConceptInfo] = {
            concept.concept_id: ConceptInfo(
                depth=ontology.depth(concept.concept_id),
                detail=_detail_density(ontology, concept.concept_id),
            )
            for concept in ontology
        }
        self.max_depth = max(
            (info.depth for info in self.concepts.values()), default=0
        )

    @property
    def n_concepts(self) -> int:
        return len(self.ontology)

    @property
    def n_labels(self) -> int:
        return len(self.labels)


def _detail_density(ontology: Ontology, concept_id: str) -> float:
    """Synonym/relation/metadata density of one concept, in [0, 1].

    Three equal-weight components, each saturating (an ontology is not
    "more detailed" for piling 40 synonyms on one concept): synonyms
    (3 saturate), hierarchy relations (3 fathers+sons saturate), and
    structured metadata (tree numbers or a release year present).
    """
    concept = ontology.concept(concept_id)
    synonyms = min(1.0, len(concept.all_terms()[1:]) / 3.0)
    relations = min(
        1.0,
        (len(ontology.fathers(concept_id)) + len(ontology.sons(concept_id)))
        / 3.0,
    )
    metadata = 1.0 if concept.tree_numbers or concept.year_added else 0.0
    return (synonyms + relations + metadata) / 3.0


class OntologyRegistry:
    """Named :class:`RegisteredOntology` instances, built once, read-only.

    >>> from repro.ontology.model import Concept, Ontology
    >>> onto = Ontology("demo")
    >>> _ = onto.add_concept(Concept("C1", "eye diseases"))
    >>> registry = OntologyRegistry()
    >>> registry.register("demo", onto)
    >>> registry.names()
    ['demo']
    """

    def __init__(self) -> None:
        self._ontologies: dict[str, RegisteredOntology] = {}

    def register(
        self,
        name: str,
        ontology: Ontology,
        *,
        cutoff_year: int | None = None,
    ) -> RegisteredOntology:
        """Register ``ontology`` under ``name``.

        ``cutoff_year`` registers the snapshot *before* that release
        year instead (see
        :func:`repro.ontology.snapshot.snapshot_before`), so one loaded
        ontology can be served at several historical versions.
        """
        if not name:
            raise ValidationError("ontology name must be non-empty")
        if name in self._ontologies:
            raise ValidationError(f"ontology {name!r} already registered")
        if cutoff_year is not None:
            ontology = snapshot_before(ontology, cutoff_year)
        registered = RegisteredOntology(name, ontology)
        self._ontologies[name] = registered
        return registered

    def register_path(
        self, name: str, path: str | Path
    ) -> RegisteredOntology:
        """Load ``path`` (``.obo`` text, otherwise ontology JSON) and register."""
        path = Path(path)
        if not path.is_file():
            raise ValidationError(f"no ontology file at {path}")
        if path.suffix == ".obo":
            ontology = ontology_from_obo(path.read_text(), name=name)
        else:
            ontology = read_ontology_json(path)
        return self.register(name, ontology)

    def names(self) -> list[str]:
        """Registered names, sorted."""
        return sorted(self._ontologies)

    def get(self, name: str) -> RegisteredOntology:
        """The registration for ``name`` (raises ValidationError if absent)."""
        try:
            return self._ontologies[name]
        except KeyError:
            raise ValidationError(
                f"unknown ontology {name!r}; registered: {self.names()}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._ontologies

    def __len__(self) -> int:
        return len(self._ontologies)
