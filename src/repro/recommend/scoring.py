"""The four criterion scorers of the recommendation model.

The evaluation model follows NCBO Ontology Recommender 2.0: each
candidate ontology is scored against the input on four independent
criteria, each normalised to ``[0, 1]``:

=================  ====================================================
**coverage**       how much of the input the ontology annotates, with
                   multi-word and preferred-term matches weighted up
**acceptance**     how established the matched labels are — proxied by
                   their document frequencies in a reference corpus
                   index (the biomedical community's usage signal)
**detail**         synonym/relation/metadata density of the matched
                   concepts (how much an annotation gives back)
**specialization** how deep in the hierarchy the matched concepts sit
                   (a specialised ontology beats a broad one whose
                   matches are all near the root)
=================  ====================================================

Every scorer is a :class:`CriterionScorer` so deployments can reweight
(:class:`~repro.recommend.config.RecommendConfig`) or substitute
criteria without touching the engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.recommend.annotator import AnnotationResult, AnyCorpusIndex
from repro.recommend.config import RecommendConfig
from repro.recommend.registry import RegisteredOntology

#: Criterion names in report order.
CRITERIA = ("coverage", "acceptance", "detail", "specialization")


@dataclass(frozen=True)
class ScoringContext:
    """Input-level state shared by every scorer call of one request."""

    config: RecommendConfig
    acceptance_index: AnyCorpusIndex | None = None


class CriterionScorer:
    """One criterion: a name and a ``[0, 1]`` score per annotation."""

    name = "criterion"

    def score(
        self,
        annotation: AnnotationResult,
        registered: RegisteredOntology,
        context: ScoringContext,
    ) -> float:
        raise NotImplementedError


class CoverageScorer(CriterionScorer):
    """Weighted annotation mass over the input size, capped at 1.

    Each matched occurrence contributes its token span, multiplied by
    ``multiword_factor`` for multi-word labels (unlikely-accidental
    matches) and down-weighted by ``synonym_factor`` when the label is
    only a synonym — the Recommender 2.0 shape of "how much, and how
    confidently, does this ontology annotate the input".
    """

    name = "coverage"

    def score(
        self,
        annotation: AnnotationResult,
        registered: RegisteredOntology,
        context: ScoringContext,
    ) -> float:
        if not annotation.n_tokens:
            return 0.0
        config = context.config
        mass = 0.0
        for match in annotation.matches:
            weight = float(match.n_tokens)
            if match.n_tokens >= 2:
                weight *= config.multiword_factor
            if not match.preferred:
                weight *= config.synonym_factor
            mass += weight * match.occurrences
        return min(1.0, mass / annotation.n_tokens)


class AcceptanceScorer(CriterionScorer):
    """Mean document frequency of the matched labels in a reference index.

    A label that appears across many reference documents is an
    established term; one the reference corpus never uses is either
    novel or idiosyncratic.  Without a reference index the criterion
    scores 0 for every ontology (the report records the absent source,
    and the weight can be reassigned via the config).
    """

    name = "acceptance"

    def score(
        self,
        annotation: AnnotationResult,
        registered: RegisteredOntology,
        context: ScoringContext,
    ) -> float:
        index = context.acceptance_index
        if index is None or not annotation.matches:
            return 0.0
        n_documents = index.n_documents()
        if not n_documents:
            return 0.0
        total = sum(
            index.document_frequency(match.label)
            for match in annotation.matches
        )
        return total / (len(annotation.matches) * n_documents)


class DetailScorer(CriterionScorer):
    """Mean detail density of the distinct matched concepts.

    Per-concept densities (synonyms, hierarchy relations, structured
    metadata) are precomputed at registration
    (:func:`repro.recommend.registry._detail_density`).
    """

    name = "detail"

    def score(
        self,
        annotation: AnnotationResult,
        registered: RegisteredOntology,
        context: ScoringContext,
    ) -> float:
        concept_ids = annotation.concept_ids()
        if not concept_ids:
            return 0.0
        return sum(
            registered.concepts[cid].detail for cid in concept_ids
        ) / len(concept_ids)


class SpecializationScorer(CriterionScorer):
    """Mean normalised hierarchy depth of the distinct matched concepts.

    Depth is normalised by the ontology's own maximum depth, so a flat
    two-level vocabulary cannot out-specialise a deep one by matching
    its deepest (still shallow) nodes.
    """

    name = "specialization"

    def score(
        self,
        annotation: AnnotationResult,
        registered: RegisteredOntology,
        context: ScoringContext,
    ) -> float:
        concept_ids = annotation.concept_ids()
        if not concept_ids or not registered.max_depth:
            return 0.0
        return sum(
            registered.concepts[cid].depth for cid in concept_ids
        ) / (len(concept_ids) * registered.max_depth)


def default_scorers() -> tuple[CriterionScorer, ...]:
    """The four Recommender 2.0 criteria, in report order."""
    return (
        CoverageScorer(),
        AcceptanceScorer(),
        DetailScorer(),
        SpecializationScorer(),
    )


def aggregate_score(scores: dict[str, float], config: RecommendConfig) -> float:
    """The weighted criterion combination, normalised by the weight sum."""
    weighted = (
        config.coverage_weight * scores.get("coverage", 0.0)
        + config.acceptance_weight * scores.get("acceptance", 0.0)
        + config.detail_weight * scores.get("detail", 0.0)
        + config.specialization_weight * scores.get("specialization", 0.0)
    )
    return weighted / config.weight_sum()
