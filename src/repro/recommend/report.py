"""The recommendation report: ranking + ontology set, one wire shape.

:meth:`RecommendationReport.to_dict` is **the** serialisation: the
``repro recommend --format json`` output and the ``POST /recommend``
response body are both exactly
``json.dumps(report.to_dict(), sort_keys=True)`` — byte-identical for
the same input, which the service tests assert.  Scores are rounded to
six decimals at the boundary so the document is stable across float
summation orders.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.recommend.config import RecommendConfig
from repro.recommend.scoring import CRITERIA
from repro.utils.tables import format_table

#: Decimal places of every score in the wire document.
SCORE_DECIMALS = 6


def _round(value: float) -> float:
    return round(value, SCORE_DECIMALS)


@dataclass(frozen=True)
class OntologyScore:
    """One ontology's evaluation against the input."""

    name: str
    scores: dict[str, float]  # per criterion, [0, 1]
    aggregate: float
    n_matches: int  # matched label occurrences
    n_labels_matched: int  # distinct matched labels
    n_concepts_matched: int  # distinct matched concepts
    covered_fraction: float  # input tokens inside >= 1 match

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "scores": {
                criterion: _round(self.scores.get(criterion, 0.0))
                for criterion in CRITERIA
            },
            "aggregate": _round(self.aggregate),
            "n_matches": self.n_matches,
            "n_labels_matched": self.n_labels_matched,
            "n_concepts_matched": self.n_concepts_matched,
            "covered_fraction": _round(self.covered_fraction),
        }


@dataclass(frozen=True)
class SetStep:
    """One greedy admission into the recommended ontology set."""

    name: str
    coverage_gain: float  # covered-fraction growth this member added
    set_coverage: float  # union covered fraction after admission

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "coverage_gain": _round(self.coverage_gain),
            "set_coverage": _round(self.set_coverage),
        }


@dataclass(frozen=True)
class SetRecommendation:
    """The greedy ontology-set result (may be empty: nothing matched)."""

    members: tuple[str, ...]
    coverage: float  # union covered fraction of the members
    aggregate: float  # combined weighted score of the set
    steps: tuple[SetStep, ...]

    def to_dict(self) -> dict:
        return {
            "members": list(self.members),
            "coverage": _round(self.coverage),
            "aggregate": _round(self.aggregate),
            "steps": [step.to_dict() for step in self.steps],
        }


@dataclass(frozen=True)
class RecommendationReport:
    """Ranked single-ontology scores plus the set recommendation."""

    input_kind: str  # "text" | "corpus"
    n_tokens: int
    config: RecommendConfig
    ranking: tuple[OntologyScore, ...]  # sorted: best first
    ontology_set: SetRecommendation
    acceptance_source: str | None  # corpus name / "input" / None

    def to_dict(self) -> dict:
        """The wire document (CLI ``--format json`` == ``POST /recommend``)."""
        return {
            "input": {
                "kind": self.input_kind,
                "n_tokens": self.n_tokens,
                "acceptance_source": self.acceptance_source,
            },
            "config": self.config.to_dict(),
            "ranking": [score.to_dict() for score in self.ranking],
            "set": self.ontology_set.to_dict(),
        }

    def to_table(self) -> str:
        """Human-readable rendering (CLI ``--format text``)."""
        rows = [
            [
                rank + 1,
                score.name,
                *(f"{score.scores.get(c, 0.0):.3f}" for c in CRITERIA),
                f"{score.aggregate:.3f}",
                score.n_matches,
                score.n_concepts_matched,
            ]
            for rank, score in enumerate(self.ranking)
        ]
        ranking = format_table(
            ["#", "ontology", *CRITERIA, "score", "matches", "concepts"],
            rows,
            title=(
                f"Ontology recommendation over {self.n_tokens} "
                f"{self.input_kind} tokens"
            ),
        )
        if not self.ontology_set.members:
            return ranking + "\n\nRecommended set: (no ontology matched)"
        steps = format_table(
            ["step", "ontology", "coverage gain", "set coverage"],
            [
                [
                    position + 1,
                    step.name,
                    f"{step.coverage_gain:.3f}",
                    f"{step.set_coverage:.3f}",
                ]
                for position, step in enumerate(self.ontology_set.steps)
            ],
            title=(
                f"Recommended set ({', '.join(self.ontology_set.members)}) "
                f"— coverage {self.ontology_set.coverage:.3f}, "
                f"score {self.ontology_set.aggregate:.3f}"
            ),
        )
        return ranking + "\n\n" + steps
