"""The annotator: match input text or an indexed corpus to one ontology.

Two input shapes, one output shape:

* **Text** — a token sequence walked once through the registration's
  :class:`~repro.recommend.trie.LabelTrie` (O(tokens x longest label),
  independent of the ontology's label count).
* **Corpus** — a :class:`~repro.corpus.index.CorpusIndex` (monolithic,
  sharded, or mmap) queried per label through its postings
  (:meth:`~repro.corpus.index.CorpusIndex.phrase_occurrences`), so
  annotating a registered corpus never re-scans documents.

Both produce an :class:`AnnotationResult` with identical semantics: at
any single start position the longest matching label wins, overlapping
matches from different starts all count, and the covered-position set
is exact (not an occurrence-count approximation), so set-recommendation
coverage unions are honest about overlap between ontologies.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.corpus.index import CorpusIndex, ShardedCorpusIndex
from repro.recommend.registry import RegisteredOntology
from repro.text.tokenizer import tokenize_lower

#: The index shapes the corpus path accepts (anything with the
#: CorpusIndex query surface works; these are the shipped ones).
AnyCorpusIndex = CorpusIndex | ShardedCorpusIndex


@dataclass(frozen=True)
class LabelMatch:
    """One matched label, aggregated over its occurrences."""

    label: str
    n_tokens: int
    occurrences: int
    preferred: bool
    concept_ids: tuple[str, ...]


@dataclass(frozen=True)
class AnnotationResult:
    """Everything the criterion scorers need about one (ontology, input).

    ``covered`` holds exact ``(document ordinal, token position)``
    pairs (ordinal 0 for plain text), so coverage — including the union
    coverage of ontology sets — is computed on positions, never on
    occurrence counts that double-count overlaps.
    """

    ontology: str
    n_tokens: int
    matches: tuple[LabelMatch, ...]
    covered: frozenset[tuple[int, int]]

    @property
    def n_matches(self) -> int:
        """Total matched occurrences across labels."""
        return sum(match.occurrences for match in self.matches)

    def concept_ids(self) -> tuple[str, ...]:
        """Distinct matched concept ids, sorted (deterministic)."""
        out: set[str] = set()
        for match in self.matches:
            out.update(match.concept_ids)
        return tuple(sorted(out))

    def covered_fraction(self) -> float:
        """Fraction of input tokens inside at least one match."""
        if not self.n_tokens:
            return 0.0
        return len(self.covered) / self.n_tokens


class Annotator:
    """Annotate inputs against one :class:`RegisteredOntology`."""

    def __init__(self, registered: RegisteredOntology) -> None:
        self.registered = registered

    def annotate_text(self, text: str) -> AnnotationResult:
        """Annotate raw text (tokenised with the project tokenizer)."""
        return self.annotate_tokens(tokenize_lower(text))

    def annotate_tokens(self, tokens: Sequence[str]) -> AnnotationResult:
        """Annotate an already-tokenised (lower-cased) token sequence."""
        found = self.registered.trie.longest_matches(tokens)
        occurrences: dict[str, list[tuple[int, int]]] = {}
        for start, _span, label in found:
            occurrences.setdefault(label, []).append((0, start))
        return self._result(len(tokens), occurrences)

    def annotate_index(self, index: AnyCorpusIndex) -> AnnotationResult:
        """Annotate an indexed corpus through its postings.

        Queries the index once per registered label; at each start
        position the longest matching label wins, matching the trie
        path's semantics exactly.
        """
        best: dict[tuple[int, int], tuple[int, str]] = {}
        for label, info in self.registered.labels.items():
            for occurrence in index.phrase_occurrences(label):
                incumbent = best.get(occurrence)
                if incumbent is None or info.n_tokens > incumbent[0]:
                    best[occurrence] = (info.n_tokens, label)
        occurrences: dict[str, list[tuple[int, int]]] = {}
        for (ordinal, start), (_, label) in sorted(best.items()):
            occurrences.setdefault(label, []).append((ordinal, start))
        return self._result(index.n_tokens(), occurrences)

    def _result(
        self,
        n_tokens: int,
        occurrences: dict[str, list[tuple[int, int]]],
    ) -> AnnotationResult:
        labels = self.registered.labels
        matches = tuple(
            LabelMatch(
                label=label,
                n_tokens=labels[label].n_tokens,
                occurrences=len(starts),
                preferred=labels[label].preferred,
                concept_ids=labels[label].concept_ids,
            )
            for label, starts in sorted(occurrences.items())
        )
        covered = frozenset(
            (ordinal, start + offset)
            for label, starts in occurrences.items()
            for ordinal, start in starts
            for offset in range(labels[label].n_tokens)
        )
        return AnnotationResult(
            ontology=self.registered.name,
            n_tokens=n_tokens,
            matches=matches,
            covered=covered,
        )
