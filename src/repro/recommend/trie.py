"""Token-level label trie: one pass over the input, every label found.

Annotating text against an ontology asks "which of these ~thousands of
labels start at token *i*?".  The naive answer — scan the input once per
label — is O(tokens x labels) and is exactly what made early annotators
unusable on large ontologies.  :class:`LabelTrie` stores every label as
a path of tokens, so one left-to-right walk answers all starts in
O(tokens x max_label_length), independent of the label count.

:func:`naive_longest_matches` is the per-label scan kept as the
benchmark baseline (``benchmarks/bench_recommend.py`` asserts the trie
is >= 5x faster) and as the parity oracle in tests; production code
never calls it.

Both matchers implement the same deterministic semantics: at every
start position the **longest** matching label wins (ties are impossible
— equal-length matches at one start are the same token sequence), and
overlapping matches from different starts are all reported.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

#: Trie-node key holding the terminal label (tokens never collide with
#: it: they are non-empty strings produced by ``str.split``).
_TERMINAL = ""


class LabelTrie:
    """A trie over tokenised labels with longest-match-per-start lookup.

    >>> trie = LabelTrie(["heart attack", "heart", "attack rate"])
    >>> trie.longest_matches("a heart attack rate".split())
    [(1, 2, 'heart attack'), (2, 2, 'attack rate')]
    """

    def __init__(self, labels: Iterable[str] = ()) -> None:
        self._root: dict = {}
        self._n_labels = 0
        self._max_depth = 0
        for label in labels:
            self.add(label)

    def __len__(self) -> int:
        return self._n_labels

    @property
    def max_depth(self) -> int:
        """Longest label in tokens (the per-start walk bound)."""
        return self._max_depth

    def add(self, label: str) -> None:
        """Insert ``label`` (tokenised by whitespace, already normalised)."""
        tokens = label.split()
        if not tokens:
            return
        node = self._root
        for token in tokens:
            node = node.setdefault(token, {})
        if _TERMINAL not in node:
            node[_TERMINAL] = label
            self._n_labels += 1
            self._max_depth = max(self._max_depth, len(tokens))

    def longest_matches(
        self, tokens: Sequence[str]
    ) -> list[tuple[int, int, str]]:
        """``(start, n_tokens, label)`` of the longest label at each start.

        Starts with no matching label are absent; matches from
        different starts may overlap.  Results are sorted by start.
        """
        root = self._root
        n = len(tokens)
        out: list[tuple[int, int, str]] = []
        for start in range(n):
            node = root
            best: str | None = None
            best_len = 0
            position = start
            while position < n:
                node = node.get(tokens[position])
                if node is None:
                    break
                position += 1
                label = node.get(_TERMINAL)
                if label is not None:
                    best, best_len = label, position - start
            if best is not None:
                out.append((start, best_len, best))
        return out


def naive_longest_matches(
    labels: Iterable[str], tokens: Sequence[str]
) -> list[tuple[int, int, str]]:
    """The O(tokens x labels) baseline with :class:`LabelTrie` semantics.

    Scans the input once per label, then keeps the longest match at each
    start — byte-identical output to
    :meth:`LabelTrie.longest_matches`, at per-label-scan cost.
    """
    best: dict[int, tuple[int, str]] = {}
    n = len(tokens)
    for label in labels:
        needle = label.split()
        span = len(needle)
        if not span or span > n:
            continue
        for start in range(n - span + 1):
            if list(tokens[start : start + span]) == needle:
                incumbent = best.get(start)
                if incumbent is None or span > incumbent[0]:
                    best[start] = (span, label)
    return [
        (start, span, label)
        for start, (span, label) in sorted(best.items())
    ]
