"""The recommendation engine: annotate, score, rank, build the set.

:class:`Recommender` ties the registry, annotator, and criterion
scorers together.  Everything is deterministic: ranking sorts by
``(-aggregate, name)``, the greedy set admission breaks ties the same
way, and the report rounds at the wire boundary — so the CLI and the
service produce byte-identical documents for the same input.

The **set recommendation** answers Recommender 2.0's second question:
"no single ontology covers my input — which small set does?".  Greedy
max-marginal-coverage over the exact covered-position sets, pruned by
``min_coverage_gain`` (a member must grow coverage meaningfully, never
just ride along) and capped at ``max_set_size``.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ValidationError
from repro.recommend.annotator import AnnotationResult, Annotator, AnyCorpusIndex
from repro.recommend.config import RecommendConfig
from repro.recommend.registry import OntologyRegistry
from repro.recommend.report import (
    OntologyScore,
    RecommendationReport,
    SetRecommendation,
    SetStep,
)
from repro.recommend.scoring import (
    CriterionScorer,
    ScoringContext,
    aggregate_score,
    default_scorers,
)


class Recommender:
    """Score registered ontologies against text or an indexed corpus.

    Parameters
    ----------
    registry:
        The :class:`~repro.recommend.registry.OntologyRegistry` holding
        the candidate ontologies.
    config:
        Criterion weights and set knobs
        (:class:`~repro.recommend.config.RecommendConfig`).
    scorers:
        The criteria; defaults to the four Recommender 2.0 scorers.
    """

    def __init__(
        self,
        registry: OntologyRegistry,
        config: RecommendConfig | None = None,
        *,
        scorers: Sequence[CriterionScorer] | None = None,
    ) -> None:
        self.registry = registry
        self.config = config if config is not None else RecommendConfig()
        self.scorers = (
            tuple(scorers) if scorers is not None else default_scorers()
        )

    # -- entry points ------------------------------------------------------

    def recommend_text(
        self,
        text: str,
        *,
        ontologies: Sequence[str] | None = None,
        acceptance_index: AnyCorpusIndex | None = None,
        acceptance_source: str | None = None,
    ) -> RecommendationReport:
        """Rank ontologies against raw text.

        ``acceptance_index`` (optional) supplies the acceptance
        criterion's reference document frequencies; without it the
        criterion scores 0 and the report records the absent source.
        """
        names = self._names(ontologies)
        annotations = {
            name: Annotator(self.registry.get(name)).annotate_text(text)
            for name in names
        }
        n_tokens = next(iter(annotations.values())).n_tokens if names else 0
        return self._report(
            annotations,
            input_kind="text",
            n_tokens=n_tokens,
            acceptance_index=acceptance_index,
            acceptance_source=(
                acceptance_source
                if acceptance_index is not None
                else None
            ),
        )

    def recommend_index(
        self,
        index: AnyCorpusIndex,
        *,
        ontologies: Sequence[str] | None = None,
        acceptance_index: AnyCorpusIndex | None = None,
        acceptance_source: str | None = "input",
    ) -> RecommendationReport:
        """Rank ontologies against an indexed corpus.

        The corpus doubles as the acceptance reference unless a
        separate ``acceptance_index`` is given.
        """
        names = self._names(ontologies)
        annotations = {
            name: Annotator(self.registry.get(name)).annotate_index(index)
            for name in names
        }
        return self._report(
            annotations,
            input_kind="corpus",
            n_tokens=index.n_tokens(),
            acceptance_index=(
                acceptance_index if acceptance_index is not None else index
            ),
            acceptance_source=acceptance_source,
        )

    # -- internals ---------------------------------------------------------

    def _names(self, ontologies: Sequence[str] | None) -> list[str]:
        if ontologies is None:
            names = self.registry.names()
        else:
            names = list(dict.fromkeys(ontologies))  # dedupe, keep order
            for name in names:
                self.registry.get(name)  # raises on unknown
        if not names:
            raise ValidationError("no ontologies registered to recommend")
        return sorted(names)

    def _report(
        self,
        annotations: dict[str, AnnotationResult],
        *,
        input_kind: str,
        n_tokens: int,
        acceptance_index: AnyCorpusIndex | None,
        acceptance_source: str | None,
    ) -> RecommendationReport:
        context = ScoringContext(
            config=self.config, acceptance_index=acceptance_index
        )
        scored: list[OntologyScore] = []
        for name, annotation in annotations.items():
            registered = self.registry.get(name)
            scores = {
                scorer.name: scorer.score(annotation, registered, context)
                for scorer in self.scorers
            }
            scored.append(
                OntologyScore(
                    name=name,
                    scores=scores,
                    aggregate=aggregate_score(scores, self.config),
                    n_matches=annotation.n_matches,
                    n_labels_matched=len(annotation.matches),
                    n_concepts_matched=len(annotation.concept_ids()),
                    covered_fraction=annotation.covered_fraction(),
                )
            )
        scored.sort(key=lambda score: (-score.aggregate, score.name))
        return RecommendationReport(
            input_kind=input_kind,
            n_tokens=n_tokens,
            config=self.config,
            ranking=tuple(scored),
            ontology_set=self._recommend_set(scored, annotations, n_tokens),
            acceptance_source=acceptance_source,
        )

    def _recommend_set(
        self,
        ranking: list[OntologyScore],
        annotations: dict[str, AnnotationResult],
        n_tokens: int,
    ) -> SetRecommendation:
        """Greedy max-marginal-coverage set, pruned by min_coverage_gain.

        The first member is admitted on any positive coverage (a
        recommendation must exist whenever anything matched); every
        later member must add at least ``min_coverage_gain`` of newly
        covered input — this is what keeps near-duplicate ontologies
        from padding the set.
        """
        config = self.config
        aggregate_by_name = {score.name: score for score in ranking}
        remaining = [score.name for score in ranking]
        covered: set[tuple[int, int]] = set()
        steps: list[SetStep] = []
        while remaining and len(steps) < config.max_set_size and n_tokens:
            best_name: str | None = None
            best_gain = -1
            # `remaining` is ranking-ordered, so on tied gains the
            # higher-aggregate (then lexicographically first) name wins.
            for name in remaining:
                gain = len(annotations[name].covered - covered)
                if gain > best_gain:
                    best_name, best_gain = name, gain
            assert best_name is not None
            gain_fraction = best_gain / n_tokens
            if steps:
                if gain_fraction < config.min_coverage_gain:
                    break
            elif best_gain <= 0:
                break
            covered |= annotations[best_name].covered
            steps.append(
                SetStep(
                    name=best_name,
                    coverage_gain=gain_fraction,
                    set_coverage=len(covered) / n_tokens,
                )
            )
            remaining.remove(best_name)
        members = tuple(step.name for step in steps)
        return SetRecommendation(
            members=members,
            coverage=len(covered) / n_tokens if n_tokens else 0.0,
            aggregate=self._set_aggregate(members, aggregate_by_name, covered, n_tokens),
            steps=tuple(steps),
        )

    def _set_aggregate(
        self,
        members: tuple[str, ...],
        scores: dict[str, OntologyScore],
        covered: set[tuple[int, int]],
        n_tokens: int,
    ) -> float:
        """Combined set score: union coverage + coverage-weighted criteria.

        The set's coverage criterion is the *union* covered fraction;
        acceptance/detail/specialization are the members' scores
        weighted by how much each member individually covers (a member
        admitted for a sliver of coverage should barely perturb them).
        """
        if not members or not n_tokens:
            return 0.0
        weights = {
            name: max(scores[name].covered_fraction, 1e-9)
            for name in members
        }
        total = sum(weights.values())
        combined = {
            criterion: sum(
                scores[name].scores.get(criterion, 0.0) * weights[name]
                for name in members
            )
            / total
            for criterion in ("acceptance", "detail", "specialization")
        }
        combined["coverage"] = min(1.0, len(covered) / n_tokens)
        return aggregate_score(combined, self.config)
