"""Ontology recommendation: rank ontologies against text or a corpus.

The `repro.recommend` package implements the NCBO Ontology Recommender
2.0 evaluation model on top of the repo's existing ontology and corpus
machinery: a registry of annotation-ready ontology snapshots, a
trie-based annotator (with a postings-backed path for indexed corpora),
four weighted criterion scorers, and a deterministic report that is the
single wire shape shared by the CLI and the service.
"""

from repro.recommend.annotator import (
    AnnotationResult,
    Annotator,
    AnyCorpusIndex,
    LabelMatch,
)
from repro.recommend.config import RecommendConfig
from repro.recommend.engine import Recommender
from repro.recommend.registry import OntologyRegistry, RegisteredOntology
from repro.recommend.report import (
    OntologyScore,
    RecommendationReport,
    SetRecommendation,
    SetStep,
)
from repro.recommend.scoring import (
    CRITERIA,
    AcceptanceScorer,
    CoverageScorer,
    CriterionScorer,
    DetailScorer,
    ScoringContext,
    SpecializationScorer,
    aggregate_score,
    default_scorers,
)
from repro.recommend.trie import LabelTrie, naive_longest_matches

__all__ = [
    "CRITERIA",
    "AcceptanceScorer",
    "AnnotationResult",
    "Annotator",
    "AnyCorpusIndex",
    "CoverageScorer",
    "CriterionScorer",
    "DetailScorer",
    "LabelMatch",
    "LabelTrie",
    "OntologyRegistry",
    "OntologyScore",
    "RecommendConfig",
    "RecommendationReport",
    "Recommender",
    "RegisteredOntology",
    "ScoringContext",
    "SetRecommendation",
    "SetStep",
    "SpecializationScorer",
    "aggregate_score",
    "default_scorers",
    "naive_longest_matches",
]
