"""Step III — term sense induction.

Two tasks, as in the paper:

(a) **Number of senses prediction** — for terms flagged polysemic, sweep
    k ∈ {2..5} (the bound justified by Table 1), cluster the term's
    contexts at each k, score each solution with an internal index
    (Table 2), and pick the arg-optimum
    (:class:`~repro.senses.predictor.SenseCountPredictor`).

(b) **Clustering for concept induction** — cluster the contexts with the
    predicted k (k = 1 for monosemous terms) and represent each induced
    concept by its most important features
    (:class:`~repro.senses.induction.SenseInducer`).

The corpus is represented "of two different manners": bag-of-words and
graph (:mod:`repro.senses.representation`).
"""

from repro.senses.induction import InducedSense, SenseInducer, SenseInductionResult
from repro.senses.predictor import KPrediction, SenseCountPredictor
from repro.senses.representation import (
    REPRESENTATION_NAMES,
    bow_representation,
    graph_representation,
    represent_contexts,
)

__all__ = [
    "InducedSense",
    "KPrediction",
    "REPRESENTATION_NAMES",
    "SenseCountPredictor",
    "SenseInducer",
    "SenseInductionResult",
    "bow_representation",
    "graph_representation",
    "represent_contexts",
]
