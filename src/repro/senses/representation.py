"""Context representations for sense induction.

The paper represents the corpus "of two different manners: (i)
bag-of-words representation, and (ii) graph representation".

* **bag-of-words** — TF-IDF rows over the context vocabulary (IDF damps
  the background words that would otherwise dominate cosine);
* **graph** — the same rows smoothed by one diffusion step over the
  word co-occurrence graph of the contexts: a context also receives mass
  on words its words co-occur with.  Second-order smoothing connects
  contexts that share no literal word but live in the same topical
  neighbourhood — the property graph-based WSD methods exploit.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ValidationError
from repro.text.vectorize import TfidfVectorizer

#: The two representations of the paper's §2(III).
REPRESENTATION_NAMES = ("bow", "graph")


def bow_representation(contexts: Sequence[Sequence[str]]) -> np.ndarray:
    """TF-IDF bag-of-words matrix, one unit-norm row per context."""
    if not contexts:
        raise ValidationError("need at least one context to represent")
    vectorizer = TfidfVectorizer(stop_language=None)
    return vectorizer.fit_transform([list(c) for c in contexts]).toarray()


def graph_representation(
    contexts: Sequence[Sequence[str]],
    *,
    diffusion: float = 0.5,
    window: int = 4,
) -> np.ndarray:
    """Graph-smoothed context matrix.

    Builds the word co-occurrence graph of the contexts (sliding
    ``window``), row-normalises its adjacency ``A``, and returns
    ``X + diffusion · X A`` re-normalised — i.e. each context spreads
    ``diffusion`` of its mass one hop along co-occurrence edges.

    Parameters
    ----------
    diffusion:
        Strength of the one-step smoothing (0 reduces to bag-of-words).
    window:
        Co-occurrence window inside a context.
    """
    if not 0.0 <= diffusion <= 1.0:
        raise ValidationError(f"diffusion must be in [0, 1], got {diffusion}")
    base = bow_representation(contexts)

    # Vocabulary aligned with the TF-IDF columns.
    vectorizer = TfidfVectorizer(stop_language=None)
    vectorizer.fit([list(c) for c in contexts])
    vocab = {w: i for i, w in enumerate(vectorizer.feature_names())}
    n_words = len(vocab)
    adjacency = np.zeros((n_words, n_words))
    for context in contexts:
        tokens = [t.lower() for t in context]
        n = len(tokens)
        for i, left in enumerate(tokens):
            li = vocab.get(left)
            if li is None:
                continue
            for j in range(i + 1, min(i + window, n)):
                ri = vocab.get(tokens[j])
                if ri is None or ri == li:
                    continue
                adjacency[li, ri] += 1.0
                adjacency[ri, li] += 1.0
    row_sums = adjacency.sum(axis=1, keepdims=True)
    row_sums[row_sums == 0.0] = 1.0
    adjacency /= row_sums

    smoothed = base + diffusion * (base @ adjacency)
    norms = np.linalg.norm(smoothed, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return smoothed / norms


def represent_contexts(
    contexts: Sequence[Sequence[str]],
    representation: str = "bow",
    **kwargs,
) -> np.ndarray:
    """Dispatch to :func:`bow_representation` / :func:`graph_representation`."""
    if representation == "bow":
        return bow_representation(contexts)
    if representation == "graph":
        return graph_representation(contexts, **kwargs)
    raise ValidationError(
        f"unknown representation {representation!r}; "
        f"options: {', '.join(REPRESENTATION_NAMES)}"
    )
