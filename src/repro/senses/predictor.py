"""Number-of-senses prediction (Step III, task a).

Sweep k over the candidate range (2..5 per the paper's UMLS argument),
cluster the term's contexts at each k with a CLUTO-style algorithm, score
every solution with an internal index from Table 2, and return the
arg-optimum of the index.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.clustering.algorithms import ALGORITHM_NAMES, cluster
from repro.clustering.indexes import INDEX_DIRECTIONS, compute_index, index_names
from repro.errors import ClusteringError, ValidationError
from repro.senses.representation import REPRESENTATION_NAMES, represent_contexts
from repro.utils.rng import ensure_rng, spawn_rng


@dataclass(frozen=True)
class KPrediction:
    """Outcome of a number-of-senses prediction.

    Attributes
    ----------
    k:
        The predicted number of senses.
    index_values:
        ``{k: index value}`` over the swept range.
    labels_by_k:
        Cluster labels of each swept solution (for reuse by induction).
    """

    k: int
    index_values: dict[int, float]
    labels_by_k: dict[int, np.ndarray]


class SenseCountPredictor:
    """Predict how many senses a term's contexts exhibit.

    Parameters
    ----------
    algorithm:
        One of the paper's five: ``rb``, ``rbr``, ``direct``, ``agglo``,
        ``graph``.
    index:
        Internal index to optimise (paper's ``ak``..``fk`` or a baseline;
        the paper's best is ``fk``).
    representation:
        ``"bow"`` or ``"graph"`` context representation.
    k_range:
        Candidate sense counts (paper: 2..5, from Table 1).
    seed:
        RNG seed shared across the sweep.
    """

    def __init__(
        self,
        *,
        algorithm: str = "rb",
        index: str = "fk",
        representation: str = "bow",
        k_range: Sequence[int] = (2, 3, 4, 5),
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if algorithm not in ALGORITHM_NAMES:
            raise ValidationError(
                f"unknown algorithm {algorithm!r}; options: {', '.join(ALGORITHM_NAMES)}"
            )
        if index not in index_names():
            raise ValidationError(
                f"unknown index {index!r}; options: {', '.join(index_names())}"
            )
        if representation not in REPRESENTATION_NAMES:
            raise ValidationError(
                f"unknown representation {representation!r}; "
                f"options: {', '.join(REPRESENTATION_NAMES)}"
            )
        k_range = tuple(int(k) for k in k_range)
        if not k_range or any(k < 2 for k in k_range):
            raise ValidationError("k_range must contain integers >= 2")
        self.algorithm = algorithm
        self.index = index
        self.representation = representation
        self.k_range = k_range
        self._seed = seed

    def predict_from_matrix(self, matrix: np.ndarray) -> KPrediction:
        """Predict k from an already-built context matrix."""
        n = matrix.shape[0]
        feasible = [k for k in self.k_range if k <= n]
        if not feasible:
            raise ClusteringError(
                f"no feasible k in {self.k_range} for {n} contexts"
            )
        rng = ensure_rng(self._seed)
        child_rngs = spawn_rng(rng, len(feasible))
        values: dict[int, float] = {}
        labels: dict[int, np.ndarray] = {}
        for child, k in zip(child_rngs, feasible, strict=True):
            solution = cluster(matrix, k, method=self.algorithm, seed=child)
            values[k] = compute_index(
                self.index, matrix, solution.labels, stats=solution.stats
            )
            labels[k] = solution.labels
        direction = INDEX_DIRECTIONS[self.index]
        chooser = max if direction == "max" else min
        # Deterministic tie-break: smallest k wins on equal index values.
        best_k = chooser(sorted(values), key=lambda k: (values[k], -k) if direction == "max" else (values[k], k))
        return KPrediction(k=int(best_k), index_values=values, labels_by_k=labels)

    def predict(self, contexts: Sequence[Sequence[str]]) -> KPrediction:
        """Predict k from raw token contexts."""
        matrix = represent_contexts(contexts, self.representation)
        return self.predict_from_matrix(matrix)
