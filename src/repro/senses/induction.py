"""Concept induction (Step III, task b).

Cluster a term's contexts into k groups (k from
:class:`~repro.senses.predictor.SenseCountPredictor`, or 1 for terms the
Step II detector called monosemous), then represent each induced concept
by its most important features — the highest-mass words of the cluster
centroid, exactly the "for each cluster it selects the most important
features, which represent the induced concept" of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.clustering.algorithms import cluster
from repro.errors import ValidationError
from repro.senses.predictor import KPrediction, SenseCountPredictor
from repro.senses.representation import represent_contexts
from repro.text.vectorize import TfidfVectorizer


@dataclass(frozen=True)
class InducedSense:
    """One induced concept of a term.

    Attributes
    ----------
    sense_id:
        0-based sense index.
    top_features:
        The concept's defining words, most important first.
    context_indices:
        Indices (into the input contexts) assigned to this sense.
    """

    sense_id: int
    top_features: tuple[str, ...]
    context_indices: tuple[int, ...]

    @property
    def support(self) -> int:
        """Number of contexts backing this sense."""
        return len(self.context_indices)


@dataclass(frozen=True)
class SenseInductionResult:
    """All induced senses of one term plus the k-prediction evidence."""

    term: str
    k: int
    senses: tuple[InducedSense, ...]
    prediction: KPrediction | None


class SenseInducer:
    """Induce the sense(s) of candidate terms from their contexts.

    Parameters
    ----------
    predictor:
        The k-predictor used for polysemic terms (paper defaults: rb
        algorithm, f_k index, bag-of-words representation).
    algorithm / representation:
        Clustering setup for the final induction run (inherits the
        predictor's choices by default).
    n_top_features:
        Words kept to describe each induced concept.
    seed:
        RNG seed for the final clustering.
    """

    def __init__(
        self,
        predictor: SenseCountPredictor | None = None,
        *,
        n_top_features: int = 10,
        seed: int = 0,
    ) -> None:
        if n_top_features < 1:
            raise ValidationError(
                f"n_top_features must be >= 1, got {n_top_features}"
            )
        self.predictor = predictor if predictor is not None else SenseCountPredictor()
        self.n_top_features = n_top_features
        self._seed = seed

    def _top_features_per_cluster(
        self,
        contexts: Sequence[Sequence[str]],
        labels: np.ndarray,
        k: int,
    ) -> list[tuple[str, ...]]:
        vectorizer = TfidfVectorizer(stop_language=None)
        matrix = vectorizer.fit_transform([list(c) for c in contexts]).toarray()
        names = vectorizer.feature_names()
        out = []
        for sense in range(k):
            members = np.where(labels == sense)[0]
            if members.size == 0:
                out.append(())
                continue
            centroid = matrix[members].mean(axis=0)
            order = np.argsort(-centroid)
            top = tuple(
                names[int(i)] for i in order[: self.n_top_features]
                if centroid[int(i)] > 0
            )
            out.append(top)
        return out

    def induce(
        self,
        term: str,
        contexts: Sequence[Sequence[str]],
        *,
        polysemic: bool = True,
        k: int | None = None,
    ) -> SenseInductionResult:
        """Induce the concept(s) of ``term`` from its ``contexts``.

        Parameters
        ----------
        polysemic:
            The Step II verdict; monosemous terms get a single sense
            (k = 1) without running the predictor.
        k:
            Force a sense count, skipping prediction (used by ablations).
        """
        if not contexts:
            raise ValidationError(f"term {term!r} has no contexts to induce from")
        prediction: KPrediction | None = None
        if k is None:
            if not polysemic:
                k = 1
            else:
                prediction = self.predictor.predict(contexts)
                k = prediction.k
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        k = min(k, len(contexts))

        if k == 1:
            labels = np.zeros(len(contexts), dtype=np.int64)
        elif prediction is not None and k in prediction.labels_by_k:
            labels = prediction.labels_by_k[k]
        else:
            matrix = represent_contexts(contexts, self.predictor.representation)
            labels = cluster(
                matrix, k, method=self.predictor.algorithm, seed=self._seed
            ).labels

        features = self._top_features_per_cluster(contexts, labels, k)
        senses = tuple(
            InducedSense(
                sense_id=sense,
                top_features=features[sense],
                context_indices=tuple(
                    int(i) for i in np.where(labels == sense)[0]
                ),
            )
            for sense in range(k)
        )
        return SenseInductionResult(
            term=term, k=k, senses=senses, prediction=prediction
        )
