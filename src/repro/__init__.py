"""repro — reproduction of "A Way to Automatically Enrich Biomedical
Ontologies" (Lossio-Ventura, Jonquet, Roche, Teisseire — EDBT 2016).

The package implements the paper's four-step enrichment workflow and every
substrate it depends on:

* :mod:`repro.text` — tokenisation, POS tagging, vectorisation, graphs;
* :mod:`repro.corpus` — synthetic PubMed and MSH-WSD corpora;
* :mod:`repro.ontology` — MeSH/UMLS-like ontologies and their statistics;
* :mod:`repro.extraction` — Step I, BioTex-style term extraction;
* :mod:`repro.ml` — classifiers for Step II;
* :mod:`repro.clustering` — CLUTO-like algorithms and the paper's indexes;
* :mod:`repro.polysemy` — Step II, polysemy detection (23 features);
* :mod:`repro.senses` — Step III, sense-number prediction and induction;
* :mod:`repro.linkage` — Step IV, semantic linkage into the ontology;
* :mod:`repro.workflow` — the assembled :class:`~repro.workflow.OntologyEnricher`;
* :mod:`repro.eval` — the paper's reported numbers and experiment runners.

Quickstart::

    from repro.workflow import EnrichmentConfig, OntologyEnricher
    from repro.scenarios import make_enrichment_scenario

    scenario = make_enrichment_scenario(seed=7)
    enricher = OntologyEnricher(scenario.ontology, config=EnrichmentConfig())
    report = enricher.enrich(scenario.corpus)
    for term_report in report.terms[:5]:
        print(term_report.term, term_report.propositions[:3])
"""

from repro.errors import (
    ClusteringError,
    ConvergenceWarning,
    CorpusError,
    ExtractionError,
    LinkageError,
    NotFittedError,
    OntologyError,
    ReproError,
    ValidationError,
)

__version__ = "1.0.0"

__all__ = [
    "ClusteringError",
    "ConvergenceWarning",
    "CorpusError",
    "EnrichmentConfig",
    "ExtractionError",
    "LinkageError",
    "NotFittedError",
    "OntologyEnricher",
    "OntologyError",
    "ReproError",
    "SemanticLinker",
    "ValidationError",
    "__version__",
    "make_corneal_scenario",
    "make_enrichment_scenario",
]


def __getattr__(name):
    """Lazy top-level re-exports so ``import repro`` stays light."""
    if name in ("OntologyEnricher", "EnrichmentConfig"):
        from repro import workflow

        return getattr(workflow, name)
    if name == "SemanticLinker":
        from repro.linkage import SemanticLinker

        return SemanticLinker
    if name in ("make_enrichment_scenario", "make_corneal_scenario"):
        from repro import scenarios

        return getattr(scenarios, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
