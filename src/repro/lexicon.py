"""Biomedical word and term minting.

Both synthetic substrates — the MeSH/UMLS-like ontologies and the
PubMed-like corpus — need large inventories of plausible biomedical words
with known part of speech.  :class:`BioLexicon` mints them by composing
Greek/Latin medical morphemes (the way real biomedical terminology is
built: "kerat" + "itis" → "keratitis"), guaranteeing uniqueness and
recording gold POS tags for the tagger.

A small hand-written core of *real* words (cornea, injury, wound, ...) is
included so the paper's running example ("corneal injuries", Table 3) can
be expressed with its true MeSH names.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import ensure_rng

# Medical roots (combining forms).  Composition with the suffix banks below
# yields tens of thousands of distinct well-formed words.
_ROOTS = (
    "cardi", "derm", "gastr", "hepat", "nephr", "neur", "oste", "pulmon",
    "corne", "ocul", "retin", "kerat", "vascul", "hemat", "onc", "cyt",
    "path", "arthr", "enter", "col", "bronch", "thorac", "crani", "myel",
    "angi", "aden", "chondr", "fibr", "gloss", "hist", "lact", "lymph",
    "mening", "muc", "necr", "odont", "ophthalm", "ot", "phleb", "pneum",
    "proct", "rhin", "scler", "splen", "stomat", "thromb", "tox", "trache",
    "ur", "ventricul", "cerebr", "cervic", "cholecyst", "cost", "cutane",
    "dactyl", "encephal", "gingiv", "gluc", "glyc", "hyster", "irid",
    "laryng", "mamm", "mast", "metr", "morph", "myc", "myos", "nas",
    "orchi", "oss", "palat", "pancreat", "pericardi", "periton", "phalang",
    "pharyng", "pleur", "pod", "rect", "ren", "salping", "sarc", "sept",
    "sinus", "spondyl", "stern", "tars", "tend", "thyr", "tympan", "vesic",
)

_PREFIXES = (
    "", "", "", "hyper", "hypo", "peri", "endo", "epi", "intra", "inter",
    "sub", "supra", "trans", "para", "poly", "micro", "macro", "neo",
    "pseudo", "anti", "dys", "a", "bi", "hemi", "pan", "re", "de",
)

_NOUN_SUFFIXES = (
    "itis", "osis", "oma", "opathy", "ectomy", "ostomy", "otomy", "ography",
    "oscopy", "emia", "ology", "ocyte", "in", "ase", "ol", "ide", "ine",
    "ogen", "oblast", "algia", "iasis", "ism", "ation", "ment", "ance",
    "ia", "ity", "plasty", "plasia", "trophy", "genesis", "lysis",
)

_ADJ_SUFFIXES = ("al", "ic", "ar", "ous", "oid", "ary", "ative", "able", "ile")

_VERB_SUFFIXES = ("ize", "ate", "ify")

# Real-word core: keeps generated text anchored to the paper's examples.
_CORE_NOUNS = (
    "cornea", "injury", "wound", "trauma", "damage", "burn", "ulcer",
    "membrane", "epithelium", "healing", "disease", "infection", "lesion",
    "surgery", "treatment", "therapy", "patient", "tissue", "cell", "gene",
    "protein", "receptor", "tumor", "cancer", "syndrome", "disorder",
    "diagnosis", "prognosis", "symptom", "inflammation", "eye", "retina",
    "lens", "vision", "blindness", "transplantation", "graft", "suture",
    "abrasion", "erosion", "scar", "stroma", "laceration", "perforation",
)

_CORE_ADJECTIVES = (
    "corneal", "ocular", "retinal", "chemical", "acute", "chronic",
    "clinical", "surgical", "epithelial", "amniotic", "traumatic", "severe",
    "superficial", "deep", "bilateral", "therapeutic", "topical", "visual",
    "infectious", "inflammatory", "vascular", "cellular", "molecular",
)

_CORE_VERBS = (
    "treat", "heal", "induce", "inhibit", "activate", "regulate", "observe",
    "measure", "report", "describe", "evaluate", "assess", "compare",
    "improve", "reduce", "increase", "suggest", "demonstrate", "perform",
    "require", "associate", "indicate", "reveal", "examine", "confirm",
)

_CORE_ADVERBS = (
    "significantly", "rapidly", "frequently", "typically", "clinically",
    "substantially", "markedly", "previously", "consistently", "notably",
)

# General-academic filler nouns used by the sentence templates.
_FILLER_NOUNS = (
    "study", "results", "patients", "analysis", "group", "method", "data",
    "effect", "level", "rate", "outcome", "response", "model", "role",
    "function", "expression", "mechanism", "activity", "risk", "factor",
)


@dataclass
class MintedWord:
    """A generated word with its gold part of speech."""

    text: str
    tag: str


@dataclass
class BioLexicon:
    """Deterministic generator of unique biomedical words.

    Parameters
    ----------
    seed:
        Seed (or generator) controlling the minting order.

    Notes
    -----
    All minted and core words are recorded in :attr:`pos_lexicon`, a
    ``word → coarse tag`` mapping suitable for
    :class:`repro.text.postag.LexiconTagger`.
    """

    seed: int | np.random.Generator | None = None
    _rng: np.random.Generator = field(init=False, repr=False)
    _used: set[str] = field(init=False, repr=False)
    pos_lexicon: dict[str, str] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = ensure_rng(self.seed)
        self._used = set()
        self.pos_lexicon = {}
        for word in _CORE_NOUNS + _FILLER_NOUNS:
            self._register(word, "NOUN")
        for word in _CORE_ADJECTIVES:
            self._register(word, "ADJ")
        for word in _CORE_VERBS:
            self._register(word, "VERB")
        for word in _CORE_ADVERBS:
            self._register(word, "ADV")

    def _register(self, word: str, tag: str) -> None:
        self._used.add(word)
        self.pos_lexicon[word] = tag

    # -- word minting -----------------------------------------------------

    def _choice(self, options: tuple[str, ...]) -> str:
        return options[int(self._rng.integers(0, len(options)))]

    def _mint(self, suffixes: tuple[str, ...], tag: str) -> str:
        for _ in range(10_000):
            prefix = self._choice(_PREFIXES)
            root = self._choice(_ROOTS)
            suffix = self._choice(suffixes)
            # Avoid awkward vowel collisions at the joins.
            if root[-1] in "aeiou" and suffix and suffix[0] in "aeiou":
                root = root[:-1]
            word = f"{prefix}{root}{suffix}"
            if len(word) >= 4 and word not in self._used:
                self._register(word, tag)
                return word
        raise RuntimeError("exhausted morphological space; lower the demand")

    def new_noun(self) -> str:
        """Mint a fresh unique noun."""
        return self._mint(_NOUN_SUFFIXES, "NOUN")

    def new_adjective(self) -> str:
        """Mint a fresh unique adjective."""
        return self._mint(_ADJ_SUFFIXES, "ADJ")

    def new_verb(self) -> str:
        """Mint a fresh unique verb."""
        return self._mint(_VERB_SUFFIXES, "VERB")

    # -- term minting ---------------------------------------------------------

    def new_term(self, n_words: int | None = None) -> tuple[str, ...]:
        """Mint a multi-word biomedical term as a token tuple.

        Patterns follow the distribution of biomedical terminology:
        1-word (NOUN), 2-word (ADJ NOUN / NOUN NOUN), 3-word
        (ADJ NOUN NOUN or ADJ ADJ NOUN).
        """
        if n_words is None:
            n_words = int(self._rng.choice([1, 2, 2, 2, 3]))
        if n_words < 1:
            raise ValueError(f"n_words must be >= 1, got {n_words}")
        if n_words == 1:
            return (self.new_noun(),)
        if n_words == 2:
            if self._rng.random() < 0.7:
                return (self.new_adjective(), self.new_noun())
            return (self.new_noun(), self.new_noun())
        head = [self.new_noun()]
        modifiers = [
            self.new_adjective() if self._rng.random() < 0.6 else self.new_noun()
            for _ in range(n_words - 1)
        ]
        return tuple(modifiers + head)

    # -- shared inventories ------------------------------------------------------

    @staticmethod
    def core_nouns() -> tuple[str, ...]:
        """The hand-written real-word noun inventory."""
        return _CORE_NOUNS

    @staticmethod
    def filler_nouns() -> tuple[str, ...]:
        """General-academic nouns for sentence templates."""
        return _FILLER_NOUNS

    @staticmethod
    def core_verbs() -> tuple[str, ...]:
        """The hand-written real-word verb inventory."""
        return _CORE_VERBS

    @staticmethod
    def core_adverbs() -> tuple[str, ...]:
        """The hand-written real-word adverb inventory."""
        return _CORE_ADVERBS
