"""Native Louvain community detection on CSR adjacency arrays.

The workflow's Step II graph features and the CLUTO-style ``graph``
clustering both need modularity communities.  networkx's
``greedy_modularity_communities`` is correct but dominated by its
pure-Python priority queue — on the pipeline's per-term context graphs
it accounts for ~85% of training wall time.  This module implements the
Louvain method (Blondel et al. 2008) directly on flat numpy CSR arrays:

* :class:`CSRGraph` — an undirected weighted graph as ``indptr`` /
  ``indices`` / ``weights`` arrays (each off-diagonal edge stored in
  both directions; a self-loop stored once with its full doubled
  strength contribution);
* :func:`louvain_labels` — the two-phase local-move + aggregation
  optimiser, deterministic for a fixed ``seed`` (node visit order is a
  seeded permutation, ties keep the incumbent community);
* :func:`modularity_from_labels` — the Newman-Girvan modularity of a
  labelling, matching ``networkx.algorithms.community.modularity``.

The optimiser is exact about bookkeeping (community strengths are
updated incrementally) and typically converges in a handful of sweeps,
making it orders of magnitude faster than the greedy agglomerative
alternative on the few-hundred-node graphs the pipeline produces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ClusteringError
from repro.utils.rng import ensure_rng

#: Minimum modularity gain for a node move to be accepted.
DEFAULT_MIN_GAIN = 1e-12

#: Auto-dispatch gate of the vectorized local-move sweep: the numpy
#: path wins once per-node numpy call overhead (a handful of µs) is
#: amortised over enough neighbours.  Below either bound the plain-list
#: sweep is faster (element access on numpy arrays boxes a scalar per
#: read, which dominates on the pipeline's few-hundred-node graphs).
VECTORIZE_MIN_AVG_DEGREE = 32
VECTORIZE_MIN_NODES = 64
#: The numpy sweep's dense per-node accumulator costs ``O(n_nodes)``
#: per visit, so it only pays off when the node count stays within a
#: small multiple of the average degree (dense co-occurrence graphs);
#: on sparse wide graphs the ``O(degree)`` dict sweep wins.
VECTORIZE_MAX_NODES_PER_DEGREE = 16


@dataclass(frozen=True)
class CSRGraph:
    """An undirected weighted graph in CSR form.

    Attributes
    ----------
    indptr:
        (n + 1,) row pointers into ``indices`` / ``weights``.
    indices:
        Column index of each stored entry.  Every undirected edge
        ``{i, j}`` with ``i != j`` is stored twice (once per direction);
        a self-loop is stored once, with a weight that already includes
        its doubled contribution to the node strength (matching the
        networkx degree convention).
    weights:
        Weight of each stored entry, aligned with ``indices``.
    """

    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return int(self.indptr.shape[0] - 1)

    def strengths(self) -> np.ndarray:
        """Weighted degree of every node (self-loops counted twice)."""
        rows = np.repeat(
            np.arange(self.n_nodes, dtype=np.int64), np.diff(self.indptr)
        )
        return np.bincount(
            rows, weights=self.weights, minlength=self.n_nodes
        )

    def total_weight(self) -> float:
        """Total edge weight ``2m`` (the sum of all strengths)."""
        return float(self.weights.sum())

    @classmethod
    def from_edges(
        cls,
        n_nodes: int,
        rows: np.ndarray,
        cols: np.ndarray,
        weights: np.ndarray,
    ) -> "CSRGraph":
        """Build from unique undirected edges ``(rows[k], cols[k])``.

        Each pair must appear once; both directions are materialised
        here.  Self-loops (``rows[k] == cols[k]``) are stored once with
        their weight doubled, so strengths follow the degree convention.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        if not (rows.shape == cols.shape == weights.shape):
            raise ClusteringError("rows, cols, and weights must be aligned")
        loop = rows == cols
        src = np.concatenate([rows, cols[~loop]])
        dst = np.concatenate([cols, rows[~loop]])
        w = np.concatenate(
            [np.where(loop, 2.0 * weights, weights), weights[~loop]]
        )
        order = np.lexsort((dst, src))
        src, dst, w = src[order], dst[order], w[order]
        indptr = np.zeros(n_nodes + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr=indptr, indices=dst, weights=w)

    @classmethod
    def from_networkx(cls, graph, weight: str = "weight") -> "CSRGraph":
        """Build from a networkx graph, with nodes in ``graph.nodes`` order."""
        index = {node: i for i, node in enumerate(graph.nodes())}
        n_edges = graph.number_of_edges()
        rows = np.empty(n_edges, dtype=np.int64)
        cols = np.empty(n_edges, dtype=np.int64)
        weights = np.empty(n_edges, dtype=np.float64)
        for k, (u, v, w) in enumerate(graph.edges(data=weight, default=1.0)):
            rows[k] = index[u]
            cols[k] = index[v]
            weights[k] = float(w)
        return cls.from_edges(len(index), rows, cols, weights)


def _relabel_first_seen(labels: np.ndarray) -> np.ndarray:
    """Relabel to 0..k-1 in order of first appearance (deterministic)."""
    mapping: dict[int, int] = {}
    out = np.empty_like(labels)
    for i, label in enumerate(labels):
        label = int(label)
        if label not in mapping:
            mapping[label] = len(mapping)
        out[i] = mapping[label]
    return out


def _should_vectorize(graph: CSRGraph) -> bool:
    """True when the numpy local-move sweep beats the list sweep."""
    n = graph.n_nodes
    return (
        n >= VECTORIZE_MIN_NODES
        and graph.indices.size >= VECTORIZE_MIN_AVG_DEGREE * n
        and n * n <= VECTORIZE_MAX_NODES_PER_DEGREE * graph.indices.size
    )


def _local_moves(
    graph: CSRGraph,
    order: np.ndarray,
    *,
    resolution: float,
    min_gain: float,
    max_sweeps: int,
    vectorize: bool | None = None,
) -> tuple[np.ndarray, bool]:
    """Phase 1: greedy node moves until no move improves modularity.

    Two implementations of the identical algorithm, dispatched on graph
    size (``vectorize=None``): a plain-list sweep for the pipeline's
    few-hundred-node graphs, and a numpy sweep whose neighbour-weight
    accumulation is batched per node for the wide graphs of the corpus
    scale benchmarks.  Both perform the same IEEE-754 operations in the
    same order (see :func:`_local_moves_arrays`), so labels are
    **bit-identical** across paths for any seed.
    """
    if vectorize is None:
        vectorize = _should_vectorize(graph)
    if vectorize:
        return _local_moves_arrays(
            graph,
            order,
            resolution=resolution,
            min_gain=min_gain,
            max_sweeps=max_sweeps,
        )
    return _local_moves_lists(
        graph,
        order,
        resolution=resolution,
        min_gain=min_gain,
        max_sweeps=max_sweeps,
    )


def _local_moves_lists(
    graph: CSRGraph,
    order: np.ndarray,
    *,
    resolution: float,
    min_gain: float,
    max_sweeps: int,
) -> tuple[np.ndarray, bool]:
    """The plain-list sweep: fastest at small node counts / degrees."""
    indptr = graph.indptr.tolist()
    indices = graph.indices.tolist()
    weights = graph.weights.tolist()
    strengths = graph.strengths().tolist()
    two_m = graph.total_weight()
    labels = list(range(graph.n_nodes))
    comm_tot = strengths.copy()
    visit_order = [int(i) for i in order]
    improved = False
    for __ in range(max_sweeps):
        n_moved = 0
        for i in visit_order:
            k_i = strengths[i]
            current = labels[i]
            # Weight from i to each neighbouring community (self-loops
            # move with the node, so they cancel out of every gain).
            neighbour_weight: dict[int, float] = {}
            get_weight = neighbour_weight.get
            for e in range(indptr[i], indptr[i + 1]):
                j = indices[e]
                if j == i:
                    continue
                c = labels[j]
                neighbour_weight[c] = get_weight(c, 0.0) + weights[e]
            comm_tot[current] -= k_i
            scale = resolution * k_i / two_m
            best_comm = current
            best_gain = get_weight(current, 0.0) - scale * comm_tot[current]
            for c, w in neighbour_weight.items():
                if c == current:
                    continue
                gain = w - scale * comm_tot[c]
                if gain > best_gain + min_gain:
                    best_comm, best_gain = c, gain
            comm_tot[best_comm] += k_i
            if best_comm != current:
                labels[i] = best_comm
                n_moved += 1
        if n_moved == 0:
            break
        improved = True
    return np.asarray(labels, dtype=np.int64), improved


def _local_moves_arrays(
    graph: CSRGraph,
    order: np.ndarray,
    *,
    resolution: float,
    min_gain: float,
    max_sweeps: int,
) -> tuple[np.ndarray, bool]:
    """The numpy sweep: neighbour-weight accumulation batched per node.

    Bit-parity with :func:`_local_moves_lists` is a hard contract (the
    labels feed cached, golden-tested feature vectors), so every float
    is produced by the same operations in the same order:

    * per-community weights accumulate via ``np.bincount`` over the
      neighbour communities — bincount's C loop walks the edge list in
      order, adding each weight to its bin exactly like the dict
      sweep's per-key ``+=``, so every partial sum is the same float;
    * the sequential ``> best + min_gain`` candidate scan collapses to
      ``np.argmax`` whenever the maximum gain is unique and no other
      candidate falls inside ``[g_max - min_gain, g_max)`` — with
      that window empty every record accepted before the maximum sits
      below ``g_max - min_gain``, so the maximum is accepted when
      reached and nothing after it can displace it; exact ties and
      window hits (the only places epsilon chains or dict order can
      change the answer) fall back to the literal sequential scan;
    * community totals live in a float64 array mutated by the same
      scalar ``-=``/``+=`` as the list sweep (IEEE-identical).

    The dense accumulator costs ``O(n)`` per visited node, which is
    why :func:`_should_vectorize` additionally requires the graph to
    be dense enough that ``n`` is within a small factor of the average
    degree.
    """
    indptr = graph.indptr.tolist()
    indices = graph.indices
    weights = graph.weights
    strengths = graph.strengths()
    strength_list = strengths.tolist()
    two_m = graph.total_weight()
    n = graph.n_nodes
    labels = np.arange(n, dtype=np.int64)
    comm_tot = np.array(strength_list, dtype=np.float64)
    # Rows carrying a self-loop (rare after level 0 only): just these
    # need the neighbour mask, so the common case skips two ufunc calls.
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    loop_rows = set(rows[indices == rows].tolist())
    visit_order = [int(i) for i in order]
    improved = False
    for __ in range(max_sweeps):
        n_moved = 0
        for i in visit_order:
            lo, hi = indptr[i], indptr[i + 1]
            nbr = indices[lo:hi]
            wts = weights[lo:hi]
            if i in loop_rows:
                keep = nbr != i
                nbr = nbr[keep]
                wts = wts[keep]
            k_i = strength_list[i]
            current = int(labels[i])
            comm_tot[current] -= k_i
            scale = resolution * k_i / two_m
            if nbr.size == 0:
                comm_tot[current] += k_i
                continue
            comm = labels[nbr]
            wsum = np.bincount(comm, weights=wts, minlength=n)
            occ = np.bincount(comm, minlength=n)
            gains = np.where(occ > 0, wsum - scale * comm_tot, -np.inf)
            best_gain = (
                float(gains[current])
                if occ[current]
                else 0.0 - scale * float(comm_tot[current])
            )
            best_comm = current
            gains[current] = -np.inf
            g_max = float(np.max(gains))
            if g_max > best_gain + min_gain:
                # Unique max with an empty epsilon window below it is
                # provably the sequential scan's answer; anything else
                # (an exact tie, where dict order breaks it, or a
                # window hit, where epsilon chains can matter) replays
                # the literal scan in first-appearance order.
                near = int(np.count_nonzero(gains >= g_max - min_gain))
                if near == 1:
                    best_comm = int(np.argmax(gains))
                    best_gain = g_max
                else:
                    acc: dict[int, float] = {}
                    get_acc = acc.get
                    for c, w in zip(comm.tolist(), wts.tolist(), strict=True):
                        acc[c] = get_acc(c, 0.0) + w
                    for c, w in acc.items():
                        if c == current:
                            continue
                        gain = w - scale * float(comm_tot[c])
                        if gain > best_gain + min_gain:
                            best_comm, best_gain = c, gain
            comm_tot[best_comm] += k_i
            if best_comm != current:
                labels[i] = best_comm
                n_moved += 1
        if n_moved == 0:
            break
        improved = True
    return labels, improved


def _aggregate(graph: CSRGraph, labels: np.ndarray) -> CSRGraph:
    """Phase 2: one node per community, weights summed (loops doubled).

    Vectorized, with the same floats as the historical dict loop: a
    *stable* lexsort groups entries by community pair while preserving
    CSR traversal order inside each group, and ``np.add.reduceat``
    folds each group left to right — the dict's accumulation order
    exactly.  Output pairs come out key-sorted, matching the dict
    version's ``sorted(edge_weight.items())``.
    """
    n_comms = int(labels.max()) + 1 if labels.size else 0
    n = graph.n_nodes
    rows = np.repeat(
        np.arange(n, dtype=np.int64), np.diff(graph.indptr)
    )
    cols = graph.indices
    # Each undirected entry pair visited once (j >= i keeps the
    # self-loop, stored once and already strength-doubled).
    keep = cols >= rows
    rows = rows[keep]
    cols = cols[keep]
    weights = graph.weights[keep]
    ci = labels[rows]
    cj = labels[cols]
    kmin = np.minimum(ci, cj)
    kmax = np.maximum(ci, cj)
    # Self-entries carry as-is; internal edges become doubled self-loop
    # mass; cross-community edges carry as-is.
    contribution = np.where(
        rows == cols, weights, np.where(ci == cj, 2.0 * weights, weights)
    )
    order = np.lexsort((kmax, kmin))  # stable: CSR order within a key
    kmin = kmin[order]
    kmax = kmax[order]
    contribution = contribution[order]
    if kmin.size:
        boundary = np.empty(kmin.size, dtype=bool)
        boundary[0] = True
        np.not_equal(kmin[1:], kmin[:-1], out=boundary[1:])
        boundary[1:] |= kmax[1:] != kmax[:-1]
        starts = np.flatnonzero(boundary)
        sums = np.add.reduceat(contribution, starts)
        out_rows = kmin[starts]
        out_cols = kmax[starts]
    else:
        sums = np.empty(0, dtype=np.float64)
        out_rows = np.empty(0, dtype=np.int64)
        out_cols = np.empty(0, dtype=np.int64)
    # from_edges doubles self-loops; ours are pre-doubled, so halve.
    w = np.where(out_rows == out_cols, sums / 2.0, sums)
    return CSRGraph.from_edges(n_comms, out_rows, out_cols, w)


def louvain_labels(
    graph: CSRGraph,
    *,
    seed: int | np.random.Generator | None = 0,
    resolution: float = 1.0,
    min_gain: float = DEFAULT_MIN_GAIN,
    max_sweeps: int = 100,
    max_levels: int = 20,
    vectorize: bool | None = None,
) -> np.ndarray:
    """Community label per node via Louvain modularity optimisation.

    Parameters
    ----------
    graph:
        The CSR graph to partition.
    seed:
        Controls the node visit order (a seeded permutation per level);
        a fixed seed makes the whole optimisation deterministic.
    resolution:
        The gamma of generalised modularity (1.0 = Newman-Girvan).
    min_gain:
        Moves must improve modularity by more than this to be accepted.
    max_sweeps / max_levels:
        Safety bounds on local-move sweeps per level and on aggregation
        levels (converges far earlier in practice).
    vectorize:
        Local-move implementation: ``None`` (default) picks per level
        by graph size, ``True``/``False`` force the numpy-batched or
        plain-list sweep.  Labels are bit-identical either way — the
        knob is purely a speed choice (see :func:`_should_vectorize`).
    """
    n = graph.n_nodes
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if graph.total_weight() <= 0.0:
        return np.arange(n, dtype=np.int64)
    rng = ensure_rng(seed)
    labels = np.arange(n, dtype=np.int64)
    level_graph = graph
    for __ in range(max_levels):
        order = rng.permutation(level_graph.n_nodes)
        level_labels, improved = _local_moves(
            level_graph,
            order,
            resolution=resolution,
            min_gain=min_gain,
            max_sweeps=max_sweeps,
            vectorize=vectorize,
        )
        if not improved:
            break
        level_labels = _relabel_first_seen(level_labels)
        labels = level_labels[labels]
        if int(level_labels.max()) + 1 == level_graph.n_nodes:
            break  # no merge happened; a further level cannot help
        level_graph = _aggregate(level_graph, level_labels)
    return _relabel_first_seen(labels)


def modularity_from_labels(
    graph: CSRGraph,
    labels: np.ndarray,
    *,
    resolution: float = 1.0,
) -> float:
    """Newman-Girvan modularity of ``labels`` (networkx-compatible)."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape[0] != graph.n_nodes:
        raise ClusteringError(
            f"labels length {labels.shape[0]} != n_nodes {graph.n_nodes}"
        )
    two_m = graph.total_weight()
    if two_m <= 0.0:
        return 0.0
    n_comms = int(labels.max()) + 1 if labels.size else 0
    internal = np.zeros(n_comms, dtype=np.float64)
    # Batched internal-weight accumulation; ``ufunc.at`` adds in entry
    # order (CSR traversal order), reproducing the historical per-entry
    # loop's floats bit for bit.
    rows = np.repeat(
        np.arange(graph.n_nodes, dtype=np.int64), np.diff(graph.indptr)
    )
    row_labels = labels[rows]
    intra = row_labels == labels[graph.indices]
    np.add.at(internal, row_labels[intra], graph.weights[intra])
    comm_tot = np.zeros(n_comms, dtype=np.float64)
    np.add.at(comm_tot, labels, graph.strengths())
    return float(
        (internal / two_m - resolution * (comm_tot / two_m) ** 2).sum()
    )
