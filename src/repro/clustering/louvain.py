"""Native Louvain community detection on CSR adjacency arrays.

The workflow's Step II graph features and the CLUTO-style ``graph``
clustering both need modularity communities.  networkx's
``greedy_modularity_communities`` is correct but dominated by its
pure-Python priority queue — on the pipeline's per-term context graphs
it accounts for ~85% of training wall time.  This module implements the
Louvain method (Blondel et al. 2008) directly on flat numpy CSR arrays:

* :class:`CSRGraph` — an undirected weighted graph as ``indptr`` /
  ``indices`` / ``weights`` arrays (each off-diagonal edge stored in
  both directions; a self-loop stored once with its full doubled
  strength contribution);
* :func:`louvain_labels` — the two-phase local-move + aggregation
  optimiser, deterministic for a fixed ``seed`` (node visit order is a
  seeded permutation, ties keep the incumbent community);
* :func:`modularity_from_labels` — the Newman-Girvan modularity of a
  labelling, matching ``networkx.algorithms.community.modularity``.

The optimiser is exact about bookkeeping (community strengths are
updated incrementally) and typically converges in a handful of sweeps,
making it orders of magnitude faster than the greedy agglomerative
alternative on the few-hundred-node graphs the pipeline produces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ClusteringError
from repro.utils.rng import ensure_rng

#: Minimum modularity gain for a node move to be accepted.
DEFAULT_MIN_GAIN = 1e-12


@dataclass(frozen=True)
class CSRGraph:
    """An undirected weighted graph in CSR form.

    Attributes
    ----------
    indptr:
        (n + 1,) row pointers into ``indices`` / ``weights``.
    indices:
        Column index of each stored entry.  Every undirected edge
        ``{i, j}`` with ``i != j`` is stored twice (once per direction);
        a self-loop is stored once, with a weight that already includes
        its doubled contribution to the node strength (matching the
        networkx degree convention).
    weights:
        Weight of each stored entry, aligned with ``indices``.
    """

    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return int(self.indptr.shape[0] - 1)

    def strengths(self) -> np.ndarray:
        """Weighted degree of every node (self-loops counted twice)."""
        rows = np.repeat(
            np.arange(self.n_nodes, dtype=np.int64), np.diff(self.indptr)
        )
        return np.bincount(
            rows, weights=self.weights, minlength=self.n_nodes
        )

    def total_weight(self) -> float:
        """Total edge weight ``2m`` (the sum of all strengths)."""
        return float(self.weights.sum())

    @classmethod
    def from_edges(
        cls,
        n_nodes: int,
        rows: np.ndarray,
        cols: np.ndarray,
        weights: np.ndarray,
    ) -> "CSRGraph":
        """Build from unique undirected edges ``(rows[k], cols[k])``.

        Each pair must appear once; both directions are materialised
        here.  Self-loops (``rows[k] == cols[k]``) are stored once with
        their weight doubled, so strengths follow the degree convention.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        if not (rows.shape == cols.shape == weights.shape):
            raise ClusteringError("rows, cols, and weights must be aligned")
        loop = rows == cols
        src = np.concatenate([rows, cols[~loop]])
        dst = np.concatenate([cols, rows[~loop]])
        w = np.concatenate(
            [np.where(loop, 2.0 * weights, weights), weights[~loop]]
        )
        order = np.lexsort((dst, src))
        src, dst, w = src[order], dst[order], w[order]
        indptr = np.zeros(n_nodes + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr=indptr, indices=dst, weights=w)

    @classmethod
    def from_networkx(cls, graph, weight: str = "weight") -> "CSRGraph":
        """Build from a networkx graph, with nodes in ``graph.nodes`` order."""
        index = {node: i for i, node in enumerate(graph.nodes())}
        n_edges = graph.number_of_edges()
        rows = np.empty(n_edges, dtype=np.int64)
        cols = np.empty(n_edges, dtype=np.int64)
        weights = np.empty(n_edges, dtype=np.float64)
        for k, (u, v, w) in enumerate(graph.edges(data=weight, default=1.0)):
            rows[k] = index[u]
            cols[k] = index[v]
            weights[k] = float(w)
        return cls.from_edges(len(index), rows, cols, weights)


def _relabel_first_seen(labels: np.ndarray) -> np.ndarray:
    """Relabel to 0..k-1 in order of first appearance (deterministic)."""
    mapping: dict[int, int] = {}
    out = np.empty_like(labels)
    for i, label in enumerate(labels):
        label = int(label)
        if label not in mapping:
            mapping[label] = len(mapping)
        out[i] = mapping[label]
    return out


def _local_moves(
    graph: CSRGraph,
    order: np.ndarray,
    *,
    resolution: float,
    min_gain: float,
    max_sweeps: int,
) -> tuple[np.ndarray, bool]:
    """Phase 1: greedy node moves until no move improves modularity.

    The loop runs on plain Python lists — element access on numpy
    arrays boxes a scalar per read, which dominates at these graph
    sizes (a few hundred nodes, degree tens).
    """
    indptr = graph.indptr.tolist()
    indices = graph.indices.tolist()
    weights = graph.weights.tolist()
    strengths = graph.strengths().tolist()
    two_m = graph.total_weight()
    labels = list(range(graph.n_nodes))
    comm_tot = strengths.copy()
    visit_order = [int(i) for i in order]
    improved = False
    for __ in range(max_sweeps):
        n_moved = 0
        for i in visit_order:
            k_i = strengths[i]
            current = labels[i]
            # Weight from i to each neighbouring community (self-loops
            # move with the node, so they cancel out of every gain).
            neighbour_weight: dict[int, float] = {}
            get_weight = neighbour_weight.get
            for e in range(indptr[i], indptr[i + 1]):
                j = indices[e]
                if j == i:
                    continue
                c = labels[j]
                neighbour_weight[c] = get_weight(c, 0.0) + weights[e]
            comm_tot[current] -= k_i
            scale = resolution * k_i / two_m
            best_comm = current
            best_gain = get_weight(current, 0.0) - scale * comm_tot[current]
            for c, w in neighbour_weight.items():
                if c == current:
                    continue
                gain = w - scale * comm_tot[c]
                if gain > best_gain + min_gain:
                    best_comm, best_gain = c, gain
            comm_tot[best_comm] += k_i
            if best_comm != current:
                labels[i] = best_comm
                n_moved += 1
        if n_moved == 0:
            break
        improved = True
    return np.asarray(labels, dtype=np.int64), improved


def _aggregate(graph: CSRGraph, labels: np.ndarray) -> CSRGraph:
    """Phase 2: one node per community, weights summed (loops doubled)."""
    n_comms = int(labels.max()) + 1 if labels.size else 0
    edge_weight: dict[tuple[int, int], float] = {}
    indptr = graph.indptr.tolist()
    indices = graph.indices.tolist()
    weights = graph.weights.tolist()
    label_list = labels.tolist()
    for i in range(graph.n_nodes):
        ci = label_list[i]
        for e in range(indptr[i], indptr[i + 1]):
            j = indices[e]
            if j < i:
                continue  # each undirected entry pair visited once
            cj = label_list[j]
            key = (ci, cj) if ci <= cj else (cj, ci)
            if i == j:
                # Stored once, already strength-doubled: carry as-is.
                edge_weight[key] = edge_weight.get(key, 0.0) + weights[e]
            elif ci == cj:
                # Internal edge becomes self-loop mass (doubled).
                edge_weight[key] = edge_weight.get(key, 0.0) + 2.0 * weights[e]
            else:
                edge_weight[key] = edge_weight.get(key, 0.0) + weights[e]
    n_edges = len(edge_weight)
    rows = np.empty(n_edges, dtype=np.int64)
    cols = np.empty(n_edges, dtype=np.int64)
    w = np.empty(n_edges, dtype=np.float64)
    for k, ((ci, cj), value) in enumerate(sorted(edge_weight.items())):
        rows[k], cols[k] = ci, cj
        # from_edges doubles self-loops; ours are pre-doubled, so halve.
        w[k] = value / 2.0 if ci == cj else value
    return CSRGraph.from_edges(n_comms, rows, cols, w)


def louvain_labels(
    graph: CSRGraph,
    *,
    seed: int | np.random.Generator | None = 0,
    resolution: float = 1.0,
    min_gain: float = DEFAULT_MIN_GAIN,
    max_sweeps: int = 100,
    max_levels: int = 20,
) -> np.ndarray:
    """Community label per node via Louvain modularity optimisation.

    Parameters
    ----------
    graph:
        The CSR graph to partition.
    seed:
        Controls the node visit order (a seeded permutation per level);
        a fixed seed makes the whole optimisation deterministic.
    resolution:
        The gamma of generalised modularity (1.0 = Newman-Girvan).
    min_gain:
        Moves must improve modularity by more than this to be accepted.
    max_sweeps / max_levels:
        Safety bounds on local-move sweeps per level and on aggregation
        levels (converges far earlier in practice).
    """
    n = graph.n_nodes
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if graph.total_weight() <= 0.0:
        return np.arange(n, dtype=np.int64)
    rng = ensure_rng(seed)
    labels = np.arange(n, dtype=np.int64)
    level_graph = graph
    for __ in range(max_levels):
        order = rng.permutation(level_graph.n_nodes)
        level_labels, improved = _local_moves(
            level_graph,
            order,
            resolution=resolution,
            min_gain=min_gain,
            max_sweeps=max_sweeps,
        )
        if not improved:
            break
        level_labels = _relabel_first_seen(level_labels)
        labels = level_labels[labels]
        if int(level_labels.max()) + 1 == level_graph.n_nodes:
            break  # no merge happened; a further level cannot help
        level_graph = _aggregate(level_graph, level_labels)
    return _relabel_first_seen(labels)


def modularity_from_labels(
    graph: CSRGraph,
    labels: np.ndarray,
    *,
    resolution: float = 1.0,
) -> float:
    """Newman-Girvan modularity of ``labels`` (networkx-compatible)."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape[0] != graph.n_nodes:
        raise ClusteringError(
            f"labels length {labels.shape[0]} != n_nodes {graph.n_nodes}"
        )
    two_m = graph.total_weight()
    if two_m <= 0.0:
        return 0.0
    n_comms = int(labels.max()) + 1 if labels.size else 0
    internal = np.zeros(n_comms, dtype=np.float64)
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    for i in range(graph.n_nodes):
        ci = int(labels[i])
        for e in range(indptr[i], indptr[i + 1]):
            if int(labels[int(indices[e])]) == ci:
                internal[ci] += weights[e]
    comm_tot = np.zeros(n_comms, dtype=np.float64)
    np.add.at(comm_tot, labels, graph.strengths())
    return float(
        (internal / two_m - resolution * (comm_tot / two_m) ** 2).sum()
    )
