"""External clustering-quality indexes.

The paper (§2 III) notes that "there exist two kinds of quality indexes:
external and internal.  External indexes use pre-labelled data sets with
'known' cluster configurations" — and then builds its contribution on
internal ones, since a new candidate term has no gold senses.

The external indexes still matter for *validating the substrate*: on the
simulated MSH-WSD data the gold sense labels are known, so purity, the
(adjusted) Rand index, and normalised mutual information measure how well
the CLUTO-like algorithms actually recover senses — independent of any
internal index.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ClusteringError


def _check_pair(labels_pred, labels_true) -> tuple[np.ndarray, np.ndarray]:
    pred = np.asarray(labels_pred)
    true = np.asarray(labels_true)
    if pred.shape != true.shape or pred.ndim != 1:
        raise ClusteringError(
            f"label arrays must be 1-D and aligned, got {pred.shape} vs {true.shape}"
        )
    if pred.shape[0] == 0:
        raise ClusteringError("label arrays must be non-empty")
    return pred, true


def contingency_table(labels_pred, labels_true) -> np.ndarray:
    """Counts ``C[i, j]`` = objects in predicted cluster i with true label j."""
    pred, true = _check_pair(labels_pred, labels_true)
    pred_ids = {label: i for i, label in enumerate(np.unique(pred).tolist())}
    true_ids = {label: j for j, label in enumerate(np.unique(true).tolist())}
    table = np.zeros((len(pred_ids), len(true_ids)), dtype=np.int64)
    for p, t in zip(pred, true, strict=True):
        table[pred_ids[p], true_ids[t]] += 1
    return table


def purity(labels_pred, labels_true) -> float:
    """Fraction of objects in their cluster's majority true class (max 1)."""
    table = contingency_table(labels_pred, labels_true)
    return float(table.max(axis=1).sum() / table.sum())


def rand_index(labels_pred, labels_true) -> float:
    """Fraction of object pairs on which the two labelings agree."""
    pred, true = _check_pair(labels_pred, labels_true)
    n = pred.shape[0]
    if n < 2:
        return 1.0
    same_pred = pred[:, None] == pred[None, :]
    same_true = true[:, None] == true[None, :]
    mask = ~np.eye(n, dtype=bool)
    return float((same_pred == same_true)[mask].mean())


def adjusted_rand_index(labels_pred, labels_true) -> float:
    """Rand index corrected for chance (0 ≈ random, 1 = identical)."""
    table = contingency_table(labels_pred, labels_true)
    n = table.sum()

    def comb2(x: np.ndarray) -> np.ndarray:
        return x * (x - 1) / 2.0

    sum_cells = comb2(table.astype(np.float64)).sum()
    sum_rows = comb2(table.sum(axis=1).astype(np.float64)).sum()
    sum_cols = comb2(table.sum(axis=0).astype(np.float64)).sum()
    total = comb2(np.array([float(n)]))[0]
    expected = sum_rows * sum_cols / total if total > 0 else 0.0
    max_index = (sum_rows + sum_cols) / 2.0
    if max_index == expected:
        return 1.0 if sum_cells == expected else 0.0
    return float((sum_cells - expected) / (max_index - expected))


def normalized_mutual_information(labels_pred, labels_true) -> float:
    """NMI with arithmetic-mean normalisation (0 = independent, 1 = equal)."""
    table = contingency_table(labels_pred, labels_true).astype(np.float64)
    n = table.sum()
    p_joint = table / n
    p_rows = p_joint.sum(axis=1, keepdims=True)
    p_cols = p_joint.sum(axis=0, keepdims=True)

    with np.errstate(divide="ignore", invalid="ignore"):
        terms = p_joint * np.log(p_joint / (p_rows @ p_cols))
    mi = float(np.nansum(terms))

    def entropy(p: np.ndarray) -> float:
        p = p[p > 0]
        return float(-(p * np.log(p)).sum())

    h_rows = entropy(p_rows.ravel())
    h_cols = entropy(p_cols.ravel())
    denom = (h_rows + h_cols) / 2.0
    if denom == 0.0:
        return 1.0
    return max(0.0, min(1.0, mi / denom))


EXTERNAL_INDEXES = {
    "purity": purity,
    "rand": rand_index,
    "ari": adjusted_rand_index,
    "nmi": normalized_mutual_information,
}


def compute_external_index(name: str, labels_pred, labels_true) -> float:
    """Dispatch by name (``purity``, ``rand``, ``ari``, ``nmi``)."""
    try:
        fn = EXTERNAL_INDEXES[name]
    except KeyError:
        raise ClusteringError(
            f"unknown external index {name!r}; "
            f"options: {', '.join(sorted(EXTERNAL_INDEXES))}"
        ) from None
    return fn(labels_pred, labels_true)
