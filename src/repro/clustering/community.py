"""Pluggable community-detection backends.

Both consumers of modularity communities — the Step II polysemy graph
features (:mod:`repro.polysemy.graph_features`) and the CLUTO-style
``graph`` clustering (:mod:`repro.clustering.graphclust`) — go through
one :class:`CommunityBackend` so they share a single implementation:

* ``"louvain"`` (default) — the native CSR optimiser of
  :mod:`repro.clustering.louvain`, deterministic under a fixed seed and
  orders of magnitude faster than the greedy alternative;
* ``"greedy"`` — networkx ``greedy_modularity_communities``, kept as a
  parity fallback (it is the seed implementation the feature tables
  were first produced with).

Backends take a networkx graph and return node communities as a list of
sets, largest first (ties broken by smallest node insertion order) so
either backend yields a stable, comparable community list.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import networkx as nx
import numpy as np

from repro.clustering.louvain import CSRGraph, louvain_labels
from repro.errors import ClusteringError


@runtime_checkable
class CommunityBackend(Protocol):
    """Anything that can partition a graph's nodes into communities."""

    name: str

    def communities(
        self,
        graph: nx.Graph,
        *,
        weight: str = "weight",
        seed: int | np.random.Generator | None = 0,
    ) -> list[set]:
        """Node communities of ``graph``, largest community first."""
        ...  # pragma: no cover - protocol signature


def _sorted_communities(graph: nx.Graph, groups: list[set]) -> list[set]:
    """Order communities by size desc, then by first node appearance."""
    first_seen = {node: i for i, node in enumerate(graph.nodes())}
    return sorted(
        groups,
        key=lambda c: (-len(c), min(first_seen[node] for node in c)),
    )


class GreedyModularityBackend:
    """networkx greedy modularity maximisation (the parity fallback)."""

    name = "greedy"

    def communities(
        self,
        graph: nx.Graph,
        *,
        weight: str = "weight",
        seed: int | np.random.Generator | None = 0,
    ) -> list[set]:
        """Communities via ``greedy_modularity_communities`` (seed unused)."""
        groups = [
            set(c)
            for c in nx.algorithms.community.greedy_modularity_communities(
                graph, weight=weight
            )
        ]
        return _sorted_communities(graph, groups)


class LouvainBackend:
    """The native CSR Louvain optimiser (deterministic and seedable)."""

    name = "louvain"

    def __init__(self, *, resolution: float = 1.0) -> None:
        self.resolution = resolution

    def communities(
        self,
        graph: nx.Graph,
        *,
        weight: str = "weight",
        seed: int | np.random.Generator | None = 0,
    ) -> list[set]:
        """Communities via :func:`~repro.clustering.louvain.louvain_labels`."""
        nodes = list(graph.nodes())
        if not nodes:
            return []
        csr = CSRGraph.from_networkx(graph, weight=weight)
        labels = self.labels_from_csr(csr, seed=seed)
        groups: dict[int, set] = {}
        for node, label in zip(nodes, labels, strict=True):
            groups.setdefault(int(label), set()).add(node)
        return _sorted_communities(graph, list(groups.values()))

    def labels_from_csr(
        self,
        csr: CSRGraph,
        *,
        seed: int | np.random.Generator | None = 0,
    ) -> np.ndarray:
        """Community label per CSR node — the zero-conversion fast path.

        Callers that already hold a :class:`CSRGraph` (the Step II graph
        features) use this to skip the networkx round-trip; backends
        without this method only offer the ``communities`` interface.
        """
        return louvain_labels(csr, seed=seed, resolution=self.resolution)


#: Registry of named community-detection backends.
COMMUNITY_BACKENDS: dict[str, type] = {
    GreedyModularityBackend.name: GreedyModularityBackend,
    LouvainBackend.name: LouvainBackend,
}

#: The selectable backend names, default first.
COMMUNITY_BACKEND_NAMES: tuple[str, ...] = ("louvain", "greedy")


def get_community_backend(
    backend: str | CommunityBackend,
) -> CommunityBackend:
    """Resolve a backend name (or pass an instance through).

    >>> get_community_backend("louvain").name
    'louvain'
    """
    if isinstance(backend, str):
        try:
            return COMMUNITY_BACKENDS[backend]()
        except KeyError:
            raise ClusteringError(
                f"unknown community backend {backend!r}; "
                f"choose from {sorted(COMMUNITY_BACKENDS)}"
            ) from None
    if isinstance(backend, CommunityBackend):
        return backend
    raise ClusteringError(
        f"backend must be a name or CommunityBackend, got "
        f"{type(backend).__name__}"
    )
