"""Clustering result objects."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.clustering.similarity import isim_esim
from repro.errors import ClusteringError


@dataclass(frozen=True)
class ClusterStats:
    """Per-cluster statistics of a solution (sizes, ISIM, ESIM).

    These are exactly the quantities the paper's Table 2 indexes are
    defined over.
    """

    sizes: np.ndarray
    isim: np.ndarray
    esim: np.ndarray

    @classmethod
    def from_labels(cls, matrix, labels: np.ndarray) -> "ClusterStats":
        """Measure statistics for ``labels`` over unit-row ``matrix``."""
        sizes, isim, esim = isim_esim(matrix, labels)
        return cls(sizes=sizes, isim=isim, esim=esim)

    @property
    def k(self) -> int:
        """Number of clusters."""
        return int(self.sizes.shape[0])

    @property
    def n(self) -> int:
        """Number of objects."""
        return int(self.sizes.sum())

    def mean_isim(self) -> float:
        """Average ISIM over clusters (the paper's a_k)."""
        return float(self.isim.mean())

    def mean_esim(self) -> float:
        """Average ESIM over clusters (the paper's b_k)."""
        return float(self.esim.mean())


@dataclass(frozen=True)
class ClusterSolution:
    """A clustering: labels plus the algorithm that produced them.

    Attributes
    ----------
    labels:
        Cluster id (0-based, contiguous) per object.
    k:
        Number of clusters.
    algorithm:
        Name of the producing algorithm (``"rb"``, ``"direct"``, ...).
    stats:
        Lazily attached :class:`ClusterStats` (see :meth:`with_stats`).
    """

    labels: np.ndarray
    k: int
    algorithm: str = "unknown"
    stats: ClusterStats | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        labels = np.asarray(self.labels)
        if labels.ndim != 1:
            raise ClusteringError("labels must be one-dimensional")
        if labels.size and int(labels.max()) >= self.k:
            raise ClusteringError(
                f"label {int(labels.max())} out of range for k={self.k}"
            )
        if labels.size and int(labels.min()) < 0:
            raise ClusteringError("labels must be non-negative")

    def with_stats(self, matrix) -> "ClusterSolution":
        """Return a copy with :class:`ClusterStats` measured on ``matrix``."""
        return ClusterSolution(
            labels=self.labels,
            k=self.k,
            algorithm=self.algorithm,
            stats=ClusterStats.from_labels(matrix, self.labels),
        )

    def cluster_members(self, cluster_id: int) -> np.ndarray:
        """Indices of objects assigned to ``cluster_id``."""
        if not 0 <= cluster_id < self.k:
            raise ClusteringError(f"cluster id {cluster_id} out of range")
        return np.where(np.asarray(self.labels) == cluster_id)[0]

    def sizes(self) -> np.ndarray:
        """Object count per cluster id."""
        return np.bincount(np.asarray(self.labels), minlength=self.k)


def relabel_contiguous(labels: np.ndarray) -> tuple[np.ndarray, int]:
    """Map arbitrary labels to contiguous 0..k-1 (stable by first appearance)."""
    labels = np.asarray(labels)
    mapping: dict[int, int] = {}
    out = np.empty_like(labels)
    for idx, lab in enumerate(labels):
        key = int(lab)
        if key not in mapping:
            mapping[key] = len(mapping)
        out[idx] = mapping[key]
    return out, len(mapping)
