"""CLUTO-like clustering substrate.

The paper runs five clustering algorithms "implemented in the CLUTO
software: rb, rbr, direct, agglo, graph" and builds five new internal
indexes (its Table 2) from CLUTO's per-cluster ISIM/ESIM statistics.
CLUTO is a closed binary, so this subpackage re-implements:

* the cosine I2 criterion and ISIM/ESIM cluster statistics
  (:mod:`repro.clustering.similarity`, :mod:`repro.clustering.criterion`);
* the five algorithms (:mod:`repro.clustering.algorithms` registry);
* the paper's indexes a_k..f_k plus classic baselines
  (:mod:`repro.clustering.indexes`).
"""

from repro.clustering.agglomerative import agglomerative_cluster
from repro.clustering.algorithms import ALGORITHM_NAMES, cluster
from repro.clustering.bisecting import repeated_bisection
from repro.clustering.community import (
    COMMUNITY_BACKEND_NAMES,
    COMMUNITY_BACKENDS,
    CommunityBackend,
    GreedyModularityBackend,
    LouvainBackend,
    get_community_backend,
)
from repro.clustering.criterion import criterion_value
from repro.clustering.external import (
    EXTERNAL_INDEXES,
    adjusted_rand_index,
    compute_external_index,
    normalized_mutual_information,
    purity,
    rand_index,
)
from repro.clustering.graphclust import graph_cluster
from repro.clustering.indexes import (
    INDEX_DIRECTIONS,
    PAPER_INDEXES,
    compute_index,
    index_names,
)
from repro.clustering.kmeans import spherical_kmeans
from repro.clustering.louvain import (
    CSRGraph,
    louvain_labels,
    modularity_from_labels,
)
from repro.clustering.model import ClusterSolution, ClusterStats
from repro.clustering.similarity import (
    cosine_similarity_matrix,
    normalize_rows,
)

__all__ = [
    "ALGORITHM_NAMES",
    "COMMUNITY_BACKENDS",
    "COMMUNITY_BACKEND_NAMES",
    "CSRGraph",
    "ClusterSolution",
    "ClusterStats",
    "CommunityBackend",
    "EXTERNAL_INDEXES",
    "GreedyModularityBackend",
    "INDEX_DIRECTIONS",
    "LouvainBackend",
    "PAPER_INDEXES",
    "adjusted_rand_index",
    "agglomerative_cluster",
    "cluster",
    "compute_external_index",
    "compute_index",
    "cosine_similarity_matrix",
    "criterion_value",
    "get_community_backend",
    "graph_cluster",
    "index_names",
    "louvain_labels",
    "modularity_from_labels",
    "normalize_rows",
    "normalized_mutual_information",
    "purity",
    "rand_index",
    "repeated_bisection",
    "spherical_kmeans",
]
