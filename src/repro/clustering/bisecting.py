"""Repeated-bisection clustering: CLUTO's ``rb`` and ``rbr`` methods.

``rb`` grows a k-way clustering by k−1 successive 2-way spherical k-means
splits; at each step the cluster chosen for splitting is the one whose
bisection most improves the global I2 criterion (CLUTO's "best" cluster
selection).  ``rbr`` additionally refines the final k-way solution with
spherical k-means warm-started from the rb assignment.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.kmeans import spherical_kmeans
from repro.clustering.model import ClusterSolution
from repro.clustering.similarity import as_float_array, composite_vector, normalize_rows
from repro.errors import ClusteringError
from repro.utils.rng import ensure_rng, spawn_rng


def _i2_of(unit, indices: np.ndarray) -> float:
    if indices.size == 0:
        return 0.0
    return float(np.linalg.norm(composite_vector(unit, indices)))


def repeated_bisection(
    matrix,
    k: int,
    *,
    refine: bool = False,
    seed: int | np.random.Generator | None = None,
    max_iter: int = 50,
) -> ClusterSolution:
    """Cluster by repeated bisection (``rb``; ``refine=True`` gives ``rbr``).

    Parameters
    ----------
    matrix:
        (n, d) dense or sparse data; rows normalised internally.
    k:
        Target number of clusters.
    refine:
        Run a final global k-means refinement pass (CLUTO's ``rbr``).
    seed:
        RNG seed.
    """
    matrix = as_float_array(matrix)
    n = matrix.shape[0]
    if not 1 <= k <= n:
        raise ClusteringError(f"k must be in [1, {n}], got {k}")
    unit = normalize_rows(matrix)
    rng = ensure_rng(seed)

    labels = np.zeros(n, dtype=np.int64)
    if k == 1:
        return ClusterSolution(labels=labels, k=1, algorithm="rb")

    n_clusters = 1
    while n_clusters < k:
        # Evaluate the I2 gain of bisecting each splittable cluster and
        # commit the best split (CLUTO cselect=best).
        best_gain, best_cluster, best_split = -np.inf, None, None
        child_rngs = spawn_rng(rng, n_clusters)
        for cluster_id in range(n_clusters):
            members = np.where(labels == cluster_id)[0]
            if members.size < 2:
                continue
            sub = unit[members]
            split = spherical_kmeans(
                sub, 2, seed=child_rngs[cluster_id], max_iter=max_iter, n_init=2
            )
            before = _i2_of(unit, members)
            left = members[split.labels == 0]
            right = members[split.labels == 1]
            gain = _i2_of(unit, left) + _i2_of(unit, right) - before
            if gain > best_gain:
                best_gain, best_cluster, best_split = gain, cluster_id, split
        if best_cluster is None:
            raise ClusteringError(
                f"cannot reach k={k}: all clusters are singletons"
            )
        members = np.where(labels == best_cluster)[0]
        labels[members[best_split.labels == 1]] = n_clusters
        n_clusters += 1

    algorithm = "rbr" if refine else "rb"
    if refine:
        refined = spherical_kmeans(
            unit, k, init_labels=labels, max_iter=max_iter, seed=rng
        )
        labels = refined.labels
    return ClusterSolution(labels=labels, k=k, algorithm=algorithm)
