"""Agglomerative clustering: CLUTO's ``agglo`` method (UPGMA).

Average-link agglomeration over cosine similarity: start from singleton
clusters and repeatedly merge the pair with the highest average pairwise
similarity, maintained with the Lance–Williams update for average link.
Naive O(n² · n_merges) is fine at the context counts Step III sees
(tens to a few hundred objects per term).
"""

from __future__ import annotations

import numpy as np

from repro.clustering.model import ClusterSolution, relabel_contiguous
from repro.clustering.similarity import cosine_similarity_matrix
from repro.errors import ClusteringError


def agglomerative_cluster(matrix, k: int) -> ClusterSolution:
    """Cluster rows of ``matrix`` into ``k`` groups by UPGMA over cosine.

    Deterministic: no RNG is involved; ties are broken by the smallest
    cluster-id pair.
    """
    sims = cosine_similarity_matrix(matrix)
    n = sims.shape[0]
    if not 1 <= k <= n:
        raise ClusteringError(f"k must be in [1, {n}], got {k}")

    labels = np.arange(n, dtype=np.int64)
    sizes = {i: 1 for i in range(n)}
    active = list(range(n))
    # link[a][b] = average pairwise similarity between clusters a and b.
    link = sims.copy().astype(np.float64)
    np.fill_diagonal(link, -np.inf)

    n_clusters = n
    while n_clusters > k:
        # Find the best active pair (a < b).
        best_a, best_b, best_sim = -1, -1, -np.inf
        for ai, a in enumerate(active):
            row = link[a]
            for b in active[ai + 1 :]:
                if row[b] > best_sim:
                    best_a, best_b, best_sim = a, b, row[b]
        if best_a < 0:
            raise ClusteringError("no pair found to merge")
        na, nb = sizes[best_a], sizes[best_b]
        # Lance–Williams (average link): merge b into a.
        for other in active:
            if other in (best_a, best_b):
                continue
            merged = (na * link[best_a][other] + nb * link[best_b][other]) / (
                na + nb
            )
            link[best_a][other] = merged
            link[other][best_a] = merged
        sizes[best_a] = na + nb
        del sizes[best_b]
        active.remove(best_b)
        labels[labels == best_b] = best_a
        n_clusters -= 1

    contiguous, found_k = relabel_contiguous(labels)
    if found_k != k:
        raise ClusteringError(f"expected {k} clusters, produced {found_k}")
    return ClusterSolution(labels=contiguous, k=k, algorithm="agglo")
