"""Internal clustering-quality indexes — the paper's Table 2.

The paper's first contribution is five new internal indexes built from
CLUTO's per-cluster ISIM/ESIM statistics, used to predict the number of
senses k of a candidate term.  With ``a_k``.. ``f_k`` as printed:

=====  ============================================================  =========
index  definition                                                    direction
=====  ============================================================  =========
a_k    mean of ISIM_i over clusters                                  max
b_k    mean of ESIM_i over clusters                                  min
c_k    (1/k) Σ_i |S_i| · (ISIM_i − ESIM_i)                           max
e_k    Σ_i |S_i|·ISIM_i  /  Σ_i |S_i|·ESIM_i                          max
f_k    a_k / log10(k)                                                max
=====  ============================================================  =========

Note on c_k/e_k: the paper's printed formulas carry mismatched subscripts
(``ESIM_k`` in c_k, ``ISIM_k`` in e_k).  The sensible per-cluster reading
(above) is the default; ``paper_notation=True`` computes the literal
printed variant, where the ``_k`` quantities are the solution-level means.

Classic internal indexes (silhouette, Calinski–Harabasz, Davies–Bouldin)
are included as ablation baselines (DESIGN.md A1).
"""

from __future__ import annotations

import math

import numpy as np

from repro.clustering.model import ClusterStats
from repro.clustering.similarity import (
    as_float_array,
    cosine_similarity_matrix,
    normalize_rows,
)
from repro.errors import ClusteringError

#: The paper's five new indexes, in Table 2 order.
PAPER_INDEXES = ("ak", "bk", "ck", "ek", "fk")

#: Baseline indexes used in the A1 ablation.
BASELINE_INDEXES = ("silhouette", "calinski_harabasz", "davies_bouldin")

#: Whether each index selects k by max or min over candidate solutions.
INDEX_DIRECTIONS: dict[str, str] = {
    "ak": "max",
    "bk": "min",
    "ck": "max",
    "ek": "max",
    "fk": "max",
    "silhouette": "max",
    "calinski_harabasz": "max",
    "davies_bouldin": "min",
}


def index_names(*, include_baselines: bool = True) -> tuple[str, ...]:
    """All known index names (paper's five first)."""
    if include_baselines:
        return PAPER_INDEXES + BASELINE_INDEXES
    return PAPER_INDEXES


# -- the paper's indexes ------------------------------------------------------


def ak_index(stats: ClusterStats) -> float:
    """a_k — average ISIM over clusters (maximise)."""
    return stats.mean_isim()


def bk_index(stats: ClusterStats) -> float:
    """b_k — average ESIM over clusters (minimise)."""
    return stats.mean_esim()


def ck_index(stats: ClusterStats, *, paper_notation: bool = False) -> float:
    """c_k — size-weighted mean ISIM−ESIM gap (maximise).

    ``paper_notation=True`` uses the printed ``ESIM_k`` (the solution-level
    mean ESIM) instead of each cluster's own ESIM_i.
    """
    esim = np.full_like(stats.esim, stats.mean_esim()) if paper_notation else stats.esim
    return float((stats.sizes * (stats.isim - esim)).sum() / stats.k)


def ek_index(stats: ClusterStats, *, paper_notation: bool = False) -> float:
    """e_k — ratio of size-weighted ISIM mass to ESIM mass (maximise).

    ``paper_notation=True`` uses the printed ``ISIM_k`` (solution-level
    mean ISIM) in the numerator.
    """
    isim = np.full_like(stats.isim, stats.mean_isim()) if paper_notation else stats.isim
    numerator = float((stats.sizes * isim).sum())
    denominator = float((stats.sizes * stats.esim).sum())
    if denominator == 0.0:
        # Perfectly separated clusters: make the ratio saturate rather
        # than blow up, so comparisons across k stay meaningful.
        return math.inf if numerator > 0 else 0.0
    return numerator / denominator


def fk_index(stats: ClusterStats) -> float:
    """f_k — mean ISIM divided by log10(k) (maximise); requires k ≥ 2."""
    if stats.k < 2:
        raise ClusteringError("f_k is undefined for k < 2 (log10(k) = 0)")
    return stats.mean_isim() / math.log10(stats.k)


# -- baseline indexes --------------------------------------------------------


def silhouette_index(matrix, labels: np.ndarray) -> float:
    """Mean silhouette coefficient under cosine distance (maximise)."""
    labels = np.asarray(labels)
    sims = cosine_similarity_matrix(matrix)
    dist = 1.0 - sims
    n = labels.shape[0]
    k = int(labels.max()) + 1
    if k < 2:
        raise ClusteringError("silhouette requires at least 2 clusters")
    members = [np.where(labels == i)[0] for i in range(k)]
    scores = np.zeros(n)
    for idx in range(n):
        own = labels[idx]
        own_members = members[own]
        if own_members.size <= 1:
            scores[idx] = 0.0
            continue
        a = dist[idx, own_members].sum() / (own_members.size - 1)
        b = min(
            dist[idx, other].mean()
            for j, other in enumerate(members)
            if j != own and other.size
        )
        denom = max(a, b)
        scores[idx] = (b - a) / denom if denom > 0 else 0.0
    return float(scores.mean())


def calinski_harabasz_index(matrix, labels: np.ndarray) -> float:
    """Calinski–Harabasz (variance ratio) on unit-normalised rows (maximise)."""
    labels = np.asarray(labels)
    unit = normalize_rows(as_float_array(matrix))
    dense = unit.toarray() if hasattr(unit, "toarray") else unit
    n, _ = dense.shape
    k = int(labels.max()) + 1
    if k < 2 or n <= k:
        raise ClusteringError("Calinski-Harabasz requires 2 <= k < n")
    overall = dense.mean(axis=0)
    between, within = 0.0, 0.0
    for i in range(k):
        cluster = dense[labels == i]
        if cluster.shape[0] == 0:
            continue
        centroid = cluster.mean(axis=0)
        between += cluster.shape[0] * float(((centroid - overall) ** 2).sum())
        within += float(((cluster - centroid) ** 2).sum())
    if within == 0.0:
        return math.inf
    return (between / (k - 1)) / (within / (n - k))


def davies_bouldin_index(matrix, labels: np.ndarray) -> float:
    """Davies–Bouldin on unit-normalised rows (minimise)."""
    labels = np.asarray(labels)
    unit = normalize_rows(as_float_array(matrix))
    dense = unit.toarray() if hasattr(unit, "toarray") else unit
    k = int(labels.max()) + 1
    if k < 2:
        raise ClusteringError("Davies-Bouldin requires at least 2 clusters")
    centroids, spreads = [], []
    for i in range(k):
        cluster = dense[labels == i]
        centroid = cluster.mean(axis=0) if cluster.shape[0] else np.zeros(dense.shape[1])
        centroids.append(centroid)
        spreads.append(
            float(np.linalg.norm(cluster - centroid, axis=1).mean())
            if cluster.shape[0]
            else 0.0
        )
    worst = []
    for i in range(k):
        ratios = []
        for j in range(k):
            if i == j:
                continue
            gap = float(np.linalg.norm(centroids[i] - centroids[j]))
            ratios.append((spreads[i] + spreads[j]) / gap if gap > 0 else math.inf)
        worst.append(max(ratios))
    return float(np.mean(worst))


# -- dispatch -----------------------------------------------------------------


def compute_index(
    name: str,
    matrix,
    labels: np.ndarray,
    *,
    stats: ClusterStats | None = None,
    paper_notation: bool = False,
) -> float:
    """Compute index ``name`` for the clustering ``labels`` of ``matrix``.

    Parameters
    ----------
    name:
        One of :func:`index_names`.
    matrix / labels:
        The data and the clustering to score.
    stats:
        Precomputed :class:`ClusterStats` (saves recomputation when many
        indexes are evaluated on the same solution).
    paper_notation:
        Use the literally-printed Table 2 formulas for c_k / e_k.
    """
    if name in PAPER_INDEXES:
        if stats is None:
            stats = ClusterStats.from_labels(matrix, labels)
        if name == "ak":
            return ak_index(stats)
        if name == "bk":
            return bk_index(stats)
        if name == "ck":
            return ck_index(stats, paper_notation=paper_notation)
        if name == "ek":
            return ek_index(stats, paper_notation=paper_notation)
        return fk_index(stats)
    if name == "silhouette":
        return silhouette_index(matrix, labels)
    if name == "calinski_harabasz":
        return calinski_harabasz_index(matrix, labels)
    if name == "davies_bouldin":
        return davies_bouldin_index(matrix, labels)
    raise ClusteringError(
        f"unknown index {name!r}; options: {', '.join(index_names())}"
    )
