"""Spherical k-means: the engine behind CLUTO's ``direct`` method.

Maximises the I2 criterion: assign each unit vector to the centroid with
the highest cosine similarity, recompute centroids as normalised cluster
means, repeat.  Seeding is k-means++-flavoured on cosine distance;
empty clusters are re-seeded with the worst-assigned object, so the
requested k is always realised.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.clustering.model import ClusterSolution
from repro.clustering.similarity import as_float_array, normalize_rows
from repro.errors import ClusteringError
from repro.utils.rng import ensure_rng


def _to_dense_rows(matrix, indices) -> np.ndarray:
    rows = matrix[indices]
    if sp.issparse(rows):
        return rows.toarray()
    return np.atleast_2d(rows)


def _plusplus_seeds(
    unit, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ style seeding on cosine distance (1 − similarity)."""
    n = unit.shape[0]
    first = int(rng.integers(0, n))
    seeds = [first]
    sims = np.asarray((unit @ unit[first].T).todense()).ravel() if sp.issparse(unit) \
        else unit @ unit[first]
    best_sim = sims.copy()
    while len(seeds) < k:
        dist = np.clip(1.0 - best_sim, 0.0, None)
        dist[seeds] = 0.0
        total = dist.sum()
        if total <= 0.0:
            # Degenerate data (all identical): pick distinct arbitrary rows.
            remaining = [i for i in range(n) if i not in seeds]
            seeds.append(remaining[int(rng.integers(0, len(remaining)))])
            continue
        pick = int(rng.choice(n, p=dist / total))
        seeds.append(pick)
        sims = np.asarray((unit @ unit[pick].T).todense()).ravel() if sp.issparse(unit) \
            else unit @ unit[pick]
        best_sim = np.maximum(best_sim, sims)
    return np.asarray(seeds)


def _centroids_from_labels(unit, labels: np.ndarray, k: int) -> np.ndarray:
    n_features = unit.shape[1]
    centroids = np.zeros((k, n_features))
    for i in range(k):
        members = np.where(labels == i)[0]
        if members.size == 0:
            continue
        mean = _to_dense_rows(unit, members).mean(axis=0)
        norm = np.linalg.norm(mean)
        centroids[i] = mean / norm if norm > 0 else mean
    return centroids


def spherical_kmeans(
    matrix,
    k: int,
    *,
    max_iter: int = 50,
    n_init: int = 3,
    seed: int | np.random.Generator | None = None,
    init_labels: np.ndarray | None = None,
) -> ClusterSolution:
    """Cluster the rows of ``matrix`` into ``k`` groups (cosine k-means).

    Parameters
    ----------
    matrix:
        (n, d) dense or sparse; rows are L2-normalised internally.
    k:
        Number of clusters, ``1 <= k <= n``.
    max_iter:
        Assignment/update iterations per restart.
    n_init:
        Independent restarts; the solution with the best I2 wins.
        Ignored when ``init_labels`` is given.
    seed:
        RNG seed.
    init_labels:
        Warm start (used by ``rbr`` refinement): skip seeding and refine
        this assignment instead.
    """
    matrix = as_float_array(matrix)
    n = matrix.shape[0]
    if not 1 <= k <= n:
        raise ClusteringError(f"k must be in [1, {n}], got {k}")
    unit = normalize_rows(matrix)
    rng = ensure_rng(seed)

    if k == 1:
        return ClusterSolution(
            labels=np.zeros(n, dtype=np.int64), k=1, algorithm="direct"
        )

    def run(start_labels: np.ndarray | None) -> tuple[np.ndarray, float]:
        if start_labels is None:
            seeds = _plusplus_seeds(unit, k, rng)
            centroids = _to_dense_rows(unit, seeds)
        else:
            centroids = _centroids_from_labels(unit, start_labels, k)
        labels = start_labels
        for _ in range(max_iter):
            sims = unit @ centroids.T
            if sp.issparse(sims):
                sims = sims.toarray()
            new_labels = np.asarray(sims).argmax(axis=1)
            # Re-seed empty clusters with the globally worst-fitting object.
            assigned_sim = np.asarray(sims)[np.arange(n), new_labels]
            for i in range(k):
                if not np.any(new_labels == i):
                    worst = int(np.argmin(assigned_sim))
                    new_labels[worst] = i
                    assigned_sim[worst] = np.inf
            if labels is not None and np.array_equal(new_labels, labels):
                break
            labels = new_labels
            centroids = _centroids_from_labels(unit, labels, k)
        # I2 = sum over clusters of the composite-vector norm.
        i2 = 0.0
        for i in range(k):
            members = np.where(labels == i)[0]
            if members.size:
                composite = _to_dense_rows(unit, members).sum(axis=0)
                i2 += float(np.linalg.norm(composite))
        return labels, i2

    if init_labels is not None:
        init_labels = np.asarray(init_labels, dtype=np.int64)
        if init_labels.shape[0] != n:
            raise ClusteringError("init_labels length must match matrix rows")
        labels, _ = run(init_labels)
        return ClusterSolution(labels=labels, k=k, algorithm="direct")

    best_labels, best_i2 = None, -np.inf
    for _ in range(max(1, n_init)):
        labels, i2 = run(None)
        if i2 > best_i2:
            best_labels, best_i2 = labels, i2
    return ClusterSolution(labels=best_labels, k=k, algorithm="direct")
