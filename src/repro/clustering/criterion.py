"""CLUTO criterion functions.

The partitional algorithms optimise a global criterion over the
clustering.  CLUTO's default (and what the paper's setup uses) is **I2**:

    I2 = Σ_i ‖D_i‖      (maximise)

where ``D_i`` is the composite (summed) vector of cluster i's unit rows —
equivalent to spherical k-means' objective.  I1, E1, H1, H2 are provided
for completeness and ablation.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.similarity import as_float_array, composite_vector
from repro.errors import ClusteringError

CRITERIA = ("i1", "i2", "e1", "h1", "h2")


def _composites(matrix, labels: np.ndarray) -> list[np.ndarray]:
    labels = np.asarray(labels)
    k = int(labels.max()) + 1 if labels.size else 0
    return [
        composite_vector(matrix, np.where(labels == i)[0]) for i in range(k)
    ]


def criterion_value(matrix, labels: np.ndarray, criterion: str = "i2") -> float:
    """Value of ``criterion`` for the clustering ``labels`` of ``matrix``.

    ``i1``/``i2``/``h1``/``h2`` are maximisation criteria; ``e1`` is a
    minimisation criterion (callers compare accordingly).
    """
    criterion = criterion.lower()
    if criterion not in CRITERIA:
        raise ClusteringError(
            f"unknown criterion {criterion!r}; options: {', '.join(CRITERIA)}"
        )
    matrix = as_float_array(matrix)
    labels = np.asarray(labels)
    if labels.shape[0] != matrix.shape[0]:
        raise ClusteringError("labels length must match matrix rows")
    composites = _composites(matrix, labels)
    sizes = np.bincount(labels, minlength=len(composites)).astype(np.float64)
    norms = np.array([float(np.linalg.norm(d)) for d in composites])

    if criterion == "i2":
        return float(norms.sum())
    if criterion == "i1":
        with np.errstate(divide="ignore", invalid="ignore"):
            vals = np.where(sizes > 0, norms**2 / np.maximum(sizes, 1), 0.0)
        return float(vals.sum())

    total = composite_vector(matrix, np.arange(matrix.shape[0]))
    total_norm = float(np.linalg.norm(total))
    e1_terms = []
    for size, d, norm in zip(sizes, composites, norms, strict=True):
        if size == 0 or norm == 0.0 or total_norm == 0.0:
            e1_terms.append(0.0)
        else:
            e1_terms.append(size * float(d @ total) / (norm * total_norm))
    e1 = float(sum(e1_terms))
    if criterion == "e1":
        return e1
    if e1 == 0.0:
        raise ClusteringError("H criteria undefined: E1 is zero")
    if criterion == "h1":
        i1 = criterion_value(matrix, labels, "i1")
        return i1 / e1
    i2 = float(norms.sum())
    return i2 / e1
