"""Graph-partitioning clustering: CLUTO's ``graph`` method.

Builds the object nearest-neighbour similarity graph and partitions it:
communities are found by modularity maximisation (the shared
:mod:`repro.clustering.community` backend, native Louvain by default),
then adjusted to exactly k clusters — extra communities are merged by
highest inter-community average similarity, missing ones are created by
bisecting the loosest cluster.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.clustering.community import CommunityBackend, get_community_backend
from repro.clustering.kmeans import spherical_kmeans
from repro.clustering.model import ClusterSolution, relabel_contiguous
from repro.clustering.similarity import cosine_similarity_matrix
from repro.errors import ClusteringError
from repro.utils.rng import ensure_rng


def build_knn_graph(sims: np.ndarray, n_neighbors: int) -> nx.Graph:
    """Symmetric kNN graph from a similarity matrix (edges keep weights)."""
    n = sims.shape[0]
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    order = np.argsort(-sims, axis=1)
    for i in range(n):
        added = 0
        for j in order[i]:
            j = int(j)
            if j == i:
                continue
            weight = float(sims[i, j])
            if weight <= 0.0:
                break
            graph.add_edge(i, j, weight=max(weight, 1e-12))
            added += 1
            if added >= n_neighbors:
                break
    return graph


def _mean_inter_similarity(
    sims: np.ndarray, members_a: np.ndarray, members_b: np.ndarray
) -> float:
    return float(sims[np.ix_(members_a, members_b)].mean())


def graph_cluster(
    matrix,
    k: int,
    *,
    n_neighbors: int = 10,
    seed: int | np.random.Generator | None = None,
    backend: str | CommunityBackend = "louvain",
) -> ClusterSolution:
    """Cluster rows of ``matrix`` into ``k`` groups via graph partitioning.

    Parameters
    ----------
    matrix:
        (n, d) dense or sparse data.
    k:
        Target number of clusters.
    n_neighbors:
        Nearest-neighbour count of the similarity graph.
    seed:
        RNG seed (community detection when the backend is seedable, and
        splitting clusters to reach k).
    backend:
        Community-detection backend (``"louvain"`` native default,
        ``"greedy"`` networkx fallback).
    """
    sims = cosine_similarity_matrix(matrix)
    n = sims.shape[0]
    if not 1 <= k <= n:
        raise ClusteringError(f"k must be in [1, {n}], got {k}")
    rng = ensure_rng(seed)

    graph = build_knn_graph(sims, n_neighbors=min(n_neighbors, n - 1))
    communities = get_community_backend(backend).communities(
        graph, weight="weight", seed=rng
    )
    labels = np.zeros(n, dtype=np.int64)
    for cid, community in enumerate(communities):
        for node in community:
            labels[node] = cid
    labels, n_found = relabel_contiguous(labels)

    # Merge down: repeatedly fuse the most similar pair of clusters.
    while n_found > k:
        members = [np.where(labels == i)[0] for i in range(n_found)]
        best_pair, best_sim = None, -np.inf
        for a in range(n_found):
            for b in range(a + 1, n_found):
                inter = _mean_inter_similarity(sims, members[a], members[b])
                if inter > best_sim:
                    best_pair, best_sim = (a, b), inter
        a, b = best_pair
        labels[labels == b] = a
        labels, n_found = relabel_contiguous(labels)

    # Split up: bisect the cluster with the lowest internal similarity.
    while n_found < k:
        members = [np.where(labels == i)[0] for i in range(n_found)]
        splittable = [m for m in members if m.size >= 2]
        if not splittable:
            raise ClusteringError(f"cannot reach k={k}: all clusters singleton")
        internal = [
            float(sims[np.ix_(m, m)].mean()) if m.size >= 2 else np.inf
            for m in members
        ]
        target = int(np.argmin(internal))
        target_members = members[target]
        split = spherical_kmeans(matrix[target_members], 2, seed=rng)
        labels[target_members[split.labels == 1]] = n_found
        labels, n_found = relabel_contiguous(labels)

    return ClusterSolution(labels=labels, k=k, algorithm="graph")
