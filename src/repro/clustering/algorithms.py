"""The algorithm registry: the paper's five CLUTO methods by name."""

from __future__ import annotations

import numpy as np

from repro.clustering.agglomerative import agglomerative_cluster
from repro.clustering.bisecting import repeated_bisection
from repro.clustering.graphclust import graph_cluster
from repro.clustering.kmeans import spherical_kmeans
from repro.clustering.model import ClusterSolution
from repro.errors import ClusteringError

#: The five algorithm names exactly as the paper lists them.
ALGORITHM_NAMES = ("rb", "rbr", "direct", "agglo", "graph")


def cluster(
    matrix,
    k: int,
    *,
    method: str = "rb",
    seed: int | np.random.Generator | None = None,
) -> ClusterSolution:
    """Cluster the rows of ``matrix`` into ``k`` groups with ``method``.

    Parameters
    ----------
    matrix:
        (n, d) dense or scipy-sparse data (rows normalised internally).
    k:
        Number of clusters.
    method:
        One of :data:`ALGORITHM_NAMES` — ``rb`` (repeated bisection),
        ``rbr`` (rb + refinement), ``direct`` (k-way spherical k-means),
        ``agglo`` (UPGMA), ``graph`` (kNN-graph partitioning).
    seed:
        RNG seed for the stochastic methods (``agglo`` is deterministic).

    Returns
    -------
    ClusterSolution
        Labels with ``stats`` attached (ISIM/ESIM per cluster), ready for
        the internal indexes.
    """
    if method not in ALGORITHM_NAMES:
        raise ClusteringError(
            f"unknown method {method!r}; options: {', '.join(ALGORITHM_NAMES)}"
        )
    if method == "rb":
        solution = repeated_bisection(matrix, k, refine=False, seed=seed)
    elif method == "rbr":
        solution = repeated_bisection(matrix, k, refine=True, seed=seed)
    elif method == "direct":
        solution = spherical_kmeans(matrix, k, seed=seed)
    elif method == "agglo":
        solution = agglomerative_cluster(matrix, k)
    else:
        solution = graph_cluster(matrix, k, seed=seed)
    return solution.with_stats(matrix)
