"""Cosine similarity kernels shared by the clustering algorithms.

Everything downstream assumes **unit-norm rows**; :func:`normalize_rows`
is the single place that normalisation happens.  With unit rows, cosine
similarity is a plain dot product, and per-cluster statistics reduce to
norms of composite (summed) vectors — the trick CLUTO uses to compute
ISIM/ESIM without materialising the n×n similarity matrix.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

Matrix = "np.ndarray | sp.spmatrix"


def as_float_array(matrix) -> "np.ndarray | sp.csr_matrix":
    """Coerce input to float64 dense ndarray or CSR sparse matrix."""
    if sp.issparse(matrix):
        return matrix.tocsr().astype(np.float64)
    arr = np.asarray(matrix, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {arr.shape}")
    return arr


def normalize_rows(matrix):
    """Return a copy of ``matrix`` with L2-normalised rows (zero rows kept)."""
    matrix = as_float_array(matrix)
    if sp.issparse(matrix):
        norms = np.sqrt(matrix.multiply(matrix).sum(axis=1)).A.ravel()
        norms[norms == 0.0] = 1.0
        return (sp.diags(1.0 / norms) @ matrix).tocsr()
    norms = np.linalg.norm(matrix, axis=1)
    norms[norms == 0.0] = 1.0
    return matrix / norms[:, None]


def cosine_similarity_matrix(matrix) -> np.ndarray:
    """Dense n×n cosine similarity of the rows of ``matrix``."""
    unit = normalize_rows(matrix)
    product = unit @ unit.T
    sims = product.toarray() if sp.issparse(product) else product
    return np.clip(sims, -1.0, 1.0)


def composite_vector(matrix, indices: np.ndarray) -> np.ndarray:
    """Sum of the selected rows as a dense 1-D vector (CLUTO's D_i)."""
    rows = matrix[indices]
    if sp.issparse(rows):
        return np.asarray(rows.sum(axis=0)).ravel()
    return rows.sum(axis=0)


def isim_esim(matrix, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-cluster (sizes, ISIM, ESIM) of a clustering of ``matrix``.

    Rows are L2-normalised internally, then (CLUTO conventions,
    self-pairs included):

    * ``ISIM_i`` — average pairwise cosine similarity among the objects of
      cluster i: ``‖D_i‖² / n_i²`` where ``D_i`` is the cluster's composite
      vector;
    * ``ESIM_i`` — average similarity between cluster-i objects and all
      objects outside the cluster: ``D_i · (D − D_i) / (n_i (N − n_i))``
      (0 when the cluster holds the entire collection).

    Returns arrays aligned with cluster ids ``0..k-1``.
    """
    matrix = normalize_rows(as_float_array(matrix))
    labels = np.asarray(labels)
    n = matrix.shape[0]
    if labels.shape[0] != n:
        raise ValueError(f"labels length {labels.shape[0]} != n rows {n}")
    k = int(labels.max()) + 1 if n else 0
    total = composite_vector(matrix, np.arange(n))
    sizes = np.zeros(k, dtype=np.int64)
    isim = np.zeros(k, dtype=np.float64)
    esim = np.zeros(k, dtype=np.float64)
    for i in range(k):
        members = np.where(labels == i)[0]
        n_i = members.size
        sizes[i] = n_i
        if n_i == 0:
            continue
        d_i = composite_vector(matrix, members)
        isim[i] = float(d_i @ d_i) / (n_i * n_i)
        outside = n - n_i
        if outside > 0:
            esim[i] = float(d_i @ (total - d_i)) / (n_i * outside)
    return sizes, isim, esim
