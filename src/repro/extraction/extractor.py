"""The BioTex pipeline: harvest candidates, rank them, emit candidate terms."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.corpus.corpus import Corpus
from repro.errors import ExtractionError
from repro.extraction.candidates import ExtractionContext, harvest_candidates
from repro.extraction.measures import MEASURE_NAMES, compute_measure
from repro.text.patterns import TermPatternMatcher
from repro.text.postag import LexiconTagger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.corpus.index import CorpusIndex


@dataclass(frozen=True)
class RankedTerm:
    """A candidate term with its ranking score."""

    term: str
    tokens: tuple[str, ...]
    score: float
    frequency: int
    rank: int


class BioTexExtractor:
    """End-to-end Step I: corpus in, ranked candidate terms out.

    Parameters
    ----------
    language:
        ``"en"``, ``"fr"``, or ``"es"`` — selects patterns and stopwords.
    measure:
        Ranking measure (default the paper's flagship ``lidf_value``).
    tagger:
        POS tagger.  For generated corpora pass
        ``LexiconTagger(lexicon.pos_lexicon)`` so tags are gold.
    matcher:
        POS pattern inventory (defaults to the language's).
    min_frequency:
        Minimum corpus frequency for a candidate to be ranked.
    min_length:
        Minimum candidate length in tokens (2 skips single words, which
        is how BioTex is typically run for ontology enrichment).
    stop_words:
        Domain stop list; candidates containing any of these words are
        dropped at harvest time.

    Example
    -------
    >>> from repro.corpus.document import Document
    >>> from repro.corpus.corpus import Corpus
    >>> corpus = Corpus([Document.from_text("d", "Corneal injury heals.")])
    >>> extractor = BioTexExtractor(measure="tf_idf", min_length=2)
    >>> [t.term for t in extractor.extract(corpus)][:1]
    ['corneal injury']
    """

    def __init__(
        self,
        *,
        language: str = "en",
        measure: str = "lidf_value",
        tagger: LexiconTagger | None = None,
        matcher: TermPatternMatcher | None = None,
        min_frequency: int = 1,
        min_length: int = 1,
        stop_words: frozenset[str] | set[str] | None = None,
    ) -> None:
        if measure not in MEASURE_NAMES:
            raise ExtractionError(
                f"unknown measure {measure!r}; options: {', '.join(MEASURE_NAMES)}"
            )
        if min_length < 1:
            raise ExtractionError(f"min_length must be >= 1, got {min_length}")
        self.language = language
        self.measure = measure
        self.tagger = tagger
        self.matcher = matcher
        self.min_frequency = min_frequency
        self.min_length = min_length
        self.stop_words = stop_words
        self.context_: ExtractionContext | None = None

    def build_context(
        self, corpus: Corpus, *, index: "CorpusIndex | None" = None
    ) -> ExtractionContext:
        """Harvest candidates from ``corpus`` (kept on ``context_``)."""
        context = harvest_candidates(
            corpus,
            tagger=self.tagger,
            matcher=self.matcher,
            language=self.language,
            min_frequency=self.min_frequency,
            stop_words=self.stop_words,
            index=index,
        )
        self.context_ = context
        return context

    def extract(
        self,
        corpus: Corpus,
        *,
        top_k: int | None = None,
        measure: str | None = None,
        index: "CorpusIndex | None" = None,
    ) -> list[RankedTerm]:
        """Extract and rank candidate terms from ``corpus``.

        Parameters
        ----------
        top_k:
            Keep only the best ``top_k`` candidates (None = all).
        measure:
            Override the instance's ranking measure for this call.
        index:
            Optional shared :class:`~repro.corpus.index.CorpusIndex`
            reused for corpus statistics during harvesting.
        """
        measure = measure if measure is not None else self.measure
        context = self.build_context(corpus, index=index)
        scores = compute_measure(measure, context)
        eligible = [
            (tokens, score)
            for tokens, score in scores.items()
            if len(tokens) >= self.min_length
        ]
        # Stable, fully deterministic order: score desc, then term text.
        eligible.sort(key=lambda pair: (-pair[1], pair[0]))
        if top_k is not None:
            if top_k < 1:
                raise ExtractionError(f"top_k must be >= 1, got {top_k}")
            eligible = eligible[:top_k]
        return [
            RankedTerm(
                term=" ".join(tokens),
                tokens=tokens,
                score=float(score),
                frequency=context.candidates[tokens].frequency,
                rank=rank,
            )
            for rank, (tokens, score) in enumerate(eligible, start=1)
        ]
