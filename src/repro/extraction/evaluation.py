"""Extraction evaluation: precision@k against a reference terminology.

The IRJ-2016 companion paper compares measures by the precision of their
top-k lists against UMLS: a proposed candidate counts as correct when it
is a known term.  Here the reference is the generated ontology, whose
term set is known exactly.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import ExtractionError
from repro.extraction.extractor import RankedTerm
from repro.ontology.model import Ontology, normalize_term


def reference_terms_from_ontology(ontology: Ontology) -> set[str]:
    """Every (normalised) term string of ``ontology`` as the gold set."""
    return set(ontology.terms())


def precision_at_k(
    ranked: Sequence[RankedTerm],
    reference: Iterable[str],
    k: int,
) -> float:
    """Fraction of the top-``k`` ranked terms present in ``reference``."""
    if k < 1:
        raise ExtractionError(f"k must be >= 1, got {k}")
    reference_set = {normalize_term(t) for t in reference}
    top = ranked[:k]
    if not top:
        return 0.0
    hits = sum(1 for t in top if normalize_term(t.term) in reference_set)
    return hits / len(top)


def precision_curve(
    ranked: Sequence[RankedTerm],
    reference: Iterable[str],
    ks: Sequence[int] = (10, 50, 100, 200),
) -> dict[int, float]:
    """Precision@k for several cutoffs at once."""
    reference_set = {normalize_term(t) for t in reference}
    out = {}
    for k in ks:
        top = ranked[:k]
        hits = sum(1 for t in top if normalize_term(t.term) in reference_set)
        out[k] = hits / len(top) if top else 0.0
    return out
