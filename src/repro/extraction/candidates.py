"""Candidate-term harvesting: POS-pattern filtering plus counting.

Produces the :class:`ExtractionContext` every ranking measure consumes:
candidate phrases (with frequency, document frequency, per-document
counts, best matching pattern weight) and corpus-level statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.corpus.corpus import Corpus
from repro.errors import ExtractionError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.corpus.index import CorpusIndex
from repro.text.ngrams import extract_pattern_phrases
from repro.text.patterns import TermPatternMatcher
from repro.text.postag import LexiconTagger


@dataclass
class CandidateStats:
    """Counters for one candidate term.

    Attributes
    ----------
    tokens:
        The candidate as a lower-cased token tuple.
    frequency:
        Total occurrences in the corpus.
    pattern_weight:
        Weight of its (best) matching POS pattern — LIDF-value's
        linguistic-probability component.
    per_doc:
        Occurrences per document id (Okapi's per-document tf).
    """

    tokens: tuple[str, ...]
    frequency: int = 0
    pattern_weight: float = 0.0
    per_doc: dict[str, int] = field(default_factory=dict)

    @property
    def doc_frequency(self) -> int:
        """Number of documents containing the candidate."""
        return len(self.per_doc)

    @property
    def length(self) -> int:
        """Candidate length in tokens."""
        return len(self.tokens)

    def text(self) -> str:
        """The candidate as a plain string."""
        return " ".join(self.tokens)


@dataclass
class ExtractionContext:
    """Everything the measures need about a corpus's candidates.

    Attributes
    ----------
    candidates:
        token-tuple → :class:`CandidateStats`.
    n_documents:
        Corpus size.
    doc_lengths:
        Token count per document id.
    language:
        The corpus language (selects patterns/stopwords downstream).
    """

    candidates: dict[tuple[str, ...], CandidateStats]
    n_documents: int
    doc_lengths: dict[str, int]
    language: str = "en"
    _containers: dict[tuple[str, ...], list[CandidateStats]] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def avg_doc_length(self) -> float:
        """Mean document length in tokens."""
        if not self.doc_lengths:
            return 0.0
        return sum(self.doc_lengths.values()) / len(self.doc_lengths)

    def _container_index(self) -> dict[tuple[str, ...], list[CandidateStats]]:
        """Sub-span → containing candidates, built once and cached.

        Candidates are short phrases, so enumerating every strict
        contiguous sub-span of every candidate is O(candidates · len²) —
        far cheaper than the O(candidates²) all-pairs scan it replaces.
        """
        if self._containers is None:
            containers: dict[tuple[str, ...], list[CandidateStats]] = {}
            for stats in self.candidates.values():
                tokens = stats.tokens
                length = stats.length
                spans = {
                    tokens[i : i + l]
                    for l in range(1, length)
                    for i in range(length - l + 1)
                }
                for span in spans:
                    containers.setdefault(span, []).append(stats)
            self._containers = containers
        return self._containers

    def nested_in(self, tokens: tuple[str, ...]) -> list[CandidateStats]:
        """Candidates that strictly contain ``tokens`` as a sub-sequence.

        Used by C-value's nested-term correction.
        """
        return self._container_index().get(tuple(tokens), [])


def harvest_candidates(
    corpus: Corpus,
    *,
    tagger: LexiconTagger | None = None,
    matcher: TermPatternMatcher | None = None,
    language: str = "en",
    min_frequency: int = 1,
    stop_words: frozenset[str] | set[str] | None = None,
    index: "CorpusIndex | None" = None,
) -> ExtractionContext:
    """Scan ``corpus`` and build the :class:`ExtractionContext`.

    Parameters
    ----------
    corpus:
        The documents to mine.
    tagger:
        POS tagger; defaults to a bare suffix-rule tagger (pass one
        seeded with the generator's POS lexicon for gold tags).
    matcher:
        Pattern inventory; defaults to the language's standard patterns.
    min_frequency:
        Candidates occurring fewer times are dropped.
    stop_words:
        Domain stop list (BioTex ships one for general-academic
        vocabulary: "study", "results", ...).  Candidates containing any
        stoplisted word are dropped, as are degenerate candidates that
        repeat a token ("study study").
    index:
        Optional prebuilt :class:`~repro.corpus.index.CorpusIndex`; the
        harvest reads document lengths from it instead of re-flattening
        every document.  Candidate counting itself stays sentence-bounded
        (POS patterns never cross sentences).
    """
    if corpus.n_documents() == 0:
        raise ExtractionError("cannot extract terms from an empty corpus")
    if min_frequency < 1:
        raise ExtractionError(f"min_frequency must be >= 1, got {min_frequency}")
    tagger = tagger if tagger is not None else LexiconTagger(language=language)
    matcher = matcher if matcher is not None else TermPatternMatcher(language=language)
    stop = frozenset(w.lower() for w in stop_words) if stop_words else frozenset()

    candidates: dict[tuple[str, ...], CandidateStats] = {}
    doc_lengths = index.doc_lengths() if index is not None else {}
    for doc in corpus:
        if index is None:
            doc_lengths[doc.doc_id] = doc.n_tokens()
        for sentence in doc.sentences:
            tagged = tagger.tag(sentence)
            for phrase, weight in extract_pattern_phrases(tagged, matcher):
                if stop and any(word in stop for word in phrase):
                    continue
                if len(set(phrase)) != len(phrase):
                    continue
                stats = candidates.get(phrase)
                if stats is None:
                    stats = CandidateStats(tokens=phrase)
                    candidates[phrase] = stats
                stats.frequency += 1
                stats.pattern_weight = max(stats.pattern_weight, weight)
                stats.per_doc[doc.doc_id] = stats.per_doc.get(doc.doc_id, 0) + 1

    if min_frequency > 1:
        candidates = {
            tokens: stats
            for tokens, stats in candidates.items()
            if stats.frequency >= min_frequency
        }
    return ExtractionContext(
        candidates=candidates,
        n_documents=corpus.n_documents(),
        doc_lengths=doc_lengths,
        language=language,
    )
