"""Step I — BioTex-style biomedical term extraction.

The paper's Step I runs BIOTEX, the authors' term-extraction application,
which implements the measures of their companion paper [4] (Lossio-Ventura
et al., IRJ 2016): pattern-filtered candidates ranked by C-value, TF-IDF,
Okapi BM25, the fusion measures F-TFIDF-C and F-OCapi, the flagship
LIDF-value, and the graph-based TeRGraph.  This subpackage implements all
of them over the :mod:`repro.text` substrate.
"""

from repro.extraction.candidates import CandidateStats, ExtractionContext, harvest_candidates
from repro.extraction.evaluation import precision_at_k, reference_terms_from_ontology
from repro.extraction.extractor import BioTexExtractor, RankedTerm
from repro.extraction.measures import MEASURE_NAMES, compute_measure

__all__ = [
    "BioTexExtractor",
    "CandidateStats",
    "ExtractionContext",
    "MEASURE_NAMES",
    "RankedTerm",
    "compute_measure",
    "harvest_candidates",
    "precision_at_k",
    "reference_terms_from_ontology",
]
