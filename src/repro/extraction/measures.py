"""Term-ranking measures and their registry.

Every measure maps an :class:`~repro.extraction.candidates.ExtractionContext`
to ``{candidate tokens: score}``; higher is always better.  The inventory
follows the paper's companion IRJ-2016 paper [4]:

============  ===============================================================
name          definition
============  ===============================================================
c_value       Frantzi's C-value with log2(len+1) length factor and nested-
              term correction
tf_idf        corpus tf × smoothed idf
okapi         BM25 mass of the candidate over all documents
f_tfidf_c     harmonic fusion of TF-IDF and C-value
f_ocapi       harmonic fusion of Okapi and C-value
lidf_value    pattern probability × idf × C-value (the paper's flagship)
tergraph      graph-based termhood over the candidate co-occurrence graph
============  ===============================================================
"""

from __future__ import annotations

import math
from collections.abc import Callable

from repro.errors import ExtractionError
from repro.extraction.candidates import ExtractionContext
from repro.text.vectorize import idf_weight

Scores = "dict[tuple[str, ...], float]"

# BM25 constants (standard Robertson parameters).
_BM25_K1 = 1.2
_BM25_B = 0.75


def c_value(context: ExtractionContext) -> dict:
    """C-value: length-weighted frequency with nested-term correction.

    ``C(t) = log2(|t|+1) · f(t)`` for maximal candidates; when t is nested
    inside longer candidates T_t, the average frequency of those longer
    candidates is subtracted from f(t) first.
    """
    scores = {}
    for tokens, stats in context.candidates.items():
        longer = context.nested_in(tokens)
        frequency = float(stats.frequency)
        if longer:
            frequency -= sum(o.frequency for o in longer) / len(longer)
        scores[tokens] = math.log2(stats.length + 1) * frequency
    return scores


def tf_idf(context: ExtractionContext) -> dict:
    """Corpus term frequency × smoothed inverse document frequency."""
    return {
        tokens: stats.frequency
        * idf_weight(context.n_documents, stats.doc_frequency)
        for tokens, stats in context.candidates.items()
    }


def okapi(context: ExtractionContext) -> dict:
    """Okapi BM25 mass of each candidate summed over its documents."""
    avgdl = max(context.avg_doc_length, 1e-9)
    scores = {}
    for tokens, stats in context.candidates.items():
        idf = idf_weight(context.n_documents, stats.doc_frequency)
        total = 0.0
        for doc_id, tf in stats.per_doc.items():
            dl = context.doc_lengths.get(doc_id, avgdl)
            denom = tf + _BM25_K1 * (1.0 - _BM25_B + _BM25_B * dl / avgdl)
            total += idf * tf * (_BM25_K1 + 1.0) / denom
        scores[tokens] = total
    return scores


def _harmonic_fusion(a: dict, b: dict) -> dict:
    out = {}
    for tokens in a:
        x, y = a[tokens], b[tokens]
        # Scores can be negative after nested correction; harmonic fusion
        # is only meaningful on the positive part.
        x, y = max(x, 0.0), max(y, 0.0)
        out[tokens] = 2.0 * x * y / (x + y) if x + y > 0 else 0.0
    return out


def f_tfidf_c(context: ExtractionContext) -> dict:
    """Harmonic-mean fusion of TF-IDF and C-value."""
    return _harmonic_fusion(tf_idf(context), c_value(context))


def f_ocapi(context: ExtractionContext) -> dict:
    """Harmonic-mean fusion of Okapi BM25 and C-value."""
    return _harmonic_fusion(okapi(context), c_value(context))


def lidf_value(context: ExtractionContext) -> dict:
    """LIDF-value: pattern probability × idf × C-value.

    The linguistic component is the candidate's POS-pattern weight (the
    rank-derived probability of :mod:`repro.text.patterns`), which is what
    lets LIDF-value promote well-formed rare terms over frequent noise.
    """
    cval = c_value(context)
    scores = {}
    for tokens, stats in context.candidates.items():
        idf = idf_weight(context.n_documents, stats.doc_frequency)
        scores[tokens] = stats.pattern_weight * idf * max(cval[tokens], 0.0)
    return scores


def tergraph(context: ExtractionContext) -> dict:
    """TeRGraph-style termhood over the candidate co-occurrence graph.

    Candidates co-occur when they appear in the same document.  Following
    TeRGraph's intuition — a real term keeps focused company — a candidate
    scores ``log2(1 + 1/(1+|N(t)|) · Σ_{u∈N(t)} 1/|N(u)|)``: having few
    neighbours that are themselves specific is rewarded, hub-like noisy
    candidates are demoted.  (Adapted from the IRJ-2016 description; the
    original operates on a web-scale co-occurrence graph.)
    """
    # Build document → candidates inverted index, then neighbour sets.
    by_doc: dict[str, list[tuple[str, ...]]] = {}
    for tokens, stats in context.candidates.items():
        for doc_id in stats.per_doc:
            by_doc.setdefault(doc_id, []).append(tokens)
    neighbors: dict[tuple[str, ...], set[tuple[str, ...]]] = {
        tokens: set() for tokens in context.candidates
    }
    for members in by_doc.values():
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                if a != b:
                    neighbors[a].add(b)
                    neighbors[b].add(a)
    scores = {}
    for tokens in context.candidates:
        ns = neighbors[tokens]
        mass = sum(1.0 / max(len(neighbors[u]), 1) for u in ns)
        scores[tokens] = math.log2(1.0 + mass / (1.0 + len(ns)))
    return scores


_REGISTRY: dict[str, Callable[[ExtractionContext], dict]] = {
    "c_value": c_value,
    "tf_idf": tf_idf,
    "okapi": okapi,
    "f_tfidf_c": f_tfidf_c,
    "f_ocapi": f_ocapi,
    "lidf_value": lidf_value,
    "tergraph": tergraph,
}

#: All measure names, flagship first.
MEASURE_NAMES = ("lidf_value", "c_value", "tf_idf", "okapi", "f_tfidf_c", "f_ocapi", "tergraph")


def compute_measure(name: str, context: ExtractionContext) -> dict:
    """Compute measure ``name`` over ``context`` (see :data:`MEASURE_NAMES`)."""
    try:
        fn = _REGISTRY[name]
    except KeyError:
        raise ExtractionError(
            f"unknown measure {name!r}; options: {', '.join(MEASURE_NAMES)}"
        ) from None
    return fn(context)
