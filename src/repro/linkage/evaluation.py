"""Linkage evaluation: the paper's Table 4 protocol.

For each held-out term (a term added to MeSH between two releases), the
linker proposes 10 positions; a term scores a *hit at k* when at least one
of its top-k propositions is a correct paradigmatic relation — a synonym,
a father, or a son of the term's true concept.  Table 4 reports the
fraction of terms with a hit at k ∈ {1, 2, 5, 10}.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.errors import LinkageError
from repro.linkage.linker import Proposition, SemanticLinker
from repro.ontology.model import Ontology, normalize_term


def gold_positions(ontology: Ontology, concept_id: str, candidate: str) -> set[str]:
    """The correct positions of ``candidate``: synonyms, fathers, sons."""
    key = normalize_term(candidate)
    gold: set[str] = set()
    concept = ontology.concept(concept_id)
    gold.update(concept.all_terms())
    for father in ontology.fathers(concept_id):
        gold.update(ontology.concept(father).all_terms())
    for son in ontology.sons(concept_id):
        gold.update(ontology.concept(son).all_terms())
    gold.discard(key)
    return gold


@dataclass
class TermLinkageOutcome:
    """Evaluation record for one held-out term."""

    term: str
    concept_id: str
    propositions: list[Proposition]
    gold: set[str]
    error: str | None = None

    def hit_at(self, k: int) -> bool:
        """True when a correct position appears in the top k propositions."""
        return any(
            normalize_term(p.term) in self.gold for p in self.propositions[:k]
        )

    def correct_in_top(self, k: int) -> int:
        """Number of correct positions among the top k propositions."""
        return sum(
            1 for p in self.propositions[:k] if normalize_term(p.term) in self.gold
        )


@dataclass
class LinkageEvaluation:
    """Aggregated Table 4 numbers over all evaluated terms."""

    outcomes: list[TermLinkageOutcome] = field(default_factory=list)
    ks: tuple[int, ...] = (1, 2, 5, 10)

    @property
    def n_terms(self) -> int:
        """Number of evaluated terms (failed linkings count as misses)."""
        return len(self.outcomes)

    def precision_at(self, k: int) -> float:
        """Fraction of terms with at least one correct top-k proposition."""
        if not self.outcomes:
            return 0.0
        hits = sum(1 for outcome in self.outcomes if outcome.hit_at(k))
        return hits / len(self.outcomes)

    def as_row(self) -> dict[int, float]:
        """``{k: precision}`` for the configured cutoffs — Table 4's row."""
        return {k: self.precision_at(k) for k in self.ks}


def evaluate_linkage(
    linker: SemanticLinker,
    held_out: Sequence,
    *,
    ks: tuple[int, ...] = (1, 2, 5, 10),
) -> LinkageEvaluation:
    """Run the Table 4 protocol.

    Parameters
    ----------
    linker:
        A configured :class:`SemanticLinker` whose ontology still
        *contains* the held-out concepts (the paper evaluates against
        MeSH 2015) — the candidate term itself is excluded from the
        propositions by the linker.
    held_out:
        :class:`~repro.ontology.snapshot.HeldOutTerm` records (term +
        true concept id).
    """
    evaluation = LinkageEvaluation(ks=ks)
    for held in held_out:
        gold = gold_positions(linker.ontology, held.concept_id, held.term)
        try:
            propositions = linker.propose(held.term)
            error = None
        except LinkageError as exc:
            propositions = []
            error = str(exc)
        evaluation.outcomes.append(
            TermLinkageOutcome(
                term=held.term,
                concept_id=held.concept_id,
                propositions=propositions,
                gold=gold,
                error=error,
            )
        )
    return evaluation
