"""MeSH-neighbourhood selection via the term co-occurrence graph.

Step IV.1: "Creation of term co-occurrence graph with terms extracted in
(I), selecting only the MeSH neighborhood of a candidate term."  The
candidate positions are the ontology terms that co-occur with the
candidate in the corpus, expanded (IV.2) with the fathers and sons of the
concepts those neighbours name.
"""

from __future__ import annotations

import networkx as nx

from repro.corpus.corpus import Corpus
from repro.errors import LinkageError
from repro.ontology.model import Ontology, normalize_term
from repro.text.cooccurrence import CooccurrenceGraphBuilder


def build_term_graph(
    corpus: Corpus,
    ontology: Ontology,
    candidate: str,
    *,
    window: int = 8,
    stop_language: str | None = None,
) -> nx.Graph:
    """Term co-occurrence graph over ontology terms plus the candidate.

    Multi-word ontology terms (and the candidate) are merged into single
    graph nodes before windowed counting.
    """
    term_tuples = [tuple(t.split()) for t in ontology.terms()]
    term_tuples.append(tuple(normalize_term(candidate).split()))
    builder = CooccurrenceGraphBuilder(
        window=window, stop_language=stop_language, terms=term_tuples
    )
    # The cached index supplies each document's flattened tokens.
    return builder.build(corpus.index().token_documents())


def mesh_neighborhood(
    graph: nx.Graph,
    ontology: Ontology,
    candidate: str,
    *,
    expand_hierarchy: bool = True,
) -> list[str]:
    """Ontology terms in the candidate's co-occurrence neighbourhood.

    Parameters
    ----------
    graph:
        A term co-occurrence graph (see :func:`build_term_graph`).
    ontology:
        The target ontology.
    candidate:
        The candidate term (must not itself count as a position).
    expand_hierarchy:
        Also include every term of the fathers/sons of the concepts the
        direct neighbours name (the paper's IV.2 expansion).

    Returns
    -------
    Sorted list of normalised position terms.  Empty when the candidate
    never co-occurs with an ontology term.
    """
    key = normalize_term(candidate)
    if key not in graph:
        return []
    neighbor_terms = {
        node for node in graph.neighbors(key) if ontology.has_term(node)
    }
    neighbor_terms.discard(key)
    if not expand_hierarchy:
        return sorted(neighbor_terms)

    concept_ids: set[str] = set()
    for term in neighbor_terms:
        concept_ids.update(ontology.concepts_for_term(term))
    expanded = ontology.position_candidates(concept_ids)
    positions = set(neighbor_terms)
    for cid in expanded:
        positions.update(ontology.concept(cid).all_terms())
    positions.discard(key)
    return sorted(positions)


def candidate_positions(
    corpus: Corpus,
    ontology: Ontology,
    candidate: str,
    *,
    window: int = 8,
    expand_hierarchy: bool = True,
    fallback_to_all: bool = True,
) -> list[str]:
    """End-to-end position-set computation for one candidate term.

    When the candidate has no co-occurrence neighbourhood (tiny corpora),
    ``fallback_to_all`` degrades gracefully to every ontology term —
    without it an unseen candidate raises :class:`LinkageError`.
    """
    graph = build_term_graph(corpus, ontology, candidate, window=window)
    positions = mesh_neighborhood(
        graph, ontology, candidate, expand_hierarchy=expand_hierarchy
    )
    if positions:
        return positions
    if fallback_to_all:
        key = normalize_term(candidate)
        return sorted(t for t in ontology.terms() if t != key)
    raise LinkageError(
        f"candidate {candidate!r} has no MeSH neighbourhood in the corpus"
    )
