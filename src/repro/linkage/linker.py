"""The semantic linker: ranked position propositions for a candidate term."""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

import networkx as nx

from repro.corpus.corpus import Corpus
from repro.corpus.index import CorpusIndex
from repro.errors import LinkageError
from repro.linkage.context import TermContextIndex
from repro.linkage.neighborhood import build_term_graph, mesh_neighborhood
from repro.ontology.model import Ontology, normalize_term


@dataclass(frozen=True)
class Proposition:
    """One proposed ontology position for a candidate term.

    Attributes
    ----------
    rank:
        1-based rank in the proposition list.
    term:
        The ontology term proposed as a position (synonym / father / son
        candidate).
    concept_ids:
        The concept(s) the position term names.
    cosine:
        Context cosine similarity between candidate and position.
    """

    rank: int
    term: str
    concept_ids: tuple[str, ...]
    cosine: float


class SemanticLinker:
    """Step IV end-to-end: candidate term in, ranked propositions out.

    The expensive artefacts — the term co-occurrence graph and the shared
    context-vector index — are built **once** on first use and reused for
    every subsequent :meth:`propose` call, so positioning the paper's 60
    evaluation terms costs one corpus pass, not sixty.

    Parameters
    ----------
    ontology:
        The ontology to position into.
    corpus:
        The context source (the paper uses the PubMed contexts of the
        candidate term).
    extra_terms:
        Candidate terms that are *not* ontology terms but will be
        positioned later (lets them join the shared graph/index build).
    window:
        Context window for the cosine vectors.
    graph_window:
        Co-occurrence window for the neighbourhood graph.
    top_k:
        Number of propositions returned (the paper proposes 10).
    expand_hierarchy:
        Include fathers/sons of neighbours (IV.2); ablation knob A4.
    index:
        Optional prebuilt :class:`~repro.corpus.index.CorpusIndex`; both
        shared artefacts (graph and context vectors) are derived from it
        (defaults to the corpus's cached index).

    Example
    -------
    ``linker.propose("corneal injuries")`` returns the Table 3 layout:
    ranked terms with cosine scores.
    """

    def __init__(
        self,
        ontology: Ontology,
        corpus: Corpus,
        *,
        extra_terms: Iterable[str] = (),
        window: int = 10,
        graph_window: int = 8,
        top_k: int = 10,
        expand_hierarchy: bool = True,
        index: CorpusIndex | None = None,
    ) -> None:
        if top_k < 1:
            raise LinkageError(f"top_k must be >= 1, got {top_k}")
        self.ontology = ontology
        self.corpus = corpus
        self._corpus_index = index
        self._index_supplied = index is not None
        self.window = window
        self.graph_window = graph_window
        self.top_k = top_k
        self.expand_hierarchy = expand_hierarchy
        self._extra_terms = {normalize_term(t) for t in extra_terms}
        self._graph: nx.Graph | None = None
        self._index: TermContextIndex | None = None

    # -- shared artefacts ---------------------------------------------------

    def _known_terms(self) -> list[str]:
        return sorted(set(self.ontology.terms()) | self._extra_terms)

    def prepare(self) -> "SemanticLinker":
        """Build the shared co-occurrence graph and context index now."""
        terms = self._known_terms()
        builder_terms = [tuple(t.split()) for t in terms]
        from repro.text.cooccurrence import CooccurrenceGraphBuilder

        if not self._index_supplied:
            # Re-fetch on every (re)build: corpus.index() is cached, and a
            # rebuild after corpus.add must see the added documents.
            self._corpus_index = self.corpus.index()
        builder = CooccurrenceGraphBuilder(
            window=self.graph_window, stop_language=None, terms=builder_terms
        )
        self._graph = builder.build(self._corpus_index.token_documents())
        self._index = TermContextIndex(
            self.corpus, window=self.window, index=self._corpus_index
        )
        self._index.build(terms)
        return self

    def _ensure_prepared(self, candidate: str) -> tuple[nx.Graph, TermContextIndex]:
        if candidate not in self._extra_terms and not self.ontology.has_term(
            candidate
        ):
            # Unanticipated candidate: fold it in and rebuild once.
            self._extra_terms.add(candidate)
            self._graph = None
            self._index = None
        if self._graph is None or self._index is None:
            self.prepare()
        return self._graph, self._index

    # -- the Step IV protocol ---------------------------------------------------

    def positions_for(self, candidate: str) -> list[str]:
        """The candidate-position set (neighbourhood ± hierarchy expansion)."""
        key = normalize_term(candidate)
        graph, __ = self._ensure_prepared(key)
        positions = mesh_neighborhood(
            graph, self.ontology, key, expand_hierarchy=self.expand_hierarchy
        )
        if positions:
            return positions
        # Degenerate corpora: no observed co-occurrence → all terms.
        return sorted(t for t in self.ontology.terms() if t != key)

    def propose(self, candidate: str) -> list[Proposition]:
        """Ranked ontology positions for ``candidate``.

        Raises :class:`LinkageError` when the candidate has no corpus
        context at all (nothing to compare with).
        """
        key = normalize_term(candidate)
        __, index = self._ensure_prepared(key)
        if index.n_contexts(key) == 0:
            raise LinkageError(
                f"candidate {candidate!r} has no context in the corpus"
            )
        positions = self.positions_for(key)
        if not positions:
            raise LinkageError(f"no candidate positions for {candidate!r}")
        scored = []
        for position in positions:
            if position == key or index.n_contexts(position) == 0:
                continue
            scored.append((position, index.cosine(key, position)))
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return [
            Proposition(
                rank=rank,
                term=term,
                concept_ids=tuple(self.ontology.concepts_for_term(term)),
                cosine=float(score),
            )
            for rank, (term, score) in enumerate(scored[: self.top_k], start=1)
        ]


def build_candidate_graph(
    corpus: Corpus, ontology: Ontology, candidate: str, *, window: int = 8
) -> nx.Graph:
    """One-off term graph for a single candidate (see also ``prepare``)."""
    return build_term_graph(corpus, ontology, candidate, window=window)
