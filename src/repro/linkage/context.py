"""Term context vectors over a shared space.

Step IV compares the candidate term's corpus context with the contexts of
every potential position by cosine.  :class:`TermContextIndex` builds one
aggregate context document per term — all tokens within ``window`` of any
occurrence — and embeds them in a common TF-IDF space.

:func:`find_occurrences` locates every occurrence of *many* terms in one
pass over the corpus (longest-match-first by first token), since the
evaluation positions dozens of terms against thousands of documents.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.corpus.corpus import Corpus
from repro.errors import LinkageError
from repro.ontology.model import normalize_term
from repro.text.vectorize import TfidfVectorizer


def find_occurrence_records(
    corpus: Corpus,
    terms: Iterable[str],
    *,
    window: int = 10,
) -> dict[str, list[tuple[str, tuple[str, ...]]]]:
    """(doc_id, window) records of every term of ``terms``, one corpus pass.

    Returns ``{normalised term: [(doc_id, window tokens), ...]}``; the
    occurrence tokens themselves are excluded from the window (they carry
    no disambiguation signal).  Overlapping occurrences of different terms
    are all reported; the longest term wins at any single start position.
    """
    needles: dict[str, list[tuple[str, tuple[str, ...]]]] = {}
    by_first: dict[str, list[tuple[str, ...]]] = {}
    for term in terms:
        tokens = tuple(normalize_term(term).split())
        if not tokens:
            continue
        needles[" ".join(tokens)] = []
        by_first.setdefault(tokens[0], []).append(tokens)
    for candidates in by_first.values():
        candidates.sort(key=len, reverse=True)

    for doc in corpus:
        tokens = doc.tokens()
        n = len(tokens)
        for i, token in enumerate(tokens):
            for needle in by_first.get(token, ()):
                span = len(needle)
                if i + span <= n and tuple(tokens[i : i + span]) == needle:
                    left = tokens[max(0, i - window) : i]
                    right = tokens[i + span : i + span + window]
                    needles[" ".join(needle)].append(
                        (doc.doc_id, tuple(left + right))
                    )
                    break  # longest match at this position only
    return needles


def find_occurrences(
    corpus: Corpus,
    terms: Iterable[str],
    *,
    window: int = 10,
) -> dict[str, list[tuple[str, ...]]]:
    """Context windows of every term of ``terms``, in one corpus pass.

    Convenience wrapper over :func:`find_occurrence_records` that drops
    the document ids.
    """
    records = find_occurrence_records(corpus, terms, window=window)
    return {
        term: [window_tokens for __, window_tokens in entries]
        for term, entries in records.items()
    }


class TermContextIndex:
    """Aggregate context vectors for a set of terms over a shared space.

    Parameters
    ----------
    corpus:
        Context source.
    window:
        Tokens kept each side of an occurrence.

    Usage
    -----
    ``build(terms)`` retrieves contexts (one corpus pass) and fits the
    TF-IDF space; ``vector(term)`` then returns the unit-norm aggregate
    context vector, and ``cosine(a, b)`` the similarity of two terms.
    """

    def __init__(self, corpus: Corpus, *, window: int = 10) -> None:
        self.corpus = corpus
        self.window = window
        self._rows: dict[str, np.ndarray] | None = None
        self._n_contexts: dict[str, int] = {}

    def build(self, terms: Sequence[str]) -> "TermContextIndex":
        """Retrieve contexts for ``terms`` and fit the shared space."""
        occurrences = find_occurrences(self.corpus, terms, window=self.window)
        documents: list[list[str]] = []
        keys: list[str] = []
        for term, contexts in occurrences.items():
            keys.append(term)
            self._n_contexts[term] = len(contexts)
            documents.append([token for ctx in contexts for token in ctx])
        vectorizer = TfidfVectorizer(stop_language=None)
        matrix = vectorizer.fit_transform(documents).toarray()
        self._rows = {key: matrix[i] for i, key in enumerate(keys)}
        return self

    def _require_built(self) -> dict[str, np.ndarray]:
        if self._rows is None:
            raise LinkageError("TermContextIndex.build() must run first")
        return self._rows

    def n_contexts(self, term: str) -> int:
        """Number of occurrences found for ``term``."""
        self._require_built()
        return self._n_contexts.get(normalize_term(term), 0)

    def vector(self, term: str) -> np.ndarray:
        """Unit-norm aggregate context vector of ``term``."""
        rows = self._require_built()
        key = normalize_term(term)
        if key not in rows:
            raise LinkageError(f"term {term!r} was not indexed")
        return rows[key]

    def cosine(self, term_a: str, term_b: str) -> float:
        """Cosine similarity between two indexed terms' contexts."""
        return float(self.vector(term_a) @ self.vector(term_b))
