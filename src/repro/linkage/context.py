"""Term context vectors over a shared space.

Step IV compares the candidate term's corpus context with the contexts of
every potential position by cosine.  :class:`TermContextIndex` builds one
aggregate context document per term — all tokens within ``window`` of any
occurrence — and embeds them in a common TF-IDF space.

Occurrence retrieval is served by the corpus's shared positional index
(:class:`repro.corpus.index.CorpusIndex`): :func:`find_occurrence_records`
delegates to :meth:`CorpusIndex.occurrence_records`, which locates every
occurrence of *many* terms through their postings (longest match wins at
any single start position) instead of rescanning the documents.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.corpus.corpus import Corpus
from repro.corpus.index import CorpusIndex
from repro.errors import LinkageError
from repro.ontology.model import normalize_term
from repro.text.vectorize import TfidfVectorizer


def find_occurrence_records(
    corpus: Corpus,
    terms: Iterable[str],
    *,
    window: int = 10,
    index: CorpusIndex | None = None,
) -> dict[str, list[tuple[str, tuple[str, ...]]]]:
    """(doc_id, window) records of every term of ``terms``.

    Returns ``{normalised term: [(doc_id, window tokens), ...]}``; the
    occurrence tokens themselves are excluded from the window (they carry
    no disambiguation signal).  Overlapping occurrences of different terms
    are all reported; the longest term wins at any single start position.

    Pass a prebuilt ``index`` to share one :class:`CorpusIndex` across
    callers; otherwise the corpus's cached index is used.
    """
    index = index if index is not None else corpus.index()
    return index.occurrence_records(terms, window=window)


def find_occurrences(
    corpus: Corpus,
    terms: Iterable[str],
    *,
    window: int = 10,
    index: CorpusIndex | None = None,
) -> dict[str, list[tuple[str, ...]]]:
    """Context windows of every term of ``terms``.

    Convenience wrapper over :func:`find_occurrence_records` that drops
    the document ids.
    """
    records = find_occurrence_records(corpus, terms, window=window, index=index)
    return {
        term: [window_tokens for __, window_tokens in entries]
        for term, entries in records.items()
    }


class TermContextIndex:
    """Aggregate context vectors for a set of terms over a shared space.

    Parameters
    ----------
    corpus:
        Context source.
    window:
        Tokens kept each side of an occurrence.
    index:
        Optional prebuilt :class:`CorpusIndex` to retrieve occurrences
        through (defaults to the corpus's cached index).

    Usage
    -----
    ``build(terms)`` retrieves contexts through the positional index and
    fits the TF-IDF space; ``vector(term)`` then returns the unit-norm
    aggregate context vector, and ``cosine(a, b)`` the similarity of two
    terms.
    """

    def __init__(
        self,
        corpus: Corpus,
        *,
        window: int = 10,
        index: CorpusIndex | None = None,
    ) -> None:
        self.corpus = corpus
        self.window = window
        self._corpus_index = index
        self._rows: dict[str, np.ndarray] | None = None
        self._n_contexts: dict[str, int] = {}

    def build(self, terms: Sequence[str]) -> "TermContextIndex":
        """Retrieve contexts for ``terms`` and fit the shared space."""
        occurrences = find_occurrences(
            self.corpus, terms, window=self.window, index=self._corpus_index
        )
        documents: list[list[str]] = []
        keys: list[str] = []
        for term, contexts in occurrences.items():
            keys.append(term)
            self._n_contexts[term] = len(contexts)
            documents.append([token for ctx in contexts for token in ctx])
        vectorizer = TfidfVectorizer(stop_language=None)
        matrix = vectorizer.fit_transform(documents).toarray()
        self._rows = {key: matrix[i] for i, key in enumerate(keys)}
        return self

    def _require_built(self) -> dict[str, np.ndarray]:
        if self._rows is None:
            raise LinkageError("TermContextIndex.build() must run first")
        return self._rows

    def n_contexts(self, term: str) -> int:
        """Number of occurrences found for ``term``."""
        self._require_built()
        return self._n_contexts.get(normalize_term(term), 0)

    def vector(self, term: str) -> np.ndarray:
        """Unit-norm aggregate context vector of ``term``."""
        rows = self._require_built()
        key = normalize_term(term)
        if key not in rows:
            raise LinkageError(f"term {term!r} was not indexed")
        return rows[key]

    def cosine(self, term_a: str, term_b: str) -> float:
        """Cosine similarity between two indexed terms' contexts."""
        return float(self.vector(term_a) @ self.vector(term_b))
