"""Relation typing — the paper's stated future work, implemented.

"A perspective of this work is to extract the type of relations.  This
could be performed with the linguistic patterns (e.g. the verbs used
between two terms) and the associated contexts."

Given a candidate term and a proposed position, this module classifies
the *paradigmatic relation type* between them — ``synonym``,
``hyperonym`` (the position is a father), ``hyponym`` (the position is a
son), or ``related`` — from two complementary signals:

1. **lexico-syntactic patterns** between co-mentions in the corpus
   (Hearst-style: "X is a Y", "Y such as X", "X, also called Y", and the
   verbs linking the two terms);
2. **distributional evidence**: context-vector cosine (synonyms are
   near-duplicates) and context-breadth asymmetry (a hyperonym's context
   distribution is broader than its hyponym's).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from collections.abc import Sequence

from repro.corpus.corpus import Corpus
from repro.corpus.index import CorpusIndex
from repro.errors import LinkageError
from repro.linkage.context import TermContextIndex
from repro.ontology.model import normalize_term

#: The relation types this classifier can emit.
RELATION_TYPES = ("synonym", "hyperonym", "hyponym", "related")

# Hearst-style patterns; {a} is the candidate, {b} the position.  Each
# maps to the relation of b to a ("b is a hyperonym of a", ...).
_PATTERNS: tuple[tuple[tuple[str, ...], str], ...] = (
    (("is", "a"), "hyperonym"),
    (("is", "an"), "hyperonym"),
    (("is", "a", "type", "of"), "hyperonym"),
    (("is", "a", "kind", "of"), "hyperonym"),
    (("is", "a", "form", "of"), "hyperonym"),
    (("such", "as"), "hyponym"),
    (("including",), "hyponym"),
    (("especially",), "hyponym"),
    (("for", "example",), "hyponym"),
    (("also", "called"), "synonym"),
    (("also", "known", "as"), "synonym"),
    (("known", "as"), "synonym"),
    (("or",), "synonym"),
)


@dataclass(frozen=True)
class TypedRelation:
    """A typed link between the candidate term and one position.

    Attributes
    ----------
    candidate / position:
        The two (normalised) terms.
    relation:
        One of :data:`RELATION_TYPES` — the type of ``position``
        relative to ``candidate`` (``hyperonym`` = proposed father).
    confidence:
        Heuristic confidence in [0, 1].
    pattern_votes:
        Counts of pattern matches per relation type (evidence trail).
    cosine:
        Context cosine between the two terms.
    """

    candidate: str
    position: str
    relation: str
    confidence: float
    pattern_votes: dict[str, int]
    cosine: float


def _match_between(between: Sequence[str]) -> str | None:
    """Relation voted by the tokens strictly between two term mentions."""
    joined = tuple(between)
    for pattern, relation in _PATTERNS:
        if joined[: len(pattern)] == pattern or joined[-len(pattern) :] == pattern:
            return relation
    return None


def collect_pattern_votes(
    corpus: Corpus,
    candidate: str,
    position: str,
    *,
    max_gap: int = 6,
    index: CorpusIndex | None = None,
) -> Counter:
    """Count Hearst-style pattern matches between co-mentions.

    Locates every occurrence of both terms through the corpus's
    positional index, pairs co-mentions at most ``max_gap`` tokens apart,
    and matches the infix against the pattern inventory.  Direction
    matters: "A is a B" votes hyperonym(B), while "B is a A" (candidate
    second) votes the inverse, hyponym(B).
    """
    a = tuple(normalize_term(candidate).split())
    b = tuple(normalize_term(position).split())
    votes: Counter = Counter()
    inverse = {"hyperonym": "hyponym", "hyponym": "hyperonym", "synonym": "synonym"}
    if not a or not b:
        return votes
    index = index if index is not None else corpus.index()
    occurrences_a: dict[int, list[int]] = {}
    for ordinal, start in index.phrase_occurrences(a):
        occurrences_a.setdefault(ordinal, []).append(start)
    occurrences_b: dict[int, list[int]] = {}
    for ordinal, start in index.phrase_occurrences(b):
        occurrences_b.setdefault(ordinal, []).append(start)
    documents = index.token_documents()
    for ordinal, positions_a in occurrences_a.items():
        positions_b = occurrences_b.get(ordinal)
        if positions_b is None:
            continue
        tokens = documents[ordinal]
        for i in positions_a:
            for j in positions_b:
                if j > i and j - (i + len(a)) <= max_gap:
                    relation = _match_between(tokens[i + len(a) : j])
                    if relation:
                        votes[relation] += 1
                elif i > j and i - (j + len(b)) <= max_gap:
                    relation = _match_between(tokens[j + len(b) : i])
                    if relation:
                        votes[inverse[relation]] += 1
    return votes


class RelationTyper:
    """Classify the relation type between a candidate and its positions.

    Parameters
    ----------
    corpus:
        The context source.
    synonym_cosine:
        Cosine above which, absent pattern evidence, the pair is typed
        ``synonym`` (near-duplicate contexts).
    breadth_margin:
        Relative context-count asymmetry required to call the direction
        of a hyperonym/hyponym pair distributionally.
    corpus_index:
        Optional prebuilt :class:`~repro.corpus.index.CorpusIndex`
        shared by context retrieval and pattern voting (defaults to the
        corpus's cached index).
    """

    def __init__(
        self,
        corpus: Corpus,
        *,
        synonym_cosine: float = 0.8,
        breadth_margin: float = 1.5,
        window: int = 10,
        corpus_index: CorpusIndex | None = None,
    ) -> None:
        if not 0.0 < synonym_cosine <= 1.0:
            raise LinkageError("synonym_cosine must be in (0, 1]")
        if breadth_margin < 1.0:
            raise LinkageError("breadth_margin must be >= 1")
        self.corpus = corpus
        self.synonym_cosine = synonym_cosine
        self.breadth_margin = breadth_margin
        self.window = window
        self._corpus_index = corpus_index

    def type_relation(
        self,
        candidate: str,
        position: str,
        *,
        index: TermContextIndex | None = None,
    ) -> TypedRelation:
        """Type the relation of ``position`` relative to ``candidate``.

        Pattern votes win when present; otherwise distributional evidence
        decides: very high cosine ⇒ synonym; a clearly broader position
        context ⇒ hyperonym; clearly narrower ⇒ hyponym; else related.
        """
        candidate = normalize_term(candidate)
        position = normalize_term(position)
        if index is None:
            index = TermContextIndex(
                self.corpus, window=self.window, index=self._corpus_index
            )
            index.build([candidate, position])
        cosine = index.cosine(candidate, position)
        votes = collect_pattern_votes(
            self.corpus, candidate, position, index=self._corpus_index
        )

        if votes:
            relation, count = votes.most_common(1)[0]
            total = sum(votes.values())
            confidence = 0.5 + 0.5 * count / total
        elif cosine >= self.synonym_cosine:
            relation, confidence = "synonym", min(1.0, cosine)
        else:
            n_candidate = max(index.n_contexts(candidate), 1)
            n_position = max(index.n_contexts(position), 1)
            if n_position / n_candidate >= self.breadth_margin:
                relation, confidence = "hyperonym", 0.5
            elif n_candidate / n_position >= self.breadth_margin:
                relation, confidence = "hyponym", 0.5
            else:
                relation, confidence = "related", 0.4
        return TypedRelation(
            candidate=candidate,
            position=position,
            relation=relation,
            confidence=float(confidence),
            pattern_votes=dict(votes),
            cosine=float(cosine),
        )

    def type_propositions(
        self, candidate: str, positions: Sequence[str]
    ) -> list[TypedRelation]:
        """Type every position of a proposition list with a shared index."""
        candidate = normalize_term(candidate)
        terms = [candidate] + [normalize_term(p) for p in positions]
        index = TermContextIndex(self.corpus, window=self.window)
        index.build(terms)
        return [
            self.type_relation(candidate, position, index=index)
            for position in positions
        ]
