"""Step IV — semantic linkage: positioning a candidate term in the ontology.

The paper's protocol: (1) build a term co-occurrence graph from the
corpus, keeping the candidate term's MeSH neighbourhood; (2) rank that
neighbourhood — plus the fathers and sons of its members — by the cosine
similarity between the candidate's context and each position's context;
propose the top 10.
"""

from repro.linkage.context import (
    TermContextIndex,
    find_occurrence_records,
    find_occurrences,
)
from repro.linkage.evaluation import LinkageEvaluation, evaluate_linkage
from repro.linkage.linker import Proposition, SemanticLinker
from repro.linkage.neighborhood import mesh_neighborhood
from repro.linkage.relations import RELATION_TYPES, RelationTyper, TypedRelation

__all__ = [
    "LinkageEvaluation",
    "Proposition",
    "RELATION_TYPES",
    "RelationTyper",
    "SemanticLinker",
    "TermContextIndex",
    "TypedRelation",
    "evaluate_linkage",
    "find_occurrence_records",
    "find_occurrences",
    "mesh_neighborhood",
]
