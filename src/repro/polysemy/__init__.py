"""Step II — polysemy detection.

"This step seeks to predict if candidate terms are polysemic. ... Totally,
23 features were proposed, 11 direct and 12 from the induced graph.  Their
effectiveness showed an F-measure of 98%."

:mod:`repro.polysemy.direct_features` implements the 11 text-statistical
features, :mod:`repro.polysemy.graph_features` the 12 features of the
term's induced co-occurrence graph, and :class:`PolysemyDetector` wraps a
:mod:`repro.ml` classifier over the assembled 23-dimensional vectors.
"""

from repro.polysemy.cache import FeatureCache
from repro.polysemy.cache_store import (
    CacheStore,
    DiskCacheStore,
    MemoryCacheStore,
)
from repro.polysemy.dataset import (
    PolysemyDataset,
    build_entity_polysemy_dataset,
    build_polysemy_dataset,
)
from repro.polysemy.detector import PolysemyDetector
from repro.polysemy.features import (
    ALL_FEATURE_NAMES,
    DIRECT_FEATURE_NAMES,
    GRAPH_FEATURE_NAMES,
    PolysemyFeatureExtractor,
)

__all__ = [
    "ALL_FEATURE_NAMES",
    "CacheStore",
    "DIRECT_FEATURE_NAMES",
    "DiskCacheStore",
    "FeatureCache",
    "GRAPH_FEATURE_NAMES",
    "MemoryCacheStore",
    "PolysemyDataset",
    "PolysemyDetector",
    "PolysemyFeatureExtractor",
    "build_entity_polysemy_dataset",
    "build_polysemy_dataset",
]
