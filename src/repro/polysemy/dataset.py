"""Labelled polysemy data sets built from an ontology and its corpus.

Ground truth comes from the ontology: a term naming two or more concepts
is polysemic.  Features come from the corpus contexts of the term.  The
resulting (X, y) feeds the Step II classifiers and their CV evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.corpus import Corpus
from repro.corpus.index import CorpusIndex
from repro.errors import CorpusError, ValidationError
from repro.ontology.model import Ontology
from repro.polysemy.cache import FeatureCache
from repro.polysemy.features import PolysemyFeatureExtractor


@dataclass(frozen=True)
class PolysemyDataset:
    """A labelled feature matrix for polysemy detection.

    Attributes
    ----------
    X:
        (n_terms, n_features) feature matrix.
    y:
        1 = polysemic, 0 = monosemous.
    terms:
        Term strings aligned with the rows.
    feature_names:
        Column names.
    """

    X: np.ndarray
    y: np.ndarray
    terms: tuple[str, ...]
    feature_names: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.X.shape[0] != self.y.shape[0] or self.X.shape[0] != len(self.terms):
            raise ValidationError("X, y, and terms must be aligned")

    @property
    def n_samples(self) -> int:
        """Number of labelled terms."""
        return int(self.X.shape[0])

    def class_balance(self) -> float:
        """Fraction of polysemic samples."""
        return float(self.y.mean()) if self.y.size else 0.0


def build_entity_polysemy_dataset(
    entities,
    *,
    extractor: PolysemyFeatureExtractor | None = None,
) -> PolysemyDataset:
    """Featurise MSH-WSD-style entities into a labelled dataset.

    Each entity (see :class:`repro.corpus.mshwsd.MshWsdEntity`) carries its
    own labelled contexts; ``true_k >= 2`` ⇒ polysemic, ``true_k == 1`` ⇒
    monosemous control.  This is the benchmark path for the paper's 98 %
    F-measure figure: the per-term context quality matches the MSH WSD
    data set the authors' features were developed against.
    """
    extractor = extractor if extractor is not None else PolysemyFeatureExtractor()
    rows, labels, terms = [], [], []
    for entity in entities:
        vector = extractor.features_from_contexts(entity.term, entity.contexts)
        rows.append(vector)
        labels.append(1 if entity.true_k >= 2 else 0)
        terms.append(entity.term)
    if not rows or len(set(labels)) < 2:
        raise CorpusError("need entities of both classes (true_k == 1 and >= 2)")
    return PolysemyDataset(
        X=np.vstack(rows),
        y=np.asarray(labels, dtype=np.int64),
        terms=tuple(terms),
        feature_names=extractor.feature_names,
    )


def dataset_config_fingerprint(
    extractor: PolysemyFeatureExtractor, *, max_contexts: int = 60
) -> str:
    """The cache-key config fingerprint of :func:`build_polysemy_dataset`.

    One definition for the training-time key format, shared with the
    streaming delta path (:mod:`repro.workflow.streaming`) that migrates
    warm training vectors across corpus fingerprints — the two must
    never drift apart or deltas silently re-featurise every training
    term.  Pins everything that shapes a vector: the extractor settings
    plus the builder's own retrieval cap.
    """
    return f"{extractor.fingerprint()};dataset_max_contexts={max_contexts}"


def build_polysemy_dataset(
    ontology: Ontology,
    corpus: Corpus,
    *,
    extractor: PolysemyFeatureExtractor | None = None,
    min_contexts: int = 4,
    max_contexts: int = 60,
    max_monosemous: int | None = None,
    seed: int | np.random.Generator | None = None,
    index: CorpusIndex | None = None,
    cache: FeatureCache | None = None,
) -> PolysemyDataset:
    """Featurise every usable ontology term into a labelled dataset.

    Parameters
    ----------
    ontology:
        Label source: ``sense_count >= 2`` ⇒ polysemic.
    corpus:
        Context source.
    extractor:
        Feature extractor (defaults to the full 23-feature one).
    min_contexts:
        Terms with fewer corpus occurrences are skipped (their feature
        estimates would be noise).
    max_contexts:
        Frequent terms are capped at this many contexts (an evenly-spaced
        deterministic subsample) — the feature estimates converge well
        before that, and the per-term clustering/graph costs are
        superlinear in the context count.
    max_monosemous:
        Optional cap on monosemous terms to keep classes balanced; a
        seeded subsample is drawn when the cap binds.
    index:
        Optional prebuilt :class:`~repro.corpus.index.CorpusIndex` to
        retrieve occurrences through (defaults to the corpus's cached
        index).
    cache:
        Optional :class:`~repro.polysemy.cache.FeatureCache`; repeated
        builds over the same corpus/extractor configuration then skip
        featurisation entirely (ablations, repeated training runs).
    """
    extractor = extractor if extractor is not None else PolysemyFeatureExtractor()
    rng = np.random.default_rng(seed if not isinstance(seed, np.random.Generator) else None)
    if isinstance(seed, np.random.Generator):
        rng = seed

    # One postings pass for every ontology term (per-term scans are O(n²)).
    index = index if index is not None else corpus.index()
    records = index.occurrence_records(
        ontology.terms(), window=extractor.window
    )
    polysemic_rows: list[tuple[str, np.ndarray]] = []
    monosemous_rows: list[tuple[str, np.ndarray]] = []
    if max_contexts < min_contexts:
        raise ValidationError(
            f"max_contexts ({max_contexts}) must be >= min_contexts "
            f"({min_contexts})"
        )
    config_fp = (
        dataset_config_fingerprint(extractor, max_contexts=max_contexts)
        if cache is not None
        else ""
    )
    corpus_fp = index.fingerprint() if cache is not None else ""
    # Two passes so a remote-backed cache answers every eligible term's
    # lookup in one batched call (O(batches) HTTP round trips), not one
    # request per term.  Counting is identical to per-term lookups:
    # lookup_many records one hit/miss per eligible term.
    eligible = [
        term
        for term in ontology.terms()
        if len(records.get(term, [])) >= min_contexts
    ]
    cached: dict[str, np.ndarray] = {}
    if cache is not None:
        found = cache.lookup_many(
            [FeatureCache.key(corpus_fp, term, config_fp) for term in eligible]
        )
        cached = {
            term: found[FeatureCache.key(corpus_fp, term, config_fp)]
            for term in eligible
            if FeatureCache.key(corpus_fp, term, config_fp) in found
        }
    computed: list[tuple[tuple[str, str, str], np.ndarray]] = []
    for term in eligible:
        occurrences = records.get(term, [])
        vector = cached.get(term)
        if vector is None:
            doc_frequency = len({doc_id for doc_id, __ in occurrences})
            if len(occurrences) > max_contexts:
                # Evenly spaced deterministic subsample across the corpus.
                step = len(occurrences) / max_contexts
                occurrences = [
                    occurrences[int(i * step)] for i in range(max_contexts)
                ]
            contexts = [window_tokens for __, window_tokens in occurrences]
            vector = extractor.features_from_contexts(
                term, contexts, doc_frequency=doc_frequency
            )
            if cache is not None:
                computed.append(
                    (FeatureCache.key(corpus_fp, term, config_fp), vector)
                )
        if ontology.is_polysemic(term):
            polysemic_rows.append((term, vector))
        else:
            monosemous_rows.append((term, vector))
    if cache is not None and computed:
        cache.store_many(computed)

    if not polysemic_rows or not monosemous_rows:
        raise CorpusError(
            "dataset needs both polysemic and monosemous terms with enough "
            f"contexts (got {len(polysemic_rows)} polysemic, "
            f"{len(monosemous_rows)} monosemous)"
        )
    if max_monosemous is not None and len(monosemous_rows) > max_monosemous:
        picked = rng.choice(
            len(monosemous_rows), size=max_monosemous, replace=False
        )
        monosemous_rows = [monosemous_rows[int(i)] for i in sorted(picked)]

    rows = polysemic_rows + monosemous_rows
    labels = [1] * len(polysemic_rows) + [0] * len(monosemous_rows)
    X = np.vstack([vector for __, vector in rows])
    y = np.asarray(labels, dtype=np.int64)
    terms = tuple(term for term, __ in rows)
    return PolysemyDataset(
        X=X, y=y, terms=terms, feature_names=extractor.feature_names
    )
