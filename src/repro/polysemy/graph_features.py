"""The 12 graph polysemy features.

The paper extracts 12 of its 23 features "from a graph itself induced from
the text corpus".  Here the graph for a term is the co-occurrence graph of
its context words: nodes are words appearing in the term's contexts,
edges weight within-context co-occurrence.  For a monosemous term this
graph is one dense community; for a polysemic term it splits into one
community per sense — community structure, connectivity, and degree
statistics capture that.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import networkx as nx
import numpy as np
from scipy import sparse
from scipy.sparse.csgraph import connected_components as _csgraph_components

from repro.clustering.community import CommunityBackend, get_community_backend
from repro.clustering.louvain import CSRGraph, modularity_from_labels

#: Feature names in vector order.
GRAPH_FEATURE_NAMES = (
    "log_n_nodes",
    "log_n_edges",
    "density",
    "mean_degree",
    "degree_entropy",
    "avg_clustering",
    "transitivity",
    "n_components",
    "largest_component_fraction",
    "n_communities",
    "modularity",
    "community_size_entropy",
)


def build_context_graph(
    contexts: Sequence[Sequence[str]],
    *,
    window: int = 4,
    min_weight: float = 1.0,
) -> nx.Graph:
    """Co-occurrence graph over the words of ``contexts``.

    A sliding window of ``window`` tokens inside each context adds edges;
    edges below ``min_weight`` total are pruned.
    """
    graph = nx.Graph()
    for context in contexts:
        tokens = list(context)
        n = len(tokens)
        for i, left in enumerate(tokens):
            graph.add_node(left)
            for j in range(i + 1, min(i + window, n)):
                right = tokens[j]
                if left == right:
                    continue
                if graph.has_edge(left, right):
                    graph[left][right]["weight"] += 1.0
                else:
                    graph.add_edge(left, right, weight=1.0)
    if min_weight > 1.0:
        drop = [
            (u, v) for u, v, w in graph.edges(data="weight") if w < min_weight
        ]
        graph.remove_edges_from(drop)
        graph.remove_nodes_from([n for n in graph if graph.degree(n) == 0])
    return graph


def _entropy(values: np.ndarray) -> float:
    total = values.sum()
    if total <= 0 or values.size <= 1:
        return 0.0
    probs = values / total
    probs = probs[probs > 0]
    entropy = float(-(probs * np.log2(probs)).sum())
    max_entropy = math.log2(values.size)
    return entropy / max_entropy if max_entropy > 0 else 0.0


def _binary_adjacency(csr: CSRGraph) -> sparse.csr_matrix:
    """Unweighted scipy adjacency of ``csr``, self-loops dropped.

    Triangle counts and connectivity follow the networkx convention of
    ignoring self-loops and edge weights.
    """
    n = csr.n_nodes
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(csr.indptr))
    keep = rows != csr.indices
    return sparse.csr_matrix(
        (
            np.ones(int(keep.sum()), dtype=np.float64),
            (rows[keep], csr.indices[keep]),
        ),
        shape=(n, n),
    )


def _clustering_and_transitivity(
    adjacency: sparse.csr_matrix,
) -> tuple[float, float]:
    """(average clustering coefficient, transitivity) of a binary graph.

    ``(A @ A) ∘ A`` row sums give each node's doubled triangle count —
    the same quantity networkx's ``_triangles_and_degree_iter`` yields —
    so both metrics come from one sparse matmul instead of a
    per-node Python neighbourhood scan.
    """
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    double_triangles = np.asarray(
        (adjacency @ adjacency).multiply(adjacency).sum(axis=1)
    ).ravel()
    pairs = degrees * (degrees - 1.0)
    coefficients = np.divide(
        double_triangles,
        pairs,
        out=np.zeros_like(double_triangles),
        where=pairs > 0,
    )
    avg_clustering = float(coefficients.mean())
    total_pairs = float(pairs.sum())
    total_triangles = float(double_triangles.sum())
    transitivity = (
        total_triangles / total_pairs if total_triangles > 0 else 0.0
    )
    return avg_clustering, transitivity


def _community_labels(
    graph: nx.Graph,
    csr: CSRGraph,
    backend: CommunityBackend,
    seed: int | np.random.Generator | None,
) -> np.ndarray:
    """Community label per CSR node from whichever interface is fastest."""
    labels_from_csr = getattr(backend, "labels_from_csr", None)
    if labels_from_csr is not None:
        return labels_from_csr(csr, seed=seed)
    node_index = {node: i for i, node in enumerate(graph.nodes())}
    labels = np.empty(csr.n_nodes, dtype=np.int64)
    communities = backend.communities(graph, weight="weight", seed=seed)
    for cid, community in enumerate(communities):
        for node in community:
            labels[node_index[node]] = cid
    return labels


def graph_features(
    graph: nx.Graph,
    *,
    backend: str | CommunityBackend = "louvain",
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """The 12-dimensional feature vector of a term's context graph.

    Every metric is computed natively on the graph's CSR adjacency
    (sparse matmul triangles, union-find components, Louvain
    communities) — networkx is only the input container.

    Parameters
    ----------
    backend:
        Community-detection backend for the three community features
        (see :mod:`repro.clustering.community`); ``"louvain"`` is the
        fast native default, ``"greedy"`` the networkx parity fallback.
    seed:
        Seed for seedable backends (makes ``"louvain"`` deterministic).
    """
    n_nodes = graph.number_of_nodes()
    n_edges = graph.number_of_edges()
    if n_nodes == 0:
        return np.zeros(len(GRAPH_FEATURE_NAMES), dtype=np.float64)

    csr = CSRGraph.from_networkx(graph, weight="weight")
    adjacency = _binary_adjacency(csr)
    degrees = np.array([d for __, d in graph.degree()], dtype=np.float64)
    density = nx.density(graph) if n_nodes > 1 else 0.0
    mean_degree = float(degrees.mean())
    degree_entropy = _entropy(degrees)
    if n_nodes > 1:
        avg_clustering, transitivity = _clustering_and_transitivity(adjacency)
    else:
        avg_clustering, transitivity = 0.0, 0.0
    if n_nodes <= 2:
        transitivity = 0.0

    n_components, component_labels = _csgraph_components(
        adjacency, directed=False
    )
    component_sizes = np.bincount(component_labels, minlength=n_components)
    largest_fraction = float(component_sizes.max()) / n_nodes

    if n_edges > 0:
        labels = _community_labels(
            graph, csr, get_community_backend(backend), seed
        )
        n_communities = int(labels.max()) + 1
        modularity = modularity_from_labels(csr, labels)
        community_sizes = np.bincount(labels, minlength=n_communities)
        community_entropy = _entropy(community_sizes.astype(np.float64))
    else:
        n_communities = n_components
        modularity = 0.0
        community_entropy = 0.0

    return np.array(
        [
            math.log1p(n_nodes),
            math.log1p(n_edges),
            density,
            mean_degree,
            degree_entropy,
            avg_clustering,
            transitivity,
            float(n_components),
            largest_fraction,
            float(n_communities),
            float(modularity),
            community_entropy,
        ],
        dtype=np.float64,
    )
