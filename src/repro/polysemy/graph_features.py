"""The 12 graph polysemy features.

The paper extracts 12 of its 23 features "from a graph itself induced from
the text corpus".  Here the graph for a term is the co-occurrence graph of
its context words: nodes are words appearing in the term's contexts,
edges weight within-context co-occurrence.  For a monosemous term this
graph is one dense community; for a polysemic term it splits into one
community per sense — community structure, connectivity, and degree
statistics capture that.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import networkx as nx
import numpy as np

#: Feature names in vector order.
GRAPH_FEATURE_NAMES = (
    "log_n_nodes",
    "log_n_edges",
    "density",
    "mean_degree",
    "degree_entropy",
    "avg_clustering",
    "transitivity",
    "n_components",
    "largest_component_fraction",
    "n_communities",
    "modularity",
    "community_size_entropy",
)


def build_context_graph(
    contexts: Sequence[Sequence[str]],
    *,
    window: int = 4,
    min_weight: float = 1.0,
) -> nx.Graph:
    """Co-occurrence graph over the words of ``contexts``.

    A sliding window of ``window`` tokens inside each context adds edges;
    edges below ``min_weight`` total are pruned.
    """
    graph = nx.Graph()
    for context in contexts:
        tokens = list(context)
        n = len(tokens)
        for i, left in enumerate(tokens):
            graph.add_node(left)
            for j in range(i + 1, min(i + window, n)):
                right = tokens[j]
                if left == right:
                    continue
                if graph.has_edge(left, right):
                    graph[left][right]["weight"] += 1.0
                else:
                    graph.add_edge(left, right, weight=1.0)
    if min_weight > 1.0:
        drop = [
            (u, v) for u, v, w in graph.edges(data="weight") if w < min_weight
        ]
        graph.remove_edges_from(drop)
        graph.remove_nodes_from([n for n in graph if graph.degree(n) == 0])
    return graph


def _entropy(values: np.ndarray) -> float:
    total = values.sum()
    if total <= 0 or values.size <= 1:
        return 0.0
    probs = values / total
    probs = probs[probs > 0]
    entropy = float(-(probs * np.log2(probs)).sum())
    max_entropy = math.log2(values.size)
    return entropy / max_entropy if max_entropy > 0 else 0.0


def graph_features(graph: nx.Graph) -> np.ndarray:
    """The 12-dimensional feature vector of a term's context graph."""
    n_nodes = graph.number_of_nodes()
    n_edges = graph.number_of_edges()
    if n_nodes == 0:
        return np.zeros(len(GRAPH_FEATURE_NAMES), dtype=np.float64)

    degrees = np.array([d for __, d in graph.degree()], dtype=np.float64)
    density = nx.density(graph) if n_nodes > 1 else 0.0
    mean_degree = float(degrees.mean())
    degree_entropy = _entropy(degrees)
    avg_clustering = nx.average_clustering(graph) if n_nodes > 1 else 0.0
    transitivity = nx.transitivity(graph) if n_nodes > 2 else 0.0

    components = list(nx.connected_components(graph))
    n_components = len(components)
    largest_fraction = max(len(c) for c in components) / n_nodes

    if n_edges > 0:
        communities = list(
            nx.algorithms.community.greedy_modularity_communities(
                graph, weight="weight"
            )
        )
        n_communities = len(communities)
        modularity = nx.algorithms.community.modularity(
            graph, communities, weight="weight"
        )
        community_sizes = np.array([len(c) for c in communities], dtype=np.float64)
        community_entropy = _entropy(community_sizes)
    else:
        n_communities = n_components
        modularity = 0.0
        community_entropy = 0.0

    return np.array(
        [
            math.log1p(n_nodes),
            math.log1p(n_edges),
            density,
            mean_degree,
            degree_entropy,
            avg_clustering,
            transitivity,
            float(n_components),
            largest_fraction,
            float(n_communities),
            float(modularity),
            community_entropy,
        ],
        dtype=np.float64,
    )
