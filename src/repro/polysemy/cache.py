"""Caching of per-term polysemy feature vectors.

Step II featurises hundreds of terms per training run, and ablations or
repeated ``enrich`` calls featurise the very same terms again.  The
vectors are pure functions of (corpus contents, term, feature
configuration), so :class:`FeatureCache` memoises them under the key

    ``(corpus fingerprint, term, config fingerprint)``

where the corpus fingerprint comes from
:meth:`repro.corpus.index.CorpusIndex.fingerprint` (a content hash, so
any corpus change invalidates every entry) and the config fingerprint
must encode everything that shapes the vector: the extractor settings
(:meth:`repro.polysemy.features.PolysemyFeatureExtractor.fingerprint`)
plus the caller's context-retrieval caps.  Callers that retrieve
contexts differently (different window or per-term cap) therefore never
share entries.

The cache is in-memory, thread-safe, and counts hits/misses so the
workflow report can expose cache effectiveness
(:attr:`repro.workflow.report.EnrichmentReport.cache`).
"""

from __future__ import annotations

import threading

import numpy as np

#: A fully-qualified cache key: (corpus fp, term, config fp).
CacheKey = tuple[str, str, str]


class FeatureCache:
    """In-memory memo of per-term feature vectors with hit/miss stats.

    Example
    -------
    >>> cache = FeatureCache()
    >>> key = FeatureCache.key("corpus-fp", "heart attack", "w=10")
    >>> cache.lookup(key) is None
    True
    >>> cache.store(key, np.zeros(3))
    >>> cache.lookup(key).shape
    (3,)
    >>> cache.stats["hits"], cache.stats["misses"]
    (1, 1)
    """

    def __init__(self) -> None:
        self._store: dict[CacheKey, np.ndarray] = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    @staticmethod
    def key(
        corpus_fingerprint: str, term: str, config_fingerprint: str
    ) -> CacheKey:
        """Assemble the canonical cache key."""
        return (corpus_fingerprint, term, config_fingerprint)

    def lookup(self, key: CacheKey, *, record: bool = True) -> np.ndarray | None:
        """The cached vector for ``key`` (counted as a hit or a miss).

        The returned array is shared storage — treat it as read-only.
        Pass ``record=False`` to peek without touching the counters —
        for callers that probe before knowing whether they will
        featurise at all (they call :meth:`record_lookup` later for the
        keys that mattered).
        """
        with self._lock:
            vector = self._store.get(key)
            if record:
                if vector is None:
                    self._misses += 1
                else:
                    self._hits += 1
            return vector

    def record_lookup(self, found: bool) -> None:
        """Count one deferred lookup (see ``lookup(record=False)``)."""
        with self._lock:
            if found:
                self._hits += 1
            else:
                self._misses += 1

    def store(self, key: CacheKey, vector: np.ndarray) -> None:
        """Memoise ``vector`` under ``key`` (overwrites silently)."""
        with self._lock:
            self._store[key] = vector

    def __len__(self) -> int:
        return len(self._store)

    @property
    def stats(self) -> dict[str, int]:
        """``{"hits", "misses", "entries"}`` counters since creation."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "entries": len(self._store),
            }

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._store.clear()
            self._hits = 0
            self._misses = 0
