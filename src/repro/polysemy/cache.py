"""Caching of per-term polysemy feature vectors.

Step II featurises hundreds of terms per training run, and ablations or
repeated ``enrich`` calls featurise the very same terms again.  The
vectors are pure functions of (corpus contents, term, feature
configuration), so :class:`FeatureCache` memoises them under the key

    ``(corpus fingerprint, term, config fingerprint)``

where the corpus fingerprint comes from
:meth:`repro.corpus.index.CorpusIndex.fingerprint` (a content hash, so
any corpus change invalidates every entry) and the config fingerprint
must encode everything that shapes the vector: the extractor settings
(:meth:`repro.polysemy.features.PolysemyFeatureExtractor.fingerprint`)
plus the caller's context-retrieval caps.  Callers that retrieve
contexts differently (different window or per-term cap) therefore never
share entries.

*Where* the vectors live is delegated to a pluggable
:class:`~repro.polysemy.cache_store.CacheStore` backend: the default
:class:`~repro.polysemy.cache_store.MemoryCacheStore` keeps the
historical in-process dict, while a
:class:`~repro.polysemy.cache_store.DiskCacheStore` persists entries on
disk so separate runs, CLI invocations, and process-pool workers share
them (see :mod:`repro.polysemy.cache_store`).

The cache is thread-safe and counts hits/misses so the workflow report
can expose cache effectiveness
(:attr:`repro.workflow.report.EnrichmentReport.cache`); backend-level
counters (``disk_hits``, ``evictions``, ``store_bytes``) are merged
into :attr:`stats`.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.polysemy.cache_store import (
    CacheKey,
    CacheStore,
    MemoryCacheStore,
)

__all__ = ["CacheKey", "FeatureCache"]


class FeatureCache:
    """Memo of per-term feature vectors with hit/miss stats.

    Parameters
    ----------
    store:
        The :class:`~repro.polysemy.cache_store.CacheStore` backend
        holding the vectors (default: a fresh in-memory dict).

    Example
    -------
    >>> cache = FeatureCache()
    >>> key = FeatureCache.key("corpus-fp", "heart attack", "w=10")
    >>> cache.lookup(key) is None
    True
    >>> cache.store(key, np.zeros(3))
    >>> cache.lookup(key).shape
    (3,)
    >>> cache.stats["hits"], cache.stats["misses"]
    (1, 1)
    """

    def __init__(self, store: CacheStore | None = None) -> None:
        self._store: CacheStore = (
            store if store is not None else MemoryCacheStore()
        )
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._worker_store_hits = 0
        self._worker_store_errors = 0

    @property
    def backing_store(self) -> CacheStore:
        """The backend holding the vectors."""
        return self._store

    @staticmethod
    def key(
        corpus_fingerprint: str, term: str, config_fingerprint: str
    ) -> CacheKey:
        """Assemble the canonical cache key."""
        return (corpus_fingerprint, term, config_fingerprint)

    def lookup(self, key: CacheKey, *, record: bool = True) -> np.ndarray | None:
        """The cached vector for ``key`` (counted as a hit or a miss).

        The returned array is shared storage — treat it as read-only.
        Pass ``record=False`` to peek without touching the counters —
        for callers that probe before knowing whether they will
        featurise at all (they call :meth:`record_lookup` later for the
        keys that mattered).
        """
        with self._lock:
            vector = self._store.get(key)
            if record:
                if vector is None:
                    self._misses += 1
                else:
                    self._hits += 1
            return vector

    def lookup_many(
        self, keys: list[CacheKey], *, record: bool = True
    ) -> dict[CacheKey, np.ndarray]:
        """Found vectors for ``keys`` (absent keys simply missing).

        The batched counterpart of :meth:`lookup`: a backend with a
        native bulk path (``get_many`` — the served
        :class:`~repro.service.client.RemoteCacheStore` coalesces it
        into O(batches) HTTP round trips instead of O(keys)) is called
        once; any other backend is probed per key under the one lock.
        Counting matches ``len(keys)`` sequential lookups exactly: one
        hit or miss per *requested occurrence* (duplicates included),
        and ``record=False`` defers counting just like :meth:`lookup`.
        """
        with self._lock:
            bulk = getattr(self._store, "get_many", None)
            if bulk is not None:
                found = dict(bulk(list(dict.fromkeys(keys))))
            else:
                found = {}
                for key in keys:
                    if key not in found:
                        vector = self._store.get(key)
                        if vector is not None:
                            found[key] = vector
            if record:
                for key in keys:
                    if key in found:
                        self._hits += 1
                    else:
                        self._misses += 1
            return found

    def record_lookup(self, found: bool) -> None:
        """Count one deferred lookup (see ``lookup(record=False)``)."""
        with self._lock:
            if found:
                self._hits += 1
            else:
                self._misses += 1

    def absorb_worker_hits(self, store_hits: int) -> None:
        """Merge lookups served to pool workers straight from the store.

        ``worker_backend="process"`` workers read a shared store — a
        :class:`~repro.polysemy.cache_store.DiskCacheStore` or a
        :class:`~repro.service.client.RemoteCacheStore` — through their
        *own* handle, so their hit counts never touch this process's
        store instance; the pipeline ships them back and deposits them
        here so :attr:`stats` reports the whole run.  They are counted
        under the backend's ``WORKER_HIT_KEY`` (``disk_hits`` for local
        stores, ``remote_hits`` for the served one).
        """
        with self._lock:
            self._worker_store_hits += store_hits

    def absorb_worker_errors(self, store_errors: int) -> None:
        """Merge store failures pool workers hit on their own handles.

        The served backend counts every degraded-to-miss network
        failure; a worker's counter dies with the worker process unless
        the pipeline ships it back here, where it joins the parent's
        ``remote_errors`` in :attr:`stats`.
        """
        with self._lock:
            self._worker_store_errors += store_errors

    def store(self, key: CacheKey, vector: np.ndarray) -> None:
        """Memoise ``vector`` under ``key`` (overwrites silently)."""
        with self._lock:
            self._store.put(key, vector)

    def store_many(
        self, entries: list[tuple[CacheKey, np.ndarray]]
    ) -> None:
        """Memoise every ``(key, vector)`` (batched :meth:`store`).

        Like :meth:`lookup_many`, a backend exposing ``put_many`` gets
        the whole list in one call (batched uploads on the served
        backend); otherwise entries are stored one by one in order, so
        duplicate keys resolve exactly as sequential stores would
        (last one wins).
        """
        with self._lock:
            bulk = getattr(self._store, "put_many", None)
            if bulk is not None:
                bulk(list(entries))
            else:
                for key, vector in entries:
                    self._store.put(key, vector)

    def __len__(self) -> int:
        return len(self._store)

    @property
    def stats(self) -> dict[str, int]:
        """Counters since creation.

        ``hits``/``misses`` count lookups through this cache,
        ``entries`` the backend's current size, and the backend's own
        counters (``disk_hits``/``evictions``/``store_bytes``, plus
        ``remote_hits``/``remote_errors`` for the served backend) are
        merged in; the keys are uniform across backends, zero-filled
        where a backend has no such notion.
        """
        with self._lock:
            stats = {
                "hits": self._hits,
                "misses": self._misses,
                "entries": len(self._store),
            }
            stats.update(self._store.stats())
            for key in (
                "disk_hits",
                "evictions",
                "store_bytes",
                "remote_hits",
                "remote_errors",
            ):
                stats.setdefault(key, 0)
            hit_key = getattr(self._store, "WORKER_HIT_KEY", "disk_hits")
            stats[hit_key] += self._worker_store_hits
            stats["remote_errors"] += self._worker_store_errors
            return stats

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._store.clear()
            self._hits = 0
            self._misses = 0
            self._worker_store_hits = 0
            self._worker_store_errors = 0
