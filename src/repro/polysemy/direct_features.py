"""The 11 direct (text-statistical) polysemy features.

All are computed from the term string and its occurrence contexts.  The
discriminative core: a polysemic term's contexts come from several topics,
so they agree less with each other (TF-IDF cosine statistics) and split
cleanly into two balanced groups (bisection features — the ISIM gain of a
2-way spherical k-means over the one-cluster solution).
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Sequence

import numpy as np

from repro.clustering.kmeans import spherical_kmeans
from repro.clustering.model import ClusterStats
from repro.text.vectorize import TfidfVectorizer

#: Feature names in vector order.
DIRECT_FEATURE_NAMES = (
    "term_n_tokens",
    "term_n_chars",
    "log_term_frequency",
    "log_doc_frequency",
    "log_vocab_size",
    "context_word_entropy",
    "mean_pairwise_cosine",
    "std_pairwise_cosine",
    "bisect_isim_gain",
    "bisect_isim_ratio",
    "bisect_balance_gain",
)


def _context_matrix(contexts: Sequence[Sequence[str]]) -> np.ndarray:
    """TF-IDF rows (unit norm) for the contexts; IDF damps background words."""
    vectorizer = TfidfVectorizer(stop_language=None)
    return vectorizer.fit_transform([list(c) for c in contexts]).toarray()


def _cosine_and_bisection(
    contexts: Sequence[Sequence[str]],
) -> tuple[float, float, float, float, float]:
    """(mean cos, std cos, isim gain, isim ratio, balance-weighted gain)."""
    n = len(contexts)
    matrix = _context_matrix(contexts)
    sims = matrix @ matrix.T
    upper = sims[np.triu_indices(n, k=1)]
    mean_cos = float(upper.mean())
    std_cos = float(upper.std())

    one_cluster = ClusterStats.from_labels(matrix, np.zeros(n, dtype=np.int64))
    s1 = one_cluster.mean_isim()
    split = spherical_kmeans(matrix, 2, seed=0)
    two_clusters = ClusterStats.from_labels(matrix, split.labels)
    s2 = two_clusters.mean_isim()
    gain = s2 - s1
    ratio = s2 / max(s1, 1e-9)
    counts = np.bincount(split.labels, minlength=2)
    balance = float(counts.min()) / n
    return mean_cos, std_cos, gain, ratio, balance * gain


def direct_features(
    term: str,
    contexts: Sequence[Sequence[str]],
    *,
    doc_frequency: int | None = None,
) -> np.ndarray:
    """The 11-dimensional direct feature vector for ``term``.

    Parameters
    ----------
    term:
        The candidate term string.
    contexts:
        Its occurrence contexts (token sequences, term itself excluded).
    doc_frequency:
        Number of distinct documents the term occurs in; defaults to the
        context count when the caller has no document structure.
    """
    tokens = term.split()
    n_contexts = len(contexts)
    frequency = n_contexts  # one context per occurrence by construction
    if doc_frequency is None:
        doc_frequency = n_contexts

    words = [w for ctx in contexts for w in ctx]
    counts = Counter(words)
    vocab_size = len(counts)
    if counts:
        probs = np.array(list(counts.values()), dtype=np.float64)
        probs /= probs.sum()
        entropy = float(-(probs * np.log2(probs)).sum())
        max_entropy = math.log2(vocab_size) if vocab_size > 1 else 1.0
        entropy /= max_entropy
    else:
        entropy = 0.0

    if n_contexts >= 4:
        cosine_bits = _cosine_and_bisection(contexts)
    elif n_contexts >= 2:
        matrix = _context_matrix(contexts)
        sims = matrix @ matrix.T
        upper = sims[np.triu_indices(n_contexts, k=1)]
        cosine_bits = (float(upper.mean()), float(upper.std()), 0.0, 1.0, 0.0)
    else:
        cosine_bits = (1.0, 0.0, 0.0, 1.0, 0.0)

    return np.array(
        [
            float(len(tokens)),
            float(len(term)),
            math.log1p(frequency),
            math.log1p(doc_frequency),
            math.log1p(vocab_size),
            entropy,
            *cosine_bits,
        ],
        dtype=np.float64,
    )
