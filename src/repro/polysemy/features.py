"""Assembly of the full 23-dimensional polysemy feature vector."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.corpus.corpus import Corpus
from repro.corpus.index import CorpusIndex
from repro.errors import CorpusError
from repro.polysemy.direct_features import DIRECT_FEATURE_NAMES, direct_features
from repro.polysemy.graph_features import (
    GRAPH_FEATURE_NAMES,
    build_context_graph,
    graph_features,
)

#: All 23 feature names: 11 direct then 12 graph, matching the paper's split.
ALL_FEATURE_NAMES = DIRECT_FEATURE_NAMES + GRAPH_FEATURE_NAMES

assert len(DIRECT_FEATURE_NAMES) == 11, "the paper specifies 11 direct features"
assert len(GRAPH_FEATURE_NAMES) == 12, "the paper specifies 12 graph features"


class PolysemyFeatureExtractor:
    """Extract the paper's 23 features for candidate terms.

    Parameters
    ----------
    window:
        Context window (tokens each side) used when retrieving term
        occurrences from a corpus.
    graph_window:
        Sliding co-occurrence window inside a context for the graph
        features.
    feature_set:
        ``"all"`` (23), ``"direct"`` (11), or ``"graph"`` (12) — the A3
        ablation knob.
    community_backend:
        Community-detection backend for the graph features
        (``"louvain"`` native default, ``"greedy"`` networkx fallback —
        see :mod:`repro.clustering.community`).
    community_seed:
        Seed for seedable community backends (fixed by default so
        repeated extraction is deterministic).
    """

    def __init__(
        self,
        *,
        window: int = 10,
        graph_window: int = 4,
        feature_set: str = "all",
        community_backend: str = "louvain",
        community_seed: int = 0,
    ) -> None:
        if feature_set not in ("all", "direct", "graph"):
            raise ValueError(
                f"feature_set must be all|direct|graph, got {feature_set!r}"
            )
        self.window = window
        self.graph_window = graph_window
        self.feature_set = feature_set
        self.community_backend = community_backend
        self.community_seed = community_seed

    def fingerprint(self) -> str:
        """Stable string encoding of every vector-shaping setting.

        The config component of feature-cache keys
        (:mod:`repro.polysemy.cache`): two extractors with equal
        fingerprints produce identical vectors from identical contexts.
        """
        return (
            f"window={self.window};graph_window={self.graph_window};"
            f"feature_set={self.feature_set};"
            f"community_backend={self.community_backend};"
            f"community_seed={self.community_seed}"
        )

    @property
    def feature_names(self) -> tuple[str, ...]:
        """Names of the features this extractor emits, in order."""
        if self.feature_set == "direct":
            return DIRECT_FEATURE_NAMES
        if self.feature_set == "graph":
            return GRAPH_FEATURE_NAMES
        return ALL_FEATURE_NAMES

    @property
    def n_features(self) -> int:
        """Dimensionality of the emitted vectors."""
        return len(self.feature_names)

    def features_from_contexts(
        self,
        term: str,
        contexts: Sequence[Sequence[str]],
        *,
        doc_frequency: int | None = None,
    ) -> np.ndarray:
        """Feature vector from pre-retrieved ``contexts``."""
        parts = []
        if self.feature_set in ("all", "direct"):
            parts.append(
                direct_features(term, contexts, doc_frequency=doc_frequency)
            )
        if self.feature_set in ("all", "graph"):
            graph = build_context_graph(contexts, window=self.graph_window)
            parts.append(
                graph_features(
                    graph,
                    backend=self.community_backend,
                    seed=self.community_seed,
                )
            )
        return np.concatenate(parts)

    def features_from_corpus(
        self,
        term: str,
        corpus: Corpus,
        *,
        index: CorpusIndex | None = None,
    ) -> np.ndarray:
        """Retrieve the term's contexts through the index and featurise.

        Pass a prebuilt ``index`` to share one
        :class:`~repro.corpus.index.CorpusIndex` across extractors
        (defaults to the corpus's cached index).

        Raises :class:`~repro.errors.CorpusError` when the term never
        occurs — a candidate without context cannot be classified.
        """
        index = index if index is not None else corpus.index()
        occurrences = index.contexts_for_term(term, window=self.window)
        if not occurrences:
            raise CorpusError(f"term {term!r} has no context in the corpus")
        contexts = [ctx.tokens for ctx in occurrences]
        doc_frequency = len({ctx.doc_id for ctx in occurrences})
        return self.features_from_contexts(
            term, contexts, doc_frequency=doc_frequency
        )
