"""The Step II detector: a classifier over the 23 polysemy features."""

from __future__ import annotations

import numpy as np

from repro.corpus.corpus import Corpus
from repro.errors import NotFittedError
from repro.ml import make_classifier
from repro.ml.base import BaseClassifier, clone
from repro.ml.metrics import f1_score
from repro.ml.model_selection import stratified_kfold_indices
from repro.ml.preprocessing import StandardScaler
from repro.polysemy.dataset import PolysemyDataset
from repro.polysemy.features import PolysemyFeatureExtractor


class PolysemyDetector:
    """Predict whether a candidate term is polysemic.

    Wraps any :mod:`repro.ml` classifier behind feature extraction and
    standardisation, so callers deal in terms and corpora, not matrices.

    Parameters
    ----------
    classifier:
        A :mod:`repro.ml` estimator or a registry name (default
        ``"forest"``).
    extractor:
        The feature extractor (defaults to all 23 features).
    seed:
        Seed for registry-constructed classifiers.
    """

    def __init__(
        self,
        classifier: BaseClassifier | str = "forest",
        *,
        extractor: PolysemyFeatureExtractor | None = None,
        seed: int | None = 0,
    ) -> None:
        if isinstance(classifier, str):
            classifier = make_classifier(classifier, seed=seed)
        self.classifier = classifier
        self.extractor = (
            extractor if extractor is not None else PolysemyFeatureExtractor()
        )
        self._scaler: StandardScaler | None = None
        self._fitted: BaseClassifier | None = None

    def fit(self, dataset: PolysemyDataset) -> "PolysemyDetector":
        """Train on a labelled dataset."""
        self._scaler = StandardScaler().fit(dataset.X)
        model = clone(self.classifier)
        model.fit(self._scaler.transform(dataset.X), dataset.y)
        self._fitted = model
        return self

    def predict_features(self, X: np.ndarray) -> np.ndarray:
        """Predict labels (1 = polysemic) for raw feature rows."""
        if self._fitted is None or self._scaler is None:
            raise NotFittedError("PolysemyDetector must be fitted first")
        return self._fitted.predict(self._scaler.transform(X))

    def is_polysemic(self, term: str, corpus: Corpus) -> bool:
        """Classify one term by extracting its features from ``corpus``."""
        vector = self.extractor.features_from_corpus(term, corpus)
        return bool(self.predict_features(vector[None, :])[0] == 1)

    def cross_validate_f1(
        self,
        dataset: PolysemyDataset,
        *,
        n_splits: int = 10,
        seed: int | np.random.Generator | None = 0,
    ) -> np.ndarray:
        """Per-fold F-measure under stratified CV (the paper's metric).

        Scaling is fitted inside each training fold — no leakage.
        """
        scores = []
        folds = stratified_kfold_indices(dataset.y, n_splits, seed=seed)
        for train_idx, test_idx in folds:
            scaler = StandardScaler().fit(dataset.X[train_idx])
            model = clone(self.classifier)
            model.fit(scaler.transform(dataset.X[train_idx]), dataset.y[train_idx])
            predictions = model.predict(scaler.transform(dataset.X[test_idx]))
            scores.append(f1_score(dataset.y[test_idx], predictions, positive=1))
        return np.asarray(scores)
