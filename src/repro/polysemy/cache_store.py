"""Pluggable backing stores for the feature cache (memory and disk).

:class:`~repro.polysemy.cache.FeatureCache` memoises Step II feature
vectors under ``(corpus fingerprint, term, config fingerprint)`` keys,
but where those vectors *live* is a storage decision: an in-memory dict
serves one enricher in one process, while the paper's re-run-heavy
workflow (the same corpus enriched again and again as the ontology
grows) wants entries that survive the process and are shared between
CLI invocations, repeated runs, and ``worker_backend="process"``
workers.  This module separates the two concerns behind the
:class:`CacheStore` protocol:

* :class:`MemoryCacheStore` — the historical dict, still the default;
* :class:`DiskCacheStore` — a durable, cross-process store.

Disk layout
-----------
One *generation* directory per ``(corpus fingerprint, config
fingerprint)`` pair, named by a hash of the two fingerprints::

    cache_dir/
      <generation>/          # sha256(corpus_fp + config_fp)[:20]
        .lock                # flock target serialising writers
        .last_used           # mtime stamp for LRU generation eviction
        .pin-<pid>-<n>       # transient eviction shield (pin_generation)
        index.jsonl          # one JSON line per entry (last write wins)
        shard-000000.bin     # packed vector bytes, appended in order
        shard-000001.bin     # rotated once a shard passes shard_max_bytes

Keying generations by fingerprint means corpus or configuration changes
invalidate *by construction* — a new fingerprint simply reads and writes
a different directory, and stale generations age out via the LRU
eviction below.  Within a generation, a vector is stored by appending
its raw bytes to the newest shard file and appending one index line
(``term``, shard number, byte offset/length, dtype, shape, CRC-32).
Appends are cheap, never rewrite existing bytes, and are serialised
across processes with ``flock`` on the generation's lock file.

Reads take no lock: the index is re-parsed incrementally when it grows,
torn trailing lines are skipped until complete, and every blob is
validated by length and CRC-32 before it is returned — a truncated or
corrupted entry is a *miss*, never a crash or a wrong vector.

``max_bytes`` caps the whole store, evicted in LRU order: least
recently *used* generations go first (whole directories; reads and
writes refresh a generation's recency stamp, re-stamped at most every
:data:`TOUCH_INTERVAL_SECONDS` so a long-lived daemon's hot generation
never ages into a victim), then the oldest shard files of the surviving
generation (their index entries are dropped atomically via
rewrite-and-rename); the newest shard is never evicted.  The generation
being written is never an eviction victim, and
:meth:`DiskCacheStore.pin_generation` extends the same immunity to a
generation that is only being *read* — e.g. the previous corpus
generation a streaming delta is migrating warm vectors out of — across
threads and processes via on-disk pin markers.  Writers are resilient
to the cross-process
eviction race — a generation directory another store dropped mid-write
is recreated and the write retried.  Counters (``disk_hits``,
``evictions``, ``store_bytes``) surface through
:meth:`DiskCacheStore.stats` and, via the cache, in
:attr:`repro.workflow.report.EnrichmentReport.cache`.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import shutil
import threading
import time
import zlib
from contextlib import contextmanager, suppress
from dataclasses import dataclass, field
from pathlib import Path
from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import ValidationError

try:  # pragma: no cover - always present on the POSIX CI/dev targets
    import fcntl
except ImportError:  # pragma: no cover - Windows fallback: no inter-process lock
    fcntl = None

#: A fully-qualified cache key: (corpus fp, term, config fp).
CacheKey = tuple[str, str, str]

#: Default rotation size of one shard file (4 MiB).
DEFAULT_SHARD_MAX_BYTES = 4 << 20

_INDEX_NAME = "index.jsonl"
_LOCK_NAME = ".lock"
_STAMP_NAME = ".last_used"
_PIN_PREFIX = ".pin-"

#: Seconds between LRU re-stamps of a generation a handle keeps using.
#: A long-lived process (the streaming daemon) reads its hot generation
#: for hours; stamping once per handle would let that generation age
#: into the first eviction victim, while stamping every read would cost
#: one write per lookup.  An interval keeps the stamp at most this
#: stale — far fresher than any generation worth evicting.
TOUCH_INTERVAL_SECONDS = 60.0

#: Age beyond which an on-disk pin marker is treated as leaked by a
#: crashed process and ignored (then removed).  Pins are short-lived —
#: held across one delta migration — so a marker this old is garbage.
PIN_TTL_SECONDS = 900.0

_pin_sequence = itertools.count()


@runtime_checkable
class CacheStore(Protocol):
    """Storage backend contract of :class:`~repro.polysemy.cache.FeatureCache`.

    Implementations map :data:`CacheKey` to ``np.ndarray`` and report
    backend-level counters through :meth:`stats`; hit/miss accounting
    stays in the cache itself.
    """

    def get(self, key: CacheKey) -> np.ndarray | None:
        """The stored vector for ``key``, or None."""

    def put(self, key: CacheKey, vector: np.ndarray) -> None:
        """Store ``vector`` under ``key`` (overwrites silently)."""

    def __len__(self) -> int:
        """Number of distinct entries currently retrievable."""

    def clear(self) -> None:
        """Drop every entry and reset the backend counters."""

    def stats(self) -> dict[str, int]:
        """Backend counters — at least ``{"disk_hits", "evictions",
        "store_bytes"}``; served backends add ``remote_hits`` /
        ``remote_errors`` (see
        :class:`repro.service.client.RemoteCacheStore`)."""


class MemoryCacheStore:
    """The default backend: a plain in-process dict (no persistence).

    Thread safety is provided by the owning
    :class:`~repro.polysemy.cache.FeatureCache`'s lock.
    """

    #: Where worker store-hits merged back by the pipeline are counted
    #: (see :meth:`repro.polysemy.cache.FeatureCache.stats`).
    WORKER_HIT_KEY = "disk_hits"

    def __init__(self) -> None:
        self._entries: dict[CacheKey, np.ndarray] = {}

    def get(self, key: CacheKey) -> np.ndarray | None:
        return self._entries.get(key)

    def put(self, key: CacheKey, vector: np.ndarray) -> None:
        self._entries[key] = vector

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> dict[str, int]:
        return {
            "disk_hits": 0,
            "evictions": 0,
            "store_bytes": sum(v.nbytes for v in self._entries.values()),
        }


@dataclass
class _Generation:
    """In-process view of one on-disk generation directory."""

    path: Path
    #: term -> (shard, offset, length, dtype str, shape, crc32)
    entries: dict[str, tuple] = field(default_factory=dict)
    #: Vectors already decoded in this process (no re-read, no disk_hit).
    memo: dict[str, np.ndarray] = field(default_factory=dict)
    #: How many bytes of index.jsonl have been parsed so far.
    index_offset: int = 0
    #: Monotonic time of this handle's last LRU recency re-stamp
    #: (0.0 = never; see :data:`TOUCH_INTERVAL_SECONDS`).
    last_touch: float = 0.0

    @property
    def index_path(self) -> Path:
        return self.path / _INDEX_NAME

    @property
    def lock_path(self) -> Path:
        return self.path / _LOCK_NAME

    def shard_path(self, number: int) -> Path:
        return self.path / f"shard-{number:06d}.bin"


@contextmanager
def _flocked(path: Path):
    """Exclusive inter-process lock on ``path`` (no-op without fcntl)."""
    if fcntl is None:  # pragma: no cover - Windows
        yield
        return
    fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
    try:
        fcntl.flock(fd, fcntl.LOCK_EX)
        yield
    finally:
        fcntl.flock(fd, fcntl.LOCK_UN)
        os.close(fd)


def _generation_name(corpus_fingerprint: str, config_fingerprint: str) -> str:
    digest = hashlib.sha256()
    digest.update(corpus_fingerprint.encode("utf-8"))
    digest.update(b"\n")
    digest.update(config_fingerprint.encode("utf-8"))
    return digest.hexdigest()[:20]


class DiskCacheStore:
    """Durable, cross-process :class:`CacheStore` (see the module docs).

    Parameters
    ----------
    cache_dir:
        Root directory of the store (created on demand).  Safe to share
        between threads, processes, and independent runs.
    max_bytes:
        Optional size cap on everything under ``cache_dir``; exceeding
        it triggers the LRU eviction described in the module docs.  The
        newest shard of the active generation is never evicted, so the
        cap is best-effort when a single shard outgrows it.
    shard_max_bytes:
        Rotation size of one shard file.  Defaults to 4 MiB, scaled
        down to ``max_bytes / 8`` under a smaller cap so shard-level
        eviction stays fine-grained enough to honour it.

    Example
    -------
    >>> import tempfile
    >>> store = DiskCacheStore(tempfile.mkdtemp())
    >>> key = ("corpus-fp", "heart attack", "w=10")
    >>> store.get(key) is None
    True
    >>> store.put(key, np.arange(3.0))
    >>> DiskCacheStore(store.cache_dir).get(key).tolist()  # new process
    [0.0, 1.0, 2.0]
    """

    #: Worker store-hits merged back by the pipeline land here.
    WORKER_HIT_KEY = "disk_hits"

    def __init__(
        self,
        cache_dir: str | os.PathLike,
        *,
        max_bytes: int | None = None,
        shard_max_bytes: int | None = None,
    ) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValidationError(
                f"max_bytes must be >= 1 or None, got {max_bytes}"
            )
        if shard_max_bytes is None:
            shard_max_bytes = DEFAULT_SHARD_MAX_BYTES
            if max_bytes is not None:
                shard_max_bytes = min(
                    shard_max_bytes, max(1, max_bytes // 8)
                )
        if shard_max_bytes < 1:
            raise ValidationError(
                f"shard_max_bytes must be >= 1, got {shard_max_bytes}"
            )
        self._dir = Path(cache_dir)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._max_bytes = max_bytes
        self._shard_max_bytes = shard_max_bytes
        self._lock = threading.RLock()
        self._generations: dict[str, _Generation] = {}
        #: generation name -> live pin count held through this handle.
        self._pin_counts: dict[str, int] = {}
        self._disk_hits = 0
        self._evictions = 0
        # Running size estimate so the eviction check is O(1) per put;
        # seeded (and re-synced at every eviction event) by a real
        # walk.  Concurrent writers make it drift low, so the cap is
        # best-effort between walks.
        self._size_estimate: int | None = None

    # -- pickling (process workers reopen the same directory) -------------

    def __getstate__(self) -> dict:
        return {
            "cache_dir": str(self._dir),
            "max_bytes": self._max_bytes,
            "shard_max_bytes": self._shard_max_bytes,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(
            state["cache_dir"],
            max_bytes=state["max_bytes"],
            shard_max_bytes=state["shard_max_bytes"],
        )

    @property
    def cache_dir(self) -> Path:
        """Root directory of the store."""
        return self._dir

    @property
    def max_bytes(self) -> int | None:
        """The configured size cap (None = unbounded)."""
        return self._max_bytes

    # -- CacheStore protocol ----------------------------------------------

    def get(self, key: CacheKey) -> np.ndarray | None:
        corpus_fp, term, config_fp = key
        with self._lock:
            generation = self._generation(corpus_fp, config_fp, create=False)
            if generation is None:
                return None
            vector = generation.memo.get(term)
            if vector is not None:
                # Memo hits keep the generation alive too: a long-lived
                # daemon serves almost everything from the memo, and
                # skipping the (interval-gated) stamp here would age its
                # hot generation into the first LRU eviction victim.
                self._touch(generation)
                return vector
            self._refresh_index(generation)
            entry = generation.entries.get(term)
            if entry is None:
                return None
            vector = self._read_entry(generation, entry)
            if vector is None:
                # Truncated/corrupt/evicted payload: a miss, never a
                # wrong vector.  Drop the dangling index entry locally.
                generation.entries.pop(term, None)
                return None
            self._disk_hits += 1
            generation.memo[term] = vector
            # Reads keep a generation alive too: refresh the LRU stamp
            # so warm read-only runs are not the first eviction victims.
            self._touch(generation)
            return vector

    def put(self, key: CacheKey, vector: np.ndarray) -> None:
        corpus_fp, term, config_fp = key
        vector = np.asarray(vector)
        if not vector.flags["C_CONTIGUOUS"]:
            # ascontiguousarray would promote 0-d to 1-d, but 0-d is
            # always contiguous so this branch preserves shapes.
            vector = np.ascontiguousarray(vector)
        blob = vector.tobytes()
        with self._lock:
            generation = self._generation(corpus_fp, config_fp, create=True)
            for attempt in (0, 1):
                try:
                    written = self._write_entry(generation, term, vector, blob)
                    break
                except FileNotFoundError:
                    # Another store's eviction dropped our generation
                    # directory mid-write; recreate it and retry once
                    # (the refresh inside notices the vanished index
                    # and resets this handle's stale state).
                    if attempt:
                        raise
                    generation.path.mkdir(parents=True, exist_ok=True)
            if self._max_bytes is not None and self._size_estimate is not None:
                self._size_estimate += written
            self._maybe_evict(generation)

    def _write_entry(
        self, generation: _Generation, term: str, vector: np.ndarray,
        blob: bytes,
    ) -> int:
        """Append one entry under the generation's flock; bytes added."""
        with _flocked(generation.lock_path):
            # Catch up with concurrent writers first so our own index
            # append lands after everything already on disk.
            self._refresh_index(generation)
            shard_no, offset = self._append_blob(generation, blob)
            record = {
                "term": term,
                "shard": shard_no,
                "offset": offset,
                "length": len(blob),
                "dtype": vector.dtype.str,
                "shape": list(vector.shape),
                "crc": zlib.crc32(blob),
            }
            payload = (json.dumps(record, sort_keys=True) + "\n").encode(
                "utf-8"
            )
            # A writer killed mid-append can leave a torn tail with no
            # newline; gluing our record onto it would lose the entry
            # for every future reader.  Start a fresh line instead (the
            # torn fragment becomes one malformed line, skipped on
            # parse).
            index_size = 0
            torn_tail = False
            # Missing or empty index: nothing to repair.
            with suppress(OSError), open(generation.index_path, "rb") as fh:
                fh.seek(-1, os.SEEK_END)
                torn_tail = fh.read(1) != b"\n"
                index_size = fh.tell()
            if torn_tail:
                payload = b"\n" + payload
            with open(generation.index_path, "ab") as fh:
                fh.write(payload)
            # We refreshed under the lock, so everything before our
            # append is parsed (or a torn fragment we just neutralised)
            # and everything we wrote is applied directly below.
            generation.index_offset = index_size + len(payload)
            generation.entries[term] = (
                shard_no,
                offset,
                len(blob),
                vector.dtype.str,
                tuple(vector.shape),
                record["crc"],
            )
            generation.memo[term] = vector
            self._touch(generation)
            return len(blob) + len(payload)

    def __len__(self) -> int:
        with self._lock:
            total = 0
            for child in self._generation_dirs():
                generation = self._generations.get(child.name)
                if generation is not None:
                    self._refresh_index(generation)
                    total += len(generation.entries)
                else:
                    total += len(self._parse_index(child / _INDEX_NAME))
            return total

    def clear(self) -> None:
        with self._lock:
            for child in self._dir.iterdir():
                if child.is_dir():
                    shutil.rmtree(child, ignore_errors=True)
                else:
                    child.unlink(missing_ok=True)
            self._generations.clear()
            self._disk_hits = 0
            self._evictions = 0
            self._size_estimate = 0

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "disk_hits": self._disk_hits,
                "evictions": self._evictions,
                "store_bytes": self._store_bytes(),
            }

    def describe(self) -> dict:
        """The store's on-disk layout (``repro cache-info``'s payload).

        Walks ``cache_dir`` and reports, per generation: entry count,
        shard-file count, byte usage, and the LRU recency stamp.
        ``eviction_order`` lists generation names least recently used
        first — the order :meth:`put`-triggered eviction would claim
        them.  ``disk_hits``/``evictions`` are this handle's session
        counters (a fresh CLI handle reports 0).
        """
        with self._lock:
            generations = []
            for child in self._generation_dirs():
                index = self._parse_index(child / _INDEX_NAME)
                shard_files = sorted(child.glob("shard-*.bin"))
                generations.append(
                    {
                        "name": child.name,
                        "entries": len(index),
                        "shards": len(shard_files),
                        "bytes": self._dir_bytes(child),
                        "last_used": self._last_used(child),
                        "pinned": self._is_pinned(child),
                    }
                )
            return {
                "cache_dir": str(self._dir),
                "max_bytes": self._max_bytes,
                "shard_max_bytes": self._shard_max_bytes,
                "entries": sum(g["entries"] for g in generations),
                "store_bytes": sum(g["bytes"] for g in generations),
                "n_generations": len(generations),
                "generations": generations,
                "eviction_order": [
                    g["name"]
                    for g in sorted(
                        generations, key=lambda g: g["last_used"]
                    )
                    if not g["pinned"]
                ],
                "disk_hits": self._disk_hits,
                "evictions": self._evictions,
            }

    # -- generation bookkeeping -------------------------------------------

    def _generation(
        self, corpus_fp: str, config_fp: str, *, create: bool
    ) -> _Generation | None:
        name = _generation_name(corpus_fp, config_fp)
        generation = self._generations.get(name)
        if generation is None:
            path = self._dir / name
            if not path.is_dir():
                if not create:
                    return None
                path.mkdir(parents=True, exist_ok=True)
            generation = _Generation(path)
            self._generations[name] = generation
        return generation

    def _generation_dirs(self) -> list[Path]:
        if not self._dir.is_dir():
            return []
        return sorted(child for child in self._dir.iterdir() if child.is_dir())

    # -- pinning ------------------------------------------------------------

    @contextmanager
    def pin_generation(self, corpus_fingerprint: str, config_fingerprint: str):
        """Context manager: shield one generation from LRU eviction.

        While held, the pinned generation is never chosen as a
        whole-generation eviction victim — by this handle *or* by any
        other process sharing the directory (the pin leaves an on-disk
        ``.pin-*`` marker other stores honour).  Streaming deltas use
        this to keep the *previous* corpus generation alive while warm
        vectors are migrated out of it, even though every write during
        the migration lands in (and stamps) the new generation.

        Pins nest and are reference-counted per generation.  A marker
        left behind by a crashed process expires after
        :data:`PIN_TTL_SECONDS` and is swept on the next eviction scan.
        """
        name = _generation_name(corpus_fingerprint, config_fingerprint)
        with self._lock:
            generation = self._generation(
                corpus_fingerprint, config_fingerprint, create=True
            )
            self._pin_counts[name] = self._pin_counts.get(name, 0) + 1
            marker = generation.path / (
                f"{_PIN_PREFIX}{os.getpid()}-{next(_pin_sequence)}"
            )
            try:
                marker.write_bytes(b"")
            except OSError:
                marker = None  # unwritable store: in-process pin only
        try:
            yield
        finally:
            with self._lock:
                remaining = self._pin_counts.get(name, 0) - 1
                if remaining > 0:
                    self._pin_counts[name] = remaining
                else:
                    self._pin_counts.pop(name, None)
                if marker is not None:
                    with suppress(OSError):
                        marker.unlink(missing_ok=True)

    def _is_pinned(self, path: Path) -> bool:
        """Whether a generation directory is pin-protected right now."""
        if self._pin_counts.get(path.name):
            return True
        now = time.time()
        pinned = False
        for marker in path.glob(f"{_PIN_PREFIX}*"):
            try:
                age = now - marker.stat().st_mtime
            except OSError:
                continue  # racing unpin: marker already gone
            if age < PIN_TTL_SECONDS:
                pinned = True
            else:
                # Leaked by a crashed pinner; sweep it so the
                # generation rejoins the eviction pool.
                with suppress(OSError):
                    marker.unlink(missing_ok=True)
        return pinned

    def _touch(self, generation: _Generation) -> None:
        """Refresh the LRU recency stamp.

        Re-stamped at most once per :data:`TOUCH_INTERVAL_SECONDS` per
        handle: often enough that a generation a long-running process
        keeps reading or writing (the daemon's *current* one) can never
        age into an LRU eviction victim, rare enough that warm lookups
        stay write-free.
        """
        now = time.monotonic()
        if (
            generation.last_touch
            and now - generation.last_touch < TOUCH_INTERVAL_SECONDS
        ):
            return
        try:
            (generation.path / _STAMP_NAME).write_bytes(b"")
        except OSError:
            return  # generation evicted under us: stays unstamped
        generation.last_touch = now

    # -- index parsing ------------------------------------------------------

    @staticmethod
    def _decode_record(record: dict) -> tuple[str, tuple] | None:
        """Validate one parsed index line into ``(term, entry)``."""
        try:
            term = record["term"]
            entry = (
                int(record["shard"]),
                int(record["offset"]),
                int(record["length"]),
                str(record["dtype"]),
                tuple(int(n) for n in record["shape"]),
                int(record["crc"]),
            )
        except (KeyError, TypeError, ValueError):
            return None
        if not isinstance(term, str):
            return None
        return term, entry

    @classmethod
    def _iter_records(cls, data: bytes):
        """Yield ``(term, entry)`` from index bytes, skipping malformed
        lines (corruption tolerance) — the one parser both the full
        and the incremental index readers share."""
        for raw in data.split(b"\n"):
            if not raw:
                continue
            try:
                record = json.loads(raw)
            except ValueError:
                continue
            decoded = cls._decode_record(record)
            if decoded is not None:
                yield decoded

    def _parse_index(self, index_path: Path) -> dict[str, tuple]:
        """Full parse of an index file (malformed lines skipped)."""
        try:
            data = index_path.read_bytes()
        except OSError:
            return {}
        return dict(self._iter_records(data))

    def _refresh_index(self, generation: _Generation) -> None:
        """Absorb index lines appended since the last parse.

        The index only ever grows under normal operation; it shrinks
        when :meth:`clear` or shard eviction rewrote it, which forces a
        from-scratch reload here.
        """
        try:
            size = generation.index_path.stat().st_size
        except OSError:
            if generation.index_offset:
                generation.entries.clear()
                generation.memo.clear()
                generation.index_offset = 0
                # The directory was evicted under us: the recency stamp
                # went with it, so the next use must re-stamp.
                generation.last_touch = 0.0
            return
        if size == generation.index_offset:
            return
        if size < generation.index_offset:
            generation.entries.clear()
            generation.memo.clear()
            generation.index_offset = 0
            generation.last_touch = 0.0
        try:
            with open(generation.index_path, "rb") as fh:
                fh.seek(generation.index_offset)
                data = fh.read()
        except OSError:
            return
        # Only consume complete lines; a torn trailing line (a writer
        # mid-append in another process) is retried on the next refresh.
        end = data.rfind(b"\n")
        if end < 0:
            return
        consumed = data[: end + 1]
        generation.index_offset += len(consumed)
        for term, entry in self._iter_records(consumed):
            if generation.entries.get(term) != entry:
                # Another writer superseded the entry: decoded bytes in
                # the memo may be stale, drop them.
                generation.memo.pop(term, None)
            generation.entries[term] = entry

    # -- blob I/O -----------------------------------------------------------

    def _append_blob(
        self, generation: _Generation, blob: bytes
    ) -> tuple[int, int]:
        """Append ``blob`` to the newest shard (rotating when full)."""
        numbers = self._shard_numbers(generation)
        shard_no = numbers[-1] if numbers else 0
        path = generation.shard_path(shard_no)
        try:
            size = path.stat().st_size
        except OSError:
            size = 0
        if size > 0 and size >= self._shard_max_bytes:
            shard_no += 1
            path = generation.shard_path(shard_no)
            size = 0
        with open(path, "ab") as fh:
            fh.write(blob)
        return shard_no, size

    @staticmethod
    def _shard_numbers(generation: _Generation) -> list[int]:
        numbers = []
        for path in generation.path.glob("shard-*.bin"):
            try:
                numbers.append(int(path.stem.split("-", 1)[1]))
            except (IndexError, ValueError):
                continue
        return sorted(numbers)

    def _read_entry(
        self, generation: _Generation, entry: tuple
    ) -> np.ndarray | None:
        shard_no, offset, length, dtype_str, shape, crc = entry
        try:
            dtype = np.dtype(dtype_str)
        except TypeError:
            return None
        expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if expected != length or length < 0:
            return None
        try:
            with open(generation.shard_path(shard_no), "rb") as fh:
                fh.seek(offset)
                blob = fh.read(length)
        except OSError:
            return None
        if len(blob) != length or zlib.crc32(blob) != crc:
            return None
        try:
            return np.frombuffer(blob, dtype=dtype).reshape(shape)
        except ValueError:
            return None

    # -- size accounting + eviction ----------------------------------------

    @staticmethod
    def _dir_bytes(path: Path) -> int:
        total = 0
        try:
            children = list(path.iterdir())
        except OSError:
            return 0
        for child in children:
            try:
                total += child.stat().st_size
            except OSError:
                continue
        return total

    def _store_bytes(self) -> int:
        return sum(self._dir_bytes(d) for d in self._generation_dirs())

    def _last_used(self, path: Path) -> float:
        try:
            return (path / _STAMP_NAME).stat().st_mtime
        except OSError:
            try:
                return path.stat().st_mtime
            except OSError:
                return 0.0

    def _maybe_evict(self, active: _Generation) -> None:
        if self._max_bytes is None:
            return
        # O(1) fast path: the running estimate says we are under the
        # cap.  Only when it trips (or is unseeded) do we pay a real
        # walk, which also re-syncs the estimate.
        if (
            self._size_estimate is not None
            and self._size_estimate <= self._max_bytes
        ):
            return
        total = self._store_bytes()
        self._size_estimate = total
        if total <= self._max_bytes:
            return
        # 1. Whole stale generations, least recently used first (reads
        #    and writes both refresh the stamp).  The active generation
        #    (the one just written) is never a victim, and neither is a
        #    pinned one (a migration source another handle or process
        #    is still draining — see :meth:`pin_generation`).
        victims = sorted(
            (
                d
                for d in self._generation_dirs()
                if d != active.path and not self._is_pinned(d)
            ),
            key=self._last_used,
        )
        for victim in victims:
            if total <= self._max_bytes:
                break
            self._evictions += len(self._parse_index(victim / _INDEX_NAME))
            victim_bytes = self._dir_bytes(victim)
            shutil.rmtree(victim, ignore_errors=True)
            self._generations.pop(victim.name, None)
            total -= victim_bytes
        if total <= self._max_bytes:
            self._size_estimate = total
            return
        # 2. Oldest shards of the active generation (append order is
        #    write-recency order, so this is LRU-by-write).  The newest
        #    shard always survives, keeping the cap best-effort.
        with _flocked(active.lock_path):
            self._refresh_index(active)
            numbers = self._shard_numbers(active)
            while len(numbers) > 1 and total > self._max_bytes:
                shard_no = numbers.pop(0)
                dropped = [
                    term
                    for term, entry in active.entries.items()
                    if entry[0] == shard_no
                ]
                for term in dropped:
                    del active.entries[term]
                    active.memo.pop(term, None)
                self._evictions += len(dropped)
                shard_file = active.shard_path(shard_no)
                with suppress(OSError):
                    total -= shard_file.stat().st_size
                shard_file.unlink(missing_ok=True)
                try:
                    old_index_bytes = active.index_path.stat().st_size
                except OSError:
                    old_index_bytes = 0
                total -= old_index_bytes - self._rewrite_index(active)
        self._size_estimate = max(total, 0)

    def _rewrite_index(self, generation: _Generation) -> int:
        """Atomically replace the index with the surviving entries;
        returns its new size in bytes."""
        lines = []
        for term, entry in generation.entries.items():
            shard_no, offset, length, dtype_str, shape, crc = entry
            lines.append(
                json.dumps(
                    {
                        "term": term,
                        "shard": shard_no,
                        "offset": offset,
                        "length": length,
                        "dtype": dtype_str,
                        "shape": list(shape),
                        "crc": crc,
                    },
                    sort_keys=True,
                )
                + "\n"
            )
        payload = "".join(lines).encode("utf-8")
        tmp_path = generation.index_path.with_suffix(".jsonl.tmp")
        tmp_path.write_bytes(payload)
        os.replace(tmp_path, generation.index_path)
        generation.index_offset = len(payload)
        return len(payload)
