"""Served deployment on localhost: one cache service, many warm clients.

The Aber-OWL lesson applied to enrichment: put the shared state behind
a long-lived HTTP service.  This example boots ``repro serve``
in-process on an ephemeral port, registers a corpus for server-side
jobs, then

1. runs a **cold** pipeline against ``cache_url`` (every Step II vector
   is computed and pushed to the service),
2. runs a **warm** pipeline twice from brand-new enrichers — once over
   the per-vector protocol (``cache_batch_size=1``) and once over the
   batched ``/vectors/batch`` protocol — counting the HTTP round trips
   each one costs server-side (the ``/stats`` ``requests`` delta;
   ``/stats`` polls themselves are uncounted),
3. submits the same enrichment as a **server-side job** twice with one
   ``Idempotency-Key`` (the second submit replays the first job),
4. scrapes ``GET /metrics`` and shows the traffic it recorded,
5. stops the server and runs once more: every lookup degrades to a
   clean miss (``remote_errors``), the report is unchanged.

Run: ``PYTHONPATH=src python examples/cache_service.py``

Against a real deployment, replace the in-process server with::

    repro serve --cache-dir /var/cache/repro --port 8750 \\
        --scenario demo=/data/demo
    repro enrich ... --cache-url http://cache-host:8750
"""

import json
import tempfile
import time
from pathlib import Path

from repro.corpus.io import write_corpus_jsonl
from repro.ontology.io import write_ontology_json
from repro.polysemy.cache_store import DiskCacheStore
from repro.scenarios import make_enrichment_scenario
from repro.service.client import ServiceClient
from repro.service.server import CacheServiceServer
from repro.workflow.config import EnrichmentConfig
from repro.workflow.pipeline import OntologyEnricher


def enrich_with_fresh_enricher(scenario, cache_url: str, batch_size: int = 256):
    config = EnrichmentConfig(
        n_candidates=8, cache_url=cache_url, cache_timeout=0.5,
        cache_batch_size=batch_size, seed=0
    )
    enricher = OntologyEnricher(
        scenario.ontology, config=config, pos_lexicon=scenario.pos_lexicon
    )
    started = time.perf_counter()
    report = enricher.enrich(scenario.corpus)
    return report, time.perf_counter() - started


def main(n_concepts: int = 30, docs_per_concept: int = 5) -> None:
    scenario = make_enrichment_scenario(
        seed=5, n_concepts=n_concepts, docs_per_concept=docs_per_concept
    )
    workdir = Path(tempfile.mkdtemp(prefix="repro-cache-service-"))
    write_ontology_json(scenario.ontology, workdir / "ontology.json")
    write_corpus_jsonl(scenario.corpus, workdir / "corpus.jsonl")

    server = CacheServiceServer(
        DiskCacheStore(workdir / "cache"),
        host="127.0.0.1",
        port=0,  # ephemeral
        corpora={
            "demo": (workdir / "ontology.json", workdir / "corpus.jsonl")
        },
    )
    server.start()
    print(f"cache service listening on {server.url}")

    client = ServiceClient(server.url)
    round_trips = lambda: client.stats()["requests"]  # noqa: E731

    cold, cold_seconds = enrich_with_fresh_enricher(scenario, server.url)
    print(
        f"cold run : {cold_seconds:.2f}s — "
        f"{cold.cache['misses']} misses pushed to the service"
    )

    # Warm twice: the per-vector protocol pays one HTTP round trip per
    # vector, the batch protocol coalesces them into whole-batch frames.
    before = round_trips()
    single, _ = enrich_with_fresh_enricher(
        scenario, server.url, batch_size=1
    )
    single_requests = round_trips() - before
    before = round_trips()
    warm, warm_seconds = enrich_with_fresh_enricher(scenario, server.url)
    warm_requests = round_trips() - before
    print(
        f"warm run : {warm_seconds:.2f}s — "
        f"{warm.cache['remote_hits']} vectors served over HTTP, "
        f"{warm.cache['misses']} misses "
        f"({cold_seconds / max(warm_seconds, 1e-9):.1f}x faster)"
    )
    print(
        f"round trips: {single_requests} per-vector vs "
        f"{warm_requests} batched "
        f"({single_requests / max(warm_requests, 1):.0f}x fewer)"
    )
    assert warm.cache["remote_hits"] > 0 and warm.cache["misses"] == 0
    assert warm_requests < single_requests

    # The service also *runs* enrichment: submit, poll, fetch — and a
    # resubmission carrying the same Idempotency-Key replays the first
    # job instead of burning a duplicate run.
    job_id, replayed = client.submit_job_detailed(
        "demo", config={"n_candidates": 8}, idempotency_key="example-demo"
    )
    document = client.wait_for_job(job_id, timeout=300)
    print(
        f"job {job_id}: {document['status']}, "
        f"{document['report']['n_candidates']} candidates, "
        f"cache {document['report']['cache']['hits']} hits"
    )
    again, replayed = client.submit_job_detailed(
        "demo", config={"n_candidates": 8}, idempotency_key="example-demo"
    )
    assert again == job_id and replayed
    print(f"resubmit with same Idempotency-Key: replayed job {again}")

    # /metrics exposes all of the above in Prometheus text format.
    exposition = client.metrics()
    interesting = [
        line for line in exposition.splitlines()
        if line.startswith(("repro_http_requests_total", "repro_jobs_total"))
        and not line.startswith("#")
    ]
    print("metrics scrape (excerpt):")
    for line in interesting[:6]:
        print(f"  {line}")

    # Identical output with and without the service, warm or cold.
    rows = lambda report: json.dumps(  # noqa: E731
        [t.to_dict() for t in report.terms], sort_keys=True
    )
    assert rows(cold) == rows(warm) == rows(single)

    server.stop()
    dead, dead_seconds = enrich_with_fresh_enricher(scenario, server.url)
    print(
        f"dead run : {dead_seconds:.2f}s — server gone, "
        f"{dead.cache['remote_errors']} failures degraded to misses, "
        "report unchanged"
    )
    assert dead.cache["remote_errors"] > 0
    assert rows(dead) == rows(cold)
    print("served deployment round trip OK")


if __name__ == "__main__":
    main()
