"""Served deployment on localhost: one cache service, many warm clients.

The Aber-OWL lesson applied to enrichment: put the shared state behind
a long-lived HTTP service.  This example boots ``repro serve``
in-process on an ephemeral port, registers a corpus for server-side
jobs, then

1. runs a **cold** pipeline against ``cache_url`` (every Step II vector
   is computed and pushed to the service),
2. runs a **warm** pipeline from a brand-new enricher — every vector
   arrives over HTTP (``remote_hits``), no featurisation happens,
3. submits the same enrichment as a **server-side job** and polls it,
4. stops the server and runs once more: every lookup degrades to a
   clean miss (``remote_errors``), the report is unchanged.

Run: ``PYTHONPATH=src python examples/cache_service.py``

Against a real deployment, replace the in-process server with::

    repro serve --cache-dir /var/cache/repro --port 8750 \\
        --scenario demo=/data/demo
    repro enrich ... --cache-url http://cache-host:8750
"""

import json
import tempfile
import time
from pathlib import Path

from repro.corpus.io import write_corpus_jsonl
from repro.ontology.io import write_ontology_json
from repro.polysemy.cache_store import DiskCacheStore
from repro.scenarios import make_enrichment_scenario
from repro.service.client import ServiceClient
from repro.service.server import CacheServiceServer
from repro.workflow.config import EnrichmentConfig
from repro.workflow.pipeline import OntologyEnricher


def enrich_with_fresh_enricher(scenario, cache_url: str):
    config = EnrichmentConfig(
        n_candidates=8, cache_url=cache_url, cache_timeout=0.5, seed=0
    )
    enricher = OntologyEnricher(
        scenario.ontology, config=config, pos_lexicon=scenario.pos_lexicon
    )
    started = time.perf_counter()
    report = enricher.enrich(scenario.corpus)
    return report, time.perf_counter() - started


def main(n_concepts: int = 30, docs_per_concept: int = 5) -> None:
    scenario = make_enrichment_scenario(
        seed=5, n_concepts=n_concepts, docs_per_concept=docs_per_concept
    )
    workdir = Path(tempfile.mkdtemp(prefix="repro-cache-service-"))
    write_ontology_json(scenario.ontology, workdir / "ontology.json")
    write_corpus_jsonl(scenario.corpus, workdir / "corpus.jsonl")

    server = CacheServiceServer(
        DiskCacheStore(workdir / "cache"),
        host="127.0.0.1",
        port=0,  # ephemeral
        corpora={
            "demo": (workdir / "ontology.json", workdir / "corpus.jsonl")
        },
    )
    server.start()
    print(f"cache service listening on {server.url}")

    cold, cold_seconds = enrich_with_fresh_enricher(scenario, server.url)
    print(
        f"cold run : {cold_seconds:.2f}s — "
        f"{cold.cache['misses']} misses pushed to the service"
    )
    warm, warm_seconds = enrich_with_fresh_enricher(scenario, server.url)
    print(
        f"warm run : {warm_seconds:.2f}s — "
        f"{warm.cache['remote_hits']} vectors served over HTTP, "
        f"{warm.cache['misses']} misses "
        f"({cold_seconds / max(warm_seconds, 1e-9):.1f}x faster)"
    )
    assert warm.cache["remote_hits"] > 0 and warm.cache["misses"] == 0

    # The service also *runs* enrichment: submit, poll, fetch.
    client = ServiceClient(server.url)
    job_id = client.submit_job("demo", config={"n_candidates": 8})
    document = client.wait_for_job(job_id, timeout=300)
    print(
        f"job {job_id}: {document['status']}, "
        f"{document['report']['n_candidates']} candidates, "
        f"cache {document['report']['cache']['hits']} hits"
    )

    # Identical output with and without the service, warm or cold.
    rows = lambda report: json.dumps(  # noqa: E731
        [t.to_dict() for t in report.terms], sort_keys=True
    )
    assert rows(cold) == rows(warm)

    server.stop()
    dead, dead_seconds = enrich_with_fresh_enricher(scenario, server.url)
    print(
        f"dead run : {dead_seconds:.2f}s — server gone, "
        f"{dead.cache['remote_errors']} failures degraded to misses, "
        "report unchanged"
    )
    assert dead.cache["remote_errors"] > 0
    assert rows(dead) == rows(cold)
    print("served deployment round trip OK")


if __name__ == "__main__":
    main()
