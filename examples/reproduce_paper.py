"""Reproduce every table of the paper in one run (reduced scale).

Runs the five experiments behind the paper's evaluation section — Table 1
(UMLS/MeSH polysemy statistics), §3(i) sense-number prediction with the
Table 2 indexes, Table 3 (corneal injuries), Table 4 (linkage precision),
and the §2(II) polysemy-detection F-measure — and prints each next to the
published numbers.

The full-scale versions (203 WSD entities, 60 held-out terms) run via
``REPRO_BENCH_SCALE=paper pytest benchmarks/ --benchmark-only``.

Run:  python examples/reproduce_paper.py
"""

from repro.corpus.pubmed import PubMedSpec
from repro.eval.experiments import (
    run_linkage_precision_experiment,
    run_polysemy_detection_experiment,
    run_sense_number_experiment,
    run_table1_experiment,
    run_table3_experiment,
)
from repro.eval.reporting import (
    render_polysemy_detection,
    render_sense_number,
    render_table1,
    render_table3,
    render_table4,
)


def main(small: bool = True) -> None:
    rule = "=" * 72

    print(rule)
    print("E1 — Table 1: polysemy statistics of the synthetic metathesaurus")
    print(rule)
    print(render_table1(run_table1_experiment(scale=1000.0, seed=0)))

    print()
    print(rule)
    print("E2 — §3(i): number-of-senses prediction (Table 2 indexes)")
    print(rule)
    result = run_sense_number_experiment(
        n_entities=50 if small else 203,
        contexts_per_sense=20,
        sense_overlap=0.45,
        background_fraction=0.6,
        algorithms=("rb", "rbr")
        if small
        else ("rb", "rbr", "direct", "agglo", "graph"),
        representations=("bow",) if small else ("bow", "graph"),
        seed=0,
    )
    print(render_sense_number(result))

    print()
    print(rule)
    print('E3 — Table 3: positioning "corneal injuries"')
    print(rule)
    print(render_table3(run_table3_experiment(seed=0, docs_per_concept=15)))

    print()
    print(rule)
    print("E4 — Table 4: linkage precision over held-out terms")
    print(rule)
    evaluation = run_linkage_precision_experiment(
        n_terms=20 if small else 60,
        n_concepts=150,
        docs_per_concept=2,
        mean_synonyms=0.2,
        inherit_fraction=0.1,
        seed=0,
        pubmed_spec=PubMedSpec(
            mention_prob=0.25,
            related_mention_prob=0.4,
            noise_mention_prob=0.5,
            background_fraction=0.9,
        ),
    )
    print(render_table4(evaluation))

    print()
    print(rule)
    print("E5 — §2(II): polysemy detection F-measure (23 features)")
    print(rule)
    results = run_polysemy_detection_experiment(
        classifiers=("forest", "logistic", "knn"),
        n_entities=60 if small else 240,
        n_splits=5 if small else 10,
        seed=0,
    )
    print(render_polysemy_detection(results))


if __name__ == "__main__":
    main()
