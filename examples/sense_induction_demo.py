"""Step III demo: predicting the number of senses of ambiguous terms.

Generates an MSH-WSD-like benchmark (ambiguous biomedical terms whose
contexts come from 2–5 distinct senses), then shows the paper's internal
indexes at work: for each term, contexts are clustered at k = 2..5 and
each Table 2 index votes for a k.

Run:  python examples/sense_induction_demo.py
"""

from repro.corpus.mshwsd import MshWsdSimulator
from repro.senses.induction import SenseInducer
from repro.senses.predictor import SenseCountPredictor
from repro.utils.tables import format_table


def main(n_entities: int = 8, contexts_per_sense: int = 25) -> None:
    print(f"Generating {n_entities} ambiguous terms (MSH-WSD-like)...")
    simulator = MshWsdSimulator(
        n_entities=n_entities,
        sense_distribution={2: 5, 3: 2, 4: 1},
        contexts_per_sense=contexts_per_sense,
        sense_overlap=0.2,
        background_fraction=0.45,
        seed=1,
    )
    entities = simulator.generate()

    rows = []
    indexes = ("ak", "bk", "ck", "ek", "fk")
    predictors = {
        index: SenseCountPredictor(algorithm="rbr", index=index, seed=0)
        for index in indexes
    }
    for entity in entities:
        row = [entity.term, entity.true_k]
        for index in indexes:
            row.append(predictors[index].predict(entity.contexts).k)
        rows.append(row)
    print()
    print(
        format_table(
            ["term", "true k", *[f"{i} says" for i in indexes]],
            rows,
            title="Number-of-senses prediction per internal index (paper Table 2)",
        )
    )

    # Full induction for the first term: cluster + label the concepts.
    entity = entities[0]
    print(f"\nInducing concepts for {entity.term!r} (true k = {entity.true_k}):")
    inducer = SenseInducer(SenseCountPredictor(algorithm="rbr", seed=0))
    result = inducer.induce(entity.term, entity.contexts, polysemic=True)
    for sense in result.senses:
        words = ", ".join(sense.top_features[:6])
        print(f"  sense {sense.sense_id} ({sense.support} contexts): {words}")


if __name__ == "__main__":
    main()
