"""Index reuse: amortise the positional corpus index across enrich calls.

Every layer of the workflow retrieves term occurrences through one
shared :class:`repro.corpus.index.CorpusIndex`.  The index is built
lazily and cached on the corpus, so repeated ``enrich`` calls over the
same corpus — screening different configurations, re-ranking with
another measure, sweeping seeds — pay the build cost once.

This example prebuilds the index explicitly, runs the workflow twice
with different candidate budgets, and prints the per-stage timings: the
second run's ``index`` stage is (near) zero.

Run:  python examples/index_reuse.py
"""

from repro.scenarios import make_enrichment_scenario
from repro.workflow import EnrichmentConfig, OntologyEnricher


def print_timings(label: str, timings: dict) -> None:
    parts = ", ".join(
        f"{stage}={seconds:.3f}s" for stage, seconds in timings.items()
    )
    print(f"  {label}: {parts}")


def main(n_concepts: int = 30, docs_per_concept: int = 6) -> None:
    scenario = make_enrichment_scenario(
        seed=9,
        n_concepts=n_concepts,
        docs_per_concept=docs_per_concept,
        polysemy_histogram={2: 3},
    )
    corpus = scenario.corpus

    # Build the shared index once, up front.  corpus.index() caches it,
    # so every retrieval in every layer reuses this object.
    index = corpus.index()
    print(
        f"Indexed {index.n_documents()} documents "
        f"({index.n_tokens():,} tokens, "
        f"{index.vocabulary_size():,} distinct)"
    )

    print("\nScreening run (3 candidates), then full run (10 candidates):")
    for label, n_candidates in (("screening", 3), ("full", 10)):
        config = EnrichmentConfig(n_candidates=n_candidates, min_contexts=3)
        enricher = OntologyEnricher(
            scenario.ontology, config=config,
            pos_lexicon=scenario.pos_lexicon,
        )
        report = enricher.enrich(corpus, index=index)
        print_timings(label, report.timings)
        print(f"    examined {report.n_candidates} candidates, "
              f"{len(report.completed_terms())} completed")


if __name__ == "__main__":
    main()
