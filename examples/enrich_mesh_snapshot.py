"""Full-cycle demo: simulating a MeSH release update.

Takes a generated 2015-style ontology, rolls it back to its 2009
snapshot, and evaluates how well the workflow re-discovers the positions
of the concepts added in between — the exact protocol behind the paper's
Table 4, including the release-snapshot machinery.

Run:  python examples/enrich_mesh_snapshot.py
"""

from repro.linkage import SemanticLinker
from repro.linkage.evaluation import evaluate_linkage
from repro.ontology.snapshot import held_out_terms, snapshot_before
from repro.scenarios import make_enrichment_scenario
from repro.utils.tables import format_table


def main(n_concepts: int = 100, docs_per_concept: int = 4) -> None:
    print("Generating a 2015-style ontology + corpus...")
    scenario = make_enrichment_scenario(
        seed=11,
        n_concepts=n_concepts,
        docs_per_concept=docs_per_concept,
        mean_synonyms=0.8,
        recent_fraction=0.25,
    )
    ontology = scenario.ontology

    snapshot = snapshot_before(ontology, 2009)
    held = held_out_terms(ontology, 2009, 2015)
    print(f"  full ontology:   {len(ontology)} concepts")
    print(f"  2009 snapshot:   {len(snapshot)} concepts")
    print(f"  added 2009-2015: {len(held)} terms to re-position")

    linker = SemanticLinker(ontology, scenario.corpus, top_k=10)
    evaluation = evaluate_linkage(linker, held)
    row = evaluation.as_row()
    print()
    print(
        format_table(
            ["Top 1", "Top 2", "Top 5", "Top 10"],
            [[f"{row[k]:.3f}" for k in (1, 2, 5, 10)]],
            title=f"Terms with >= 1 correct proposition (n = {evaluation.n_terms}; "
            "cf. paper Table 4: 0.333 / 0.400 / 0.500 / 0.583)",
        )
    )

    print("\nSample outcomes:")
    for outcome in evaluation.outcomes[:5]:
        verdict = "hit" if outcome.hit_at(10) else "miss"
        top = outcome.propositions[0].term if outcome.propositions else "(none)"
        print(f"  {outcome.term!r}: top-1 = {top!r} -> {verdict}@10")


if __name__ == "__main__":
    main()
