"""On-disk corpus index: persist once, mmap-reopen everywhere.

At PubMed scale the index build dominates every run, and
``worker_backend="process"`` used to pay it *per worker* (the postings
were pickled across the pipe).  With an
:class:`~repro.corpus.index_store.IndexStore` the index is built and
persisted once; every later run — and every process-pool worker —
memory-maps the same on-disk arrays in O(1).  The mapped index answers
every query byte-identically to the in-memory build, and it pickles to
its *directory path*, so shipping it to a worker costs a few hundred
bytes no matter how large the corpus is.

Run: ``PYTHONPATH=src python examples/large_corpus.py``
"""

import pickle
import tempfile
import time

from repro.corpus.index import CorpusIndex
from repro.corpus.index_store import IndexStore
from repro.scenarios import make_enrichment_scenario
from repro.workflow.config import EnrichmentConfig
from repro.workflow.pipeline import OntologyEnricher


def enrich(scenario, **config_fields):
    config = EnrichmentConfig(n_candidates=8, seed=0, **config_fields)
    enricher = OntologyEnricher(
        scenario.ontology, config=config, pos_lexicon=scenario.pos_lexicon
    )
    return enricher.enrich(scenario.corpus)


def main(
    n_concepts: int = 30,
    docs_per_concept: int = 5,
    n_shards: int = 2,
    n_workers: int = 2,
) -> None:
    scenario = make_enrichment_scenario(
        seed=11, n_concepts=n_concepts, docs_per_concept=docs_per_concept
    )
    corpus = scenario.corpus
    index_dir = tempfile.mkdtemp(prefix="repro-index-store-")
    store = IndexStore(index_dir)
    print(f"index store at {index_dir}")
    print(f"corpus: {corpus.n_documents()} documents, "
          f"{corpus.n_tokens():,} tokens")

    # Cold: build the sharded index and persist every shard.
    started = time.perf_counter()
    built = store.load_or_build(corpus, n_shards=n_shards,
                                n_workers=n_workers)
    build_seconds = time.perf_counter() - started
    print(f"cold : build + persist {build_seconds:.3f}s "
          f"(fingerprint {built.fingerprint()[:12]}, "
          f"{built.n_shards} shard(s))")

    # Warm: the same call now only fingerprints the documents and
    # mmap-reopens the stored arrays — no tokens are re-indexed.
    started = time.perf_counter()
    reopened = store.load_or_build(corpus, n_shards=n_shards)
    reopen_seconds = time.perf_counter() - started
    print(f"warm : mmap reopen     {reopen_seconds:.3f}s — "
          f"{build_seconds / max(reopen_seconds, 1e-9):.1f}x faster")
    assert reopened.fingerprint() == built.fingerprint()

    # The mmap index pickles to a path handle; the in-memory build
    # pickles to its entire postings.  This is what a process-pool
    # worker receives.
    in_memory = CorpusIndex(corpus)
    handle_bytes = len(pickle.dumps(reopened))
    full_bytes = len(pickle.dumps(in_memory))
    print(f"worker payload: mmap handle {handle_bytes:,} bytes "
          f"vs in-memory index {full_bytes:,} bytes")

    # End to end: the pipeline reuses the store via
    # EnrichmentConfig(index_dir=...) and fans Steps II-III over a
    # process pool whose workers map the same arrays.
    baseline = enrich(scenario)
    stored = enrich(
        scenario,
        index_dir=index_dir,
        index_shards=n_shards,
        worker_backend="process",
        n_workers=n_workers,
    )
    identical = [t.term for t in baseline.terms] == [
        t.term for t in stored.terms
    ] and [t.polysemic for t in baseline.terms] == [
        t.polysemic for t in stored.terms
    ]
    print(f"process-pool enrichment over the mmap index: "
          f"{len(stored.terms)} candidates")
    print(f"identical reports: {identical}")


if __name__ == "__main__":
    main()
