"""Ontology recommendation: which ontology should annotate this input?

Enrichment (the rest of this repository) assumes you already chose the
ontology to grow.  The recommendation engine answers the question that
comes *before* it, following NCBO Ontology Recommender 2.0: every
registered ontology is scored against the input on four criteria —
coverage, acceptance, detail, specialization — and ranked by their
weighted aggregate.  When no single ontology covers the input, the
greedy set recommendation composes a small complementary set.

Two candidates are built here from one generated scenario: the **full**
ontology (hierarchy, synonyms, metadata) and a **flat** vocabulary that
knows a subset of the same preferred terms but nothing else.  Both
"cover" the corpus; the criteria separate them.

The same engine is served: ``repro serve --ontology NAME=PATH`` plus
``POST /recommend``, byte-identical to ``repro recommend --format json``.

Run:  python examples/recommend.py
"""

from repro.corpus.index import CorpusIndex
from repro.ontology.model import Concept, Ontology
from repro.recommend import OntologyRegistry, RecommendConfig, Recommender
from repro.scenarios import make_enrichment_scenario


def flat_subset(ontology: Ontology, n: int) -> Ontology:
    """A hierarchy-free vocabulary of ``n`` preferred terms."""
    flat = Ontology("flat")
    for i, concept in enumerate(ontology):
        if i >= n:
            break
        flat.add_concept(Concept(f"F{i:04d}", concept.preferred_term))
    return flat


def main(n_concepts: int = 25, docs_per_concept: int = 4) -> None:
    scenario = make_enrichment_scenario(
        seed=13,
        n_concepts=n_concepts,
        docs_per_concept=docs_per_concept,
        polysemy_histogram={2: 2},
    )
    registry = OntologyRegistry()
    registry.register("full", scenario.ontology)
    registry.register("flat", flat_subset(scenario.ontology, n_concepts // 2))
    print(f"registered: {registry.names()}")
    for name in registry.names():
        registered = registry.get(name)
        print(
            f"  {name}: {registered.n_concepts} concepts, "
            f"{registered.n_labels} labels, depth {registered.max_depth}"
        )

    recommender = Recommender(registry, RecommendConfig())
    index = CorpusIndex(scenario.corpus)
    report = recommender.recommend_index(index)
    print()
    print(report.to_table())

    top = report.ranking[0]
    runner_up = report.ranking[1]
    print()
    print(
        f"winner: {top.name} "
        f"(aggregate {top.aggregate:.3f} vs {runner_up.aggregate:.3f})"
    )
    print(
        "full ontology wins on detail+specialization: "
        f"{top.name == 'full'}"
    )
    members = list(report.ontology_set.members)
    print(f"recommended set: {members} (flat adds no coverage: "
          f"{members == ['full']})")


if __name__ == "__main__":
    main()
