"""Persistent feature cache: a warm second run from a fresh enricher.

The paper's enrichment loop is re-run-heavy: the same corpus is
enriched again and again as the ontology grows.  With
``EnrichmentConfig(cache_dir=...)`` the Step II feature vectors are
persisted in a :class:`~repro.polysemy.cache_store.DiskCacheStore`, so
a *brand-new* enricher — a separate CLI invocation, a worker process, a
run tomorrow — starts warm and skips featurisation entirely.

Run: ``PYTHONPATH=src python examples/persistent_cache.py``
"""

import tempfile
import time

from repro.scenarios import make_enrichment_scenario
from repro.workflow.config import EnrichmentConfig
from repro.workflow.pipeline import OntologyEnricher


def enrich_with_fresh_enricher(scenario, cache_dir: str):
    config = EnrichmentConfig(n_candidates=8, cache_dir=cache_dir, seed=0)
    enricher = OntologyEnricher(
        scenario.ontology, config=config, pos_lexicon=scenario.pos_lexicon
    )
    started = time.perf_counter()
    report = enricher.enrich(scenario.corpus)
    return report, time.perf_counter() - started


def main(n_concepts: int = 30, docs_per_concept: int = 5) -> None:
    scenario = make_enrichment_scenario(
        seed=5, n_concepts=n_concepts, docs_per_concept=docs_per_concept
    )
    cache_dir = tempfile.mkdtemp(prefix="repro-feature-cache-")
    print(f"persistent feature cache at {cache_dir}")

    cold, cold_seconds = enrich_with_fresh_enricher(scenario, cache_dir)
    print(
        f"cold run : {cold_seconds:.2f}s — "
        f"{cold.cache['misses']} vectors featurised and persisted "
        f"({cold.cache['store_bytes']:,} bytes on disk)"
    )

    # A completely fresh enricher: only the directory is shared.
    warm, warm_seconds = enrich_with_fresh_enricher(scenario, cache_dir)
    print(
        f"warm run : {warm_seconds:.2f}s — "
        f"{warm.cache['disk_hits']} vectors served from disk, "
        f"{warm.cache['misses']} featurised"
    )
    print(f"speedup  : {cold_seconds / warm_seconds:.1f}x")

    identical = [t.term for t in cold.terms] == [t.term for t in warm.terms]
    labels_match = [t.polysemic for t in cold.terms] == [
        t.polysemic for t in warm.terms
    ]
    print(f"identical reports: {identical and labels_match}")
    print()
    print(warm.to_table(max_rows=8))


if __name__ == "__main__":
    main()
