"""Step II demo: screening candidate terms for polysemy.

Trains the 23-feature polysemy detector (11 direct + 12 graph features)
on terms whose sense count is known from the ontology, then screens new
candidate terms and prints the feature evidence behind each verdict.

Run:  python examples/polysemy_screening.py
"""

import numpy as np

from repro.corpus.mshwsd import MshWsdSimulator
from repro.ml.metrics import confusion_matrix
from repro.polysemy.dataset import build_entity_polysemy_dataset
from repro.polysemy.detector import PolysemyDetector
from repro.polysemy.features import ALL_FEATURE_NAMES
from repro.utils.tables import format_table


def main(n_entities: int = 100) -> None:
    print("Generating labelled terms (half monosemous, half polysemic)...")
    half = n_entities // 2
    simulator = MshWsdSimulator(
        n_entities=n_entities,
        sense_distribution={1: half, 2: max(1, round(0.8 * (n_entities - half))),
                            3: max(1, round(0.16 * (n_entities - half))),
                            4: max(1, round(0.04 * (n_entities - half)))},
        contexts_per_sense=24,
        contexts_mode="per_entity",
        sense_overlap=0.5,
        background_fraction=0.55,
        seed=2,
    )
    entities = simulator.generate()
    dataset = build_entity_polysemy_dataset(entities)
    print(f"  {dataset.n_samples} terms, {dataset.X.shape[1]} features, "
          f"{dataset.class_balance():.0%} polysemic")

    detector = PolysemyDetector("forest", seed=0)
    scores = detector.cross_validate_f1(dataset, n_splits=5, seed=0)
    print(f"\n5-fold CV F-measure: {scores.mean():.3f} "
          f"(the paper reports 0.98)")

    # Train on the first 80%, screen the rest.
    cut = int(0.8 * dataset.n_samples)
    train = slice(0, cut)
    test = slice(cut, None)
    from repro.polysemy.dataset import PolysemyDataset

    train_ds = PolysemyDataset(
        X=dataset.X[train], y=dataset.y[train],
        terms=dataset.terms[train], feature_names=dataset.feature_names,
    )
    detector.fit(train_ds)
    predictions = detector.predict_features(dataset.X[test])
    truth = dataset.y[test]
    print("\nHeld-out confusion matrix (rows true, cols predicted):")
    print(confusion_matrix(truth, predictions))

    # Show the most discriminative features by class-mean gap.
    X, y = dataset.X, dataset.y
    gaps = []
    for j, name in enumerate(ALL_FEATURE_NAMES):
        mono = X[y == 0, j]
        poly = X[y == 1, j]
        pooled = X[:, j].std() or 1.0
        gaps.append((name, abs(poly.mean() - mono.mean()) / pooled))
    gaps.sort(key=lambda pair: -pair[1])
    rows = [[name, f"{gap:.2f}"] for name, gap in gaps[:8]]
    print()
    print(format_table(["feature", "standardised gap"], rows,
                       title="Most discriminative of the 23 features"))


if __name__ == "__main__":
    main()
