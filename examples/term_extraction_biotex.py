"""Step I demo: BioTex-style biomedical term extraction.

Extracts candidate terms from a PubMed-like corpus with every ranking
measure of the companion paper (C-value, TF-IDF, Okapi, LIDF-value, the
fusions, TeRGraph) and compares their top lists against the generated
terminology.

Run:  python examples/term_extraction_biotex.py
"""

from repro.extraction.evaluation import (
    precision_curve,
    reference_terms_from_ontology,
)
from repro.extraction.extractor import BioTexExtractor
from repro.extraction.measures import MEASURE_NAMES
from repro.lexicon import BioLexicon
from repro.scenarios import make_enrichment_scenario
from repro.text.postag import LexiconTagger
from repro.utils.tables import format_table

# BioTex ships a general-academic stop list; ours is the filler vocabulary.
STOP_WORDS = frozenset(
    BioLexicon.filler_nouns() + BioLexicon.core_verbs() + BioLexicon.core_adverbs()
)


def main(n_concepts: int = 60, docs_per_concept: int = 6) -> None:
    print("Generating corpus + reference terminology...")
    scenario = make_enrichment_scenario(seed=4, n_concepts=n_concepts,
                                        docs_per_concept=docs_per_concept)
    reference = reference_terms_from_ontology(scenario.ontology)
    tagger = LexiconTagger(scenario.pos_lexicon)

    print(f"  corpus: {scenario.corpus.n_documents()} abstracts, "
          f"{scenario.corpus.n_tokens():,} tokens")
    print(f"  reference terminology: {len(reference)} terms")

    rows = []
    for measure in MEASURE_NAMES:
        extractor = BioTexExtractor(
            measure=measure, tagger=tagger, min_length=2, min_frequency=2,
            stop_words=STOP_WORDS,
        )
        ranked = extractor.extract(scenario.corpus)
        curve = precision_curve(ranked, reference, ks=(10, 50, 100))
        rows.append(
            [measure, len(ranked)]
            + [f"{curve[k]:.3f}" for k in (10, 50, 100)]
        )
    print()
    print(
        format_table(
            ["measure", "#candidates", "P@10", "P@50", "P@100"],
            rows,
            title="Extraction measures vs the generated terminology",
        )
    )

    print("\nTop 10 candidates by LIDF-value (the paper's flagship measure):")
    extractor = BioTexExtractor(
        measure="lidf_value", tagger=tagger, min_length=2, min_frequency=2,
        stop_words=STOP_WORDS,
    )
    for term in extractor.extract(scenario.corpus, top_k=10):
        marker = "*" if term.term in reference else " "
        print(f"  {marker} {term.rank:2d}. {term.term}  (score {term.score:.2f})")
    print("  (* = a real term of the terminology)")


if __name__ == "__main__":
    main()
