"""Quickstart: run the full four-step enrichment workflow.

Generates a MeSH-like ontology and a matching PubMed-like corpus, then
runs the paper's workflow end to end:

    Step I   — BioTex-style term extraction (candidate terms)
    Step II  — polysemy detection (23 features + random forest)
    Step III — sense induction (number of senses via the f_k index)
    Step IV  — semantic linkage (cosine-ranked ontology positions)

Run:  python examples/quickstart.py
"""

from repro.scenarios import make_enrichment_scenario
from repro.workflow import EnrichmentConfig, OntologyEnricher


def main(n_concepts: int = 50, docs_per_concept: int = 8) -> None:
    print("Generating scenario (ontology + PubMed-like corpus)...")
    scenario = make_enrichment_scenario(
        seed=7,
        n_concepts=n_concepts,
        docs_per_concept=docs_per_concept,
        polysemy_histogram={2: 5, 3: 2},
    )
    print(
        f"  ontology: {len(scenario.ontology)} concepts, "
        f"{len(scenario.ontology.terms())} terms"
    )
    print(
        f"  corpus:   {scenario.corpus.n_documents()} abstracts, "
        f"{scenario.corpus.n_tokens():,} tokens"
    )

    config = EnrichmentConfig(
        n_candidates=10,
        min_contexts=4,
        extraction_measure="lidf_value",
        sense_index="fk",
        top_k_positions=5,
    )
    enricher = OntologyEnricher(
        scenario.ontology, config=config, pos_lexicon=scenario.pos_lexicon
    )

    print("\nRunning the four-step workflow...")
    report = enricher.enrich(scenario.corpus)
    print(report.to_table())

    completed = report.completed_terms()
    if completed:
        first = completed[0]
        print(f"\nDetail for the first completed candidate: {first.term!r}")
        print(f"  polysemic:  {first.polysemic}")
        print(f"  senses (k): {first.n_senses}")
        for sense in first.senses.senses:
            words = ", ".join(sense.top_features[:5])
            print(f"    sense {sense.sense_id}: {words}  ({sense.support} contexts)")
        print("  proposed positions:")
        for proposition in first.propositions:
            print(
                f"    {proposition.rank}. {proposition.term} "
                f"(cosine {proposition.cosine:.4f})"
            )


if __name__ == "__main__":
    main()
