"""The paper's running example: positioning "corneal injuries" in MeSH.

Rebuilds Table 3 of the paper: the term "corneal injuries" was added to
MeSH between 2009 and 2015 (synonyms corneal injury / corneal damage /
corneal trauma; fathers corneal diseases and eye injuries).  We generate
PubMed-like context for the real MeSH eye fragment and ask the semantic
linker where the term belongs.

Run:  python examples/corneal_injuries.py
"""

from repro.linkage import SemanticLinker
from repro.linkage.evaluation import gold_positions
from repro.scenarios import make_corneal_scenario
from repro.utils.tables import format_table


def main(docs_per_concept: int = 20) -> None:
    print("Generating the MeSH eye fragment + PubMed-like contexts...")
    scenario = make_corneal_scenario(seed=0, docs_per_concept=docs_per_concept)
    ontology = scenario.ontology

    concept_id = ontology.concepts_for_term("corneal injuries")[0]
    concept = ontology.concept(concept_id)
    fathers = [ontology.concept(f).preferred_term for f in ontology.fathers(concept_id)]
    print(f"  concept:  {concept.concept_id} ({concept.preferred_term})")
    print(f"  synonyms: {', '.join(concept.synonyms)}")
    print(f"  fathers:  {', '.join(fathers)}")

    linker = SemanticLinker(ontology, scenario.corpus, top_k=10)
    propositions = linker.propose("corneal injuries")
    gold = gold_positions(ontology, concept_id, "corneal injuries")

    rows = [
        [p.rank, p.term, f"{p.cosine:.4f}", "*" if p.term in gold else ""]
        for p in propositions
    ]
    print()
    print(
        format_table(
            ["#", "where", "cosine", "correct"],
            rows,
            title='Propositions about where to add "corneal injuries" (cf. paper Table 3)',
        )
    )
    n_correct = sum(1 for p in propositions if p.term in gold)
    print(f"\n{n_correct} of {len(propositions)} propositions are correct "
          f"(the paper found 5 of 10).")


if __name__ == "__main__":
    main()
