"""Continuous enrichment: documents arrive, deltas come back.

`streaming_enrichment.py` showed that the *index* absorbs new documents
in O(new tokens).  This example closes the loop on the *pipeline*:
:class:`~repro.workflow.streaming.StreamingEnricher` keeps the baseline
report, and each call to ``add_documents`` runs a **delta
re-enrichment** — only terms whose postings actually changed are
re-featurised (the per-document fingerprint chain identifies them);
every other Step II vector is carried forward into the new corpus
fingerprint and served warm, as the diff's own cache counters prove.

Each delta emits a :class:`~repro.workflow.streaming.ReportDiff` (terms
added / dropped / re-scored, with fingerprint provenance) that composes
with the prior report: ``diff.apply(base)`` reconstructs exactly what a
from-scratch run over the grown corpus would report.

The same loop runs as a daemon: ``repro serve --watch name=DIR`` (or
``POST /scenarios/<name>/documents``) feeds the stream, and
``repro watch`` tails the diffs.

Run:  python examples/continuous_enrichment.py
"""

from repro.corpus.document import Document
from repro.scenarios import make_enrichment_scenario
from repro.workflow import StreamingEnricher


def print_delta(label: str, diff) -> None:
    print(f"  {label}: delta over {diff.documents}")
    print(f"    changed-posting terms recomputed: {diff.n_recomputed}")
    print(f"    report rows: +{len(diff.added)} added, "
          f"{len(diff.rescored)} re-scored, {len(diff.dropped)} dropped")
    print(f"    feature cache: {diff.cache['hits']} warm hits, "
          f"{diff.cache['misses']} misses "
          f"({diff.timings['delta_total']:.3f}s)")


def main(n_concepts: int = 25, docs_per_concept: int = 5) -> None:
    scenario = make_enrichment_scenario(
        seed=9,
        n_concepts=n_concepts,
        docs_per_concept=docs_per_concept,
        polysemy_histogram={2: 3},
    )
    streamer = StreamingEnricher(
        scenario.ontology, scenario.corpus, pos_lexicon=scenario.pos_lexicon
    )

    baseline = streamer.baseline()
    print(f"Baseline over {scenario.corpus.n_documents()} documents: "
          f"{len(baseline.terms)} report rows")

    # A quiet arrival: its tokens touch no known term, so no vector is
    # recomputed — the whole delta is served from the carried cache.
    quiet = streamer.add_documents(
        [Document("arrival-quiet", [["zzqx", "wwvk", "ggph", "zzqx"]])]
    )
    print_delta("quiet", quiet)

    # A loud arrival mentions a known term, so exactly that term's
    # postings change and only its vectors are re-featurised.
    term = sorted(scenario.ontology.terms())[0]
    loud = streamer.add_documents(
        [Document("arrival-loud", [term.split() + ["zzqx"] + term.split()])]
    )
    print_delta("loud", loud)
    print(f"    perturbed term: {loud.changed_terms}")

    # Diffs compose: replaying them onto the baseline reconstructs the
    # streamer's current report, fingerprint provenance intact.
    replayed = loud.apply(quiet.apply(baseline))
    same = [r.term for r in replayed.terms] == [
        r.term for r in streamer.report.terms
    ]
    print(f"\nreplayed diffs reconstruct the live report: {same}")
    print(f"fingerprint chain: {quiet.base_fingerprint[:8]} -> "
          f"{quiet.fingerprint[:8]} -> {loud.fingerprint[:8]}")
    assert quiet.n_recomputed == 0, "a quiet arrival must recompute nothing"
    assert same, "diff replay must reconstruct the live report"


if __name__ == "__main__":
    main()
