"""Streaming enrichment: grow the corpus without rebuilding the index.

Production corpora are document streams, not snapshots: abstracts keep
arriving after the first enrichment run.  ``Corpus.add`` patches the
cached positional index in place (O(new tokens) via
:meth:`~repro.corpus.index.CorpusIndex.add_documents`) instead of
discarding it, and the index fingerprint advances exactly as a fresh
build would compute it — so the Step II feature cache invalidates
correctly while the index build cost is never paid twice.

This example enriches a corpus, streams in a batch of new documents,
and re-enriches: the second run's ``index`` stage shows no rebuild, and
the report reflects the grown corpus.

Run:  python examples/streaming_enrichment.py
"""

from repro.corpus.document import Document
from repro.scenarios import make_enrichment_scenario
from repro.workflow import EnrichmentConfig, OntologyEnricher


def print_run(label: str, report, index) -> None:
    timings = ", ".join(
        f"{stage}={seconds:.3f}s" for stage, seconds in report.timings.items()
    )
    print(f"  {label}: {index.n_documents()} documents indexed")
    print(f"    timings: {timings}")
    print(f"    examined {report.n_candidates} candidates, "
          f"{len(report.completed_terms())} completed")


def main(n_concepts: int = 25, docs_per_concept: int = 5) -> None:
    scenario = make_enrichment_scenario(
        seed=9,
        n_concepts=n_concepts,
        docs_per_concept=docs_per_concept,
        polysemy_histogram={2: 3},
    )
    corpus = scenario.corpus
    config = EnrichmentConfig(n_candidates=5, min_contexts=3)
    enricher = OntologyEnricher(
        scenario.ontology, config=config, pos_lexicon=scenario.pos_lexicon
    )

    print("First enrichment over the initial corpus:")
    first = enricher.enrich(corpus)
    index = corpus.index()
    print_run("initial", first, index)

    # A later batch of documents arrives.  Reusing another scenario seed
    # stands in for freshly fetched abstracts.
    arriving = make_enrichment_scenario(
        seed=13, n_concepts=n_concepts, docs_per_concept=1
    ).corpus
    for i, doc in enumerate(arriving):
        corpus.add(Document(f"stream-{i}", doc.sentences))

    patched = corpus.index() is index
    print(f"\nStreamed in {arriving.n_documents()} documents "
          f"(index patched in place: {patched})")

    print("\nSecond enrichment over the grown corpus:")
    second = enricher.enrich(corpus)
    print_run("re-enrich", second, corpus.index())
    if second.cache:
        print(f"    feature cache after the stream: {second.cache} "
              "(the advanced fingerprint keys out the old corpus's entries)")
    assert patched, "corpus.add must extend the cached index, not drop it"


if __name__ == "__main__":
    main()
